"""Intensity-guided ABFT: per-layer adaptive scheme selection (paper §5.3).

For every linear layer of a NN, profile the candidate ABFT schemes and
choose the one with the lowest execution time.  The winner correlates
with the layer's arithmetic intensity relative to the device CMR —
bandwidth-bound layers pick thread-level ABFT, compute-bound layers pick
global ABFT — which is the paper's core observation and gives the
approach its name.

By construction the selection is never slower than the best uniform
scheme ("intensity-guided ABFT, by design, always performs at least as
well as global ABFT", §6.2), and the tests pin that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..abft import get_scheme
from ..config import DEFAULT_CONSTANTS, ModelConstants
from ..errors import ProfilingError
from ..gemm.problem import GemmProblem
from ..gpu.specs import GPUSpec
from ..nn.graph import ModelGraph
from .overhead import overhead_percent
from .profiler import PredeploymentProfiler

#: The two schemes intensity-guided ABFT arbitrates between (paper §5.3).
DEFAULT_CANDIDATES: tuple[str, ...] = ("global", "thread_onesided")


def analytical_choice(problem: GemmProblem, spec: GPUSpec) -> str:
    """Model-free selection rule (paper §7.2): compare AI to CMR.

    Layers with arithmetic intensity below the device CMR are
    bandwidth bound and predicted to prefer thread-level ABFT; the rest
    prefer global ABFT.  The empirical profiler refines this; the
    agreement between the two is itself an experiment (see benchmarks).
    """
    intensity = problem.arithmetic_intensity(padded=True)
    return "thread_onesided" if intensity <= spec.cmr else "global"


@dataclass(frozen=True)
class LayerSelection:
    """Per-layer profiling result and the guided choice."""

    layer_name: str
    problem: GemmProblem
    intensity: float
    baseline_s: float
    scheme_times_s: Mapping[str, float]
    chosen: str

    @property
    def chosen_time_s(self) -> float:
        return self.scheme_times_s[self.chosen]

    def overhead_percent(self, scheme: str) -> float:
        """Per-layer overhead of one candidate scheme."""
        return overhead_percent(self.scheme_times_s[scheme], self.baseline_s)


@dataclass(frozen=True)
class ModelSelection:
    """Whole-model result of intensity-guided selection.

    Per-layer times are summed across linear layers (paper §6.2: layers
    execute sequentially, so the sum represents the NN's execution).
    """

    model_name: str
    device: str
    layers: tuple[LayerSelection, ...]

    # ------------------------------------------------------------------
    @property
    def baseline_s(self) -> float:
        """Unprotected execution time of the whole model."""
        return sum(sel.baseline_s for sel in self.layers)

    def scheme_total_s(self, scheme: str) -> float:
        """Total time under one uniform scheme."""
        return sum(sel.scheme_times_s[scheme] for sel in self.layers)

    @property
    def guided_total_s(self) -> float:
        """Total time under the per-layer guided selection."""
        return sum(sel.chosen_time_s for sel in self.layers)

    def scheme_overhead_percent(self, scheme: str) -> float:
        """Whole-model overhead of one uniform scheme (the paper's bars)."""
        return overhead_percent(self.scheme_total_s(scheme), self.baseline_s)

    @property
    def guided_overhead_percent(self) -> float:
        """Whole-model overhead of intensity-guided ABFT."""
        return overhead_percent(self.guided_total_s, self.baseline_s)

    @property
    def selection_counts(self) -> dict[str, int]:
        """How many layers chose each scheme."""
        counts: dict[str, int] = {}
        for sel in self.layers:
            counts[sel.chosen] = counts.get(sel.chosen, 0) + 1
        return counts


class IntensityGuidedABFT:
    """Per-layer adaptive ABFT selection for a model on a device.

    Parameters
    ----------
    spec:
        Target device.
    candidates:
        Scheme registry names to arbitrate between; defaults to the
        paper's pair (global, one-sided thread-level).
    constants:
        Latency-model constants.  Under ``dtype="int8"`` the operand
        width is forced to one byte regardless of what is passed.
    profiler:
        Optionally inject a pre-built profiler (shares its cache).
    dtype:
        Numeric pipeline to price and deploy: ``"fp16"`` (default) or
        ``"int8"``.  INT8 selection profiles the quantized schemes on
        :meth:`GPUSpec.for_dtype`'s INT8 throughput with one-byte
        operands, and the chosen tokens carry the ``@int8`` suffix so
        deployment plans build quantized executors.
    """

    def __init__(
        self,
        spec: GPUSpec,
        *,
        candidates: Sequence[str] = DEFAULT_CANDIDATES,
        constants: ModelConstants = DEFAULT_CONSTANTS,
        profiler: PredeploymentProfiler | None = None,
        dtype: str = "fp16",
    ) -> None:
        if not candidates:
            raise ProfilingError("intensity-guided ABFT needs candidate schemes")
        self.dtype = dtype
        self.spec = spec.for_dtype(dtype)  # validates dtype, too
        if dtype == "int8":
            constants = constants.with_overrides(fp16_bytes=1)
        self.candidates = tuple(candidates)
        self.constants = constants
        self.profiler = profiler or PredeploymentProfiler(
            self.spec,
            schemes=[get_scheme(name, dtype=dtype) for name in self.candidates],
            constants=constants,
        )

    # ------------------------------------------------------------------
    def _token(self, candidate: str) -> str:
        """The deployment token for one candidate on this pipeline."""
        return candidate if self.dtype == "fp16" else f"{candidate}@{self.dtype}"

    def select_for_problem(self, problem: GemmProblem, *, name: str = "") -> LayerSelection:
        """Profile one layer and choose its cheapest protection."""
        entries = self.profiler.profile(problem)
        times = {self._token(s): entries[s].time_s for s in self.candidates}
        chosen = min(times, key=lambda s: times[s])
        return LayerSelection(
            layer_name=name or problem.label or str(problem),
            problem=problem,
            intensity=problem.arithmetic_intensity(padded=True),
            baseline_s=entries["none"].time_s,
            scheme_times_s=times,
            chosen=chosen,
        )

    def select_for_model(self, graph: ModelGraph) -> ModelSelection:
        """Run the per-layer selection over a whole model."""
        layers = tuple(
            self.select_for_problem(layer.problem, name=layer.name)
            for layer in graph
        )
        return ModelSelection(
            model_name=graph.name, device=self.spec.name, layers=layers
        )
