"""The paper's execution-time-overhead metric (§6.2).

For a layer (or a whole NN, summing per-layer times), the overhead of a
redundant scheme with execution time ``T_r`` over the unprotected time
``T_o`` is ``(T_r - T_o) / T_o * 100`` percent.
"""

from __future__ import annotations

from ..errors import ProfilingError


def overhead_percent(t_redundant: float, t_original: float) -> float:
    """Percentage increase in execution time (paper §6.2)."""
    if t_original <= 0:
        raise ProfilingError(f"baseline time must be positive, got {t_original}")
    if t_redundant < 0:
        raise ProfilingError(f"redundant time must be non-negative, got {t_redundant}")
    return (t_redundant - t_original) / t_original * 100.0


def reduction_factor(overhead_a: float, overhead_b: float) -> float:
    """How many times smaller ``overhead_b`` is than ``overhead_a``.

    The paper reports e.g. "intensity-guided ABFT reduces execution-time
    overhead by 5.3x compared to global ABFT": that is
    ``reduction_factor(global_pct, guided_pct)``.
    """
    if overhead_b <= 0:
        raise ProfilingError(
            f"cannot form a reduction factor against non-positive overhead "
            f"{overhead_b}"
        )
    return overhead_a / overhead_b
