"""Pre-deployment profiler: configurations x schemes -> fastest (paper §5.3).

Frameworks like TensorRT/TVM/cuDNN/CUTLASS enumerate and execute all
configurations of each layer before deployment and keep the fastest.
Intensity-guided ABFT rides that workflow: the enumeration additionally
spans ABFT schemes, and the per-layer winner is whichever (tile, scheme)
pair has the lowest execution time.

Here the stopwatch is the analytic latency model (DESIGN.md §6's
documented substitution); the workflow — including the baseline's
freedom to pick a *different* tile than the protected kernels — is
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..abft import get_scheme
from ..abft.base import Scheme, SchemePlan
from ..config import DEFAULT_CONSTANTS, ModelConstants
from ..errors import OccupancyError, ProfilingError
from ..gemm.problem import GemmProblem
from ..gemm.tiles import DEFAULT_TILE_CONFIGS, TileConfig
from ..gpu.specs import GPUSpec


@dataclass(frozen=True)
class ProfileEntry:
    """The winning configuration of one scheme for one problem."""

    scheme: str
    tile: TileConfig
    time_s: float
    plan: SchemePlan


class PredeploymentProfiler:
    """Rank (tile, scheme) pairs for GEMM problems on one device.

    Parameters
    ----------
    spec:
        Target device.
    schemes:
        Scheme instances (or registry names) to enumerate.  The
        unprotected baseline is always profiled as well.
    tiles:
        Tile-configuration candidates.
    constants:
        Latency-model constants.
    """

    def __init__(
        self,
        spec: GPUSpec,
        *,
        schemes: Sequence[Scheme | str] = ("global", "thread_onesided"),
        tiles: Sequence[TileConfig] = DEFAULT_TILE_CONFIGS,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> None:
        if not schemes:
            raise ProfilingError("profiler needs at least one scheme")
        if not tiles:
            raise ProfilingError("profiler needs at least one tile candidate")
        self.spec = spec
        self.schemes: list[Scheme] = [
            get_scheme(s) if isinstance(s, str) else s for s in schemes
        ]
        self.tiles = list(tiles)
        self.constants = constants
        self._baseline = get_scheme("none")
        self._cache: dict[tuple[int, int, int], dict[str, ProfileEntry]] = {}

    # ------------------------------------------------------------------
    def _best_for_scheme(self, problem: GemmProblem, scheme: Scheme) -> ProfileEntry:
        best: ProfileEntry | None = None
        for tile in self.tiles:
            try:
                plan = scheme.plan(problem, tile, self.constants)
                time_s = plan.modeled_time(self.spec, self.constants)
            except OccupancyError:
                continue  # configuration cannot be scheduled on this device
            if best is None or time_s < best.time_s:
                best = ProfileEntry(scheme=scheme.name, tile=tile, time_s=time_s, plan=plan)
        if best is None:
            raise ProfilingError(
                f"no tile configuration of scheme {scheme.name!r} is schedulable "
                f"for {problem} on {self.spec.name}"
            )
        return best

    def profile(self, problem: GemmProblem) -> Mapping[str, ProfileEntry]:
        """Best configuration per scheme (plus the ``"none"`` baseline).

        Results are cached by (M, N, K): identical layer shapes — common
        inside NNs — are profiled once, as a real pre-deployment
        optimizer would.
        """
        key = (problem.m, problem.n, problem.k)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        entries: dict[str, ProfileEntry] = {
            self._baseline.name: self._best_for_scheme(problem, self._baseline)
        }
        for scheme in self.schemes:
            entries[scheme.name] = self._best_for_scheme(problem, scheme)
        self._cache[key] = entries
        return entries

    def baseline_time(self, problem: GemmProblem) -> float:
        """Modeled time of the fastest unprotected configuration."""
        return self.profile(problem)["none"].time_s

    def scheme_time(self, problem: GemmProblem, scheme_name: str) -> float:
        """Modeled time of the fastest configuration of one scheme."""
        entries = self.profile(problem)
        if scheme_name not in entries:
            raise ProfilingError(
                f"scheme {scheme_name!r} was not enumerated; "
                f"have {sorted(entries)}"
            )
        return entries[scheme_name].time_s
