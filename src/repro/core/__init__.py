"""The paper's contribution: intensity-guided, per-layer ABFT selection.

``profiler`` implements the CUTLASS-profiler-style pre-deployment
workflow (enumerate tile configurations x ABFT schemes, keep the
fastest); ``intensity_guided`` runs it per linear layer of a model and
selects the cheapest protection for each; ``overhead`` computes the
paper's execution-time-overhead metric; ``report`` renders results.
"""

from .profiler import PredeploymentProfiler, ProfileEntry
from .intensity_guided import (
    IntensityGuidedABFT,
    LayerSelection,
    ModelSelection,
    analytical_choice,
)
from .overhead import overhead_percent, reduction_factor
from .report import model_overhead_table, layer_selection_table

__all__ = [
    "PredeploymentProfiler",
    "ProfileEntry",
    "IntensityGuidedABFT",
    "LayerSelection",
    "ModelSelection",
    "analytical_choice",
    "overhead_percent",
    "reduction_factor",
    "model_overhead_table",
    "layer_selection_table",
]
