"""Table renderers for experiment results (what the benchmarks print)."""

from __future__ import annotations

from typing import Sequence

from ..utils import Table
from .intensity_guided import ModelSelection
from .overhead import reduction_factor


def model_overhead_table(
    selections: Sequence[ModelSelection],
    *,
    schemes: Sequence[str] = ("thread_onesided", "global"),
    title: str = "Execution-time overhead (%)",
    include_intensity: bool = True,
) -> Table:
    """One row per model: per-scheme overhead, guided overhead, reduction.

    Mirrors the layout of the paper's Figs. 8-11: models in order, the
    uniform schemes' overheads, intensity-guided ABFT's overhead, and
    the global-vs-guided reduction factor annotated above the bars.
    """
    columns = ["model"]
    if include_intensity:
        columns.append("agg AI")
    columns += [f"{s} (%)" for s in schemes]
    columns += ["intensity-guided (%)", "reduction vs global"]
    table = Table(columns, title=title)
    for sel in selections:
        row: list[object] = [sel.model_name]
        if include_intensity:
            total_flops = sum(l.problem.flops(padded=True) for l in sel.layers)
            total_bytes = sum(l.problem.bytes_moved(padded=True) for l in sel.layers)
            row.append(total_flops / total_bytes)
        for scheme in schemes:
            row.append(sel.scheme_overhead_percent(scheme))
        guided = sel.guided_overhead_percent
        row.append(guided)
        if "global" in schemes and guided > 0:
            row.append(reduction_factor(sel.scheme_overhead_percent("global"), guided))
        else:
            row.append(float("nan"))
        table.add_row(row)
    return table


def layer_selection_table(
    selection: ModelSelection,
    *,
    title: str | None = None,
    max_rows: int | None = None,
) -> Table:
    """Per-layer detail: intensity, per-scheme overhead, winner."""
    schemes = list(selection.layers[0].scheme_times_s) if selection.layers else []
    columns = ["layer", "M", "N", "K", "AI"] + [f"{s} (%)" for s in schemes] + ["chosen"]
    table = Table(
        columns,
        title=title or f"{selection.model_name} on {selection.device}: per-layer selection",
    )
    rows = selection.layers[:max_rows] if max_rows else selection.layers
    for sel in rows:
        row: list[object] = [
            sel.layer_name,
            sel.problem.m,
            sel.problem.n,
            sel.problem.k,
            sel.intensity,
        ]
        for scheme in schemes:
            row.append(sel.overhead_percent(scheme))
        row.append(sel.chosen)
        table.add_row(row)
    return table
