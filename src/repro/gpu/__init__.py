"""GPU device substrate: specs, occupancy, execution pipes, latency model.

This package replaces the physical NVIDIA T4 of the paper with a
parametric analytic device model.  ``specs`` holds published datasheet
numbers for the GPUs the paper discusses; ``occupancy`` implements the
CUDA occupancy rules that drive the paper's §4 replication result;
``timing`` turns per-kernel cost counters into modeled execution times
using a multi-pipe (Tensor Core / CUDA core / DRAM / issue) roofline.
"""

from .specs import GPUSpec, get_gpu, list_gpus, T4, P4, V100, A100, JETSON_AGX_XAVIER
from .occupancy import OccupancyResult, compute_occupancy
from .pipes import Pipe, PipeSet, PipeTimes
from .timing import KernelTiming, time_kernel

__all__ = [
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "T4",
    "P4",
    "V100",
    "A100",
    "JETSON_AGX_XAVIER",
    "OccupancyResult",
    "compute_occupancy",
    "Pipe",
    "PipeSet",
    "PipeTimes",
    "KernelTiming",
    "time_kernel",
]
