"""Published device specifications for the GPUs discussed in the paper.

All throughput numbers come from the paper's §3.3 and the vendor
datasheets it cites.  The compute-to-memory-bandwidth ratios (CMR) the
paper quotes — T4 = 203, P4 = 58, V100 = 139, A100 = 201, Jetson AGX
Xavier = 235 — fall directly out of these numbers (see
``repro.roofline.cmr`` and its tests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet-level description of a GPU for the analytic model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"T4"``.
    matmul_flops:
        Peak FLOPs/s of the matrix-math units in the precision the paper
        evaluates on this device (FP16 Tensor Cores for T4/V100/A100,
        FP16 CUDA-core math for the Tensor-Core-less P4, INT8 for the
        Jetson following §3.3).
    alu_flops:
        Peak FLOPs/s of the conventional CUDA-core pipe in the same
        precision (FP16x2).  Checksum generation (HADD2) runs here.
    mem_bandwidth:
        Peak DRAM bandwidth in bytes/s.
    num_sms:
        Streaming multiprocessor count.
    clock_hz:
        Sustained SM clock used for issue-rate calculations.
    schedulers_per_sm:
        Warp schedulers per SM (issue slots per cycle per SM).
    registers_per_sm:
        32-bit registers per SM register file.
    max_registers_per_thread:
        Architectural per-thread register cap.
    smem_per_sm:
        Shared memory per SM available to kernels, in bytes.
    max_threads_per_sm / max_warps_per_sm / max_blocks_per_sm:
        Occupancy limits.
    has_tensor_cores:
        Whether ``matmul_flops`` comes from dedicated matrix units.  On
        devices without them (P4), redundant MMAs and checksum ops
        compete for the *same* pipe, which changes the thread-level
        ABFT trade-off — exercised in the device-sweep benchmarks.
    int8_matmul_flops:
        Peak ops/s of the INT8 matrix-math pipe, or ``None`` on devices
        without one (P4 predates DP4A-rate tensor math in this model;
        V100's Tensor Cores are FP16-only).  Consumed through
        :meth:`for_dtype` by the quantized-execution pricing path.
    family:
        Microarchitecture family (``"turing"``, ``"volta"``, ...).
        Devices in one family share kernel-level behavior — the fleet
        sweep (:func:`repro.fleet.deploy_fleet`) amortizes profiler and
        prepared-execution caches at this granularity, since scheme
        *selection* still differs per device (CMR differs within a
        family) but fault-free preparation does not.
    """

    name: str
    matmul_flops: float
    alu_flops: float
    mem_bandwidth: float
    num_sms: int
    clock_hz: float
    schedulers_per_sm: int = 4
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    smem_per_sm: int = 64 * 1024
    max_threads_per_sm: int = 1024
    max_warps_per_sm: int = 32
    max_blocks_per_sm: int = 16
    warp_size: int = 32
    has_tensor_cores: bool = True
    family: str = "unknown"
    int8_matmul_flops: float | None = None

    def __post_init__(self) -> None:
        if self.matmul_flops <= 0 or self.alu_flops <= 0 or self.mem_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: throughputs must be positive")
        if self.num_sms <= 0:
            raise ConfigurationError(f"{self.name}: num_sms must be positive")
        if self.int8_matmul_flops is not None and self.int8_matmul_flops <= 0:
            raise ConfigurationError(
                f"{self.name}: int8_matmul_flops must be positive when set"
            )

    @property
    def cmr(self) -> float:
        """Compute-to-memory-bandwidth ratio (FLOPs per byte), Eq. 1 RHS."""
        return self.matmul_flops / self.mem_bandwidth

    def for_dtype(self, dtype: str) -> "GPUSpec":
        """The spec priced for one numeric pipeline.

        ``"fp16"`` returns the spec unchanged; ``"int8"`` swaps the
        matrix-math throughput for the INT8 pipe, so every downstream
        quantity — CMR, roofline classification, modeled kernel times —
        prices the quantized executor.  Devices without an INT8 pipe
        (:attr:`int8_matmul_flops` is ``None``) raise
        :class:`~repro.errors.ConfigurationError`.
        """
        if dtype == "fp16":
            return self
        if dtype != "int8":
            raise ConfigurationError(
                f"unknown pipeline dtype {dtype!r} (expected fp16|int8)"
            )
        if self.int8_matmul_flops is None:
            raise ConfigurationError(
                f"{self.name} has no modeled INT8 matrix pipe; devices "
                f"with one: T4, A100, Jetson-AGX-Xavier"
            )
        return replace(self, matmul_flops=self.int8_matmul_flops)

    @property
    def issue_slots_per_s(self) -> float:
        """Aggregate warp-instruction issue slots per second."""
        return self.num_sms * self.schedulers_per_sm * self.clock_hz


# NVIDIA T4 (Turing TU104, inference-optimized): 65 TFLOPs/s FP16 Tensor
# Core, 8.1 TFLOPs/s FP32 CUDA core (=> 16.2 FP16x2), 320 GB/s GDDR6,
# 40 SMs.  FP16 CMR = 65e12 / 320e9 = 203 (paper §3.3); the datasheet's
# 130 INT8 TOPs/s doubles that to 406 for the quantized pipeline.
T4 = GPUSpec(
    name="T4",
    family="turing",
    matmul_flops=65.0e12,
    alu_flops=16.2e12,
    mem_bandwidth=320.0e9,
    num_sms=40,
    clock_hz=1.59e9,
    int8_matmul_flops=130.0e12,
)

# NVIDIA P4 (Pascal GP104): no Tensor Cores; 11 TFLOPs/s FP16 (paper
# §3.3), 5.5 TFLOPs/s FP32 CUDA core, 192 GB/s.  CMR = 11e12/192e9 = 57.
P4 = GPUSpec(
    name="P4",
    family="pascal",
    matmul_flops=11.0e12,
    alu_flops=11.0e12,
    mem_bandwidth=192.0e9,
    num_sms=20,
    clock_hz=1.11e9,
    schedulers_per_sm=4,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    has_tensor_cores=False,
)

# NVIDIA V100 (Volta GV100): 125 TFLOPs/s FP16 Tensor Core, 15.7 TFLOPs/s
# FP32, 900 GB/s HBM2.  CMR = 139 (paper §3.3).
V100 = GPUSpec(
    name="V100",
    family="volta",
    matmul_flops=125.0e12,
    alu_flops=31.4e12,
    mem_bandwidth=900.0e9,
    num_sms=80,
    clock_hz=1.53e9,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    smem_per_sm=96 * 1024,
)

# NVIDIA A100 (Ampere GA100): 312 TFLOPs/s FP16 Tensor Core, 19.5 TFLOPs/s
# FP32, 1555 GB/s HBM2.  CMR = 201 (paper §3.3); 624 INT8 TOPs/s (dense).
A100 = GPUSpec(
    name="A100",
    family="ampere",
    matmul_flops=312.0e12,
    alu_flops=39.0e12,
    mem_bandwidth=1555.0e9,
    num_sms=108,
    clock_hz=1.41e9,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    smem_per_sm=164 * 1024,
    int8_matmul_flops=624.0e12,
)

# NVIDIA Jetson AGX Xavier (Volta, edge): 32 INT8 TOPs/s via Tensor
# Cores, 137 GB/s LPDDR4x.  INT8 CMR = 235 (paper §3.3).  The paper
# evaluates this device in INT8, so ``matmul_flops`` *is* the INT8 pipe
# and ``for_dtype("int8")`` is the identity in throughput terms.
JETSON_AGX_XAVIER = GPUSpec(
    name="Jetson-AGX-Xavier",
    family="volta",
    matmul_flops=32.0e12,
    alu_flops=2.8e12,
    mem_bandwidth=137.0e9,
    num_sms=8,
    clock_hz=1.38e9,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    int8_matmul_flops=32.0e12,
)

_REGISTRY: dict[str, GPUSpec] = {
    spec.name.lower(): spec
    for spec in (T4, P4, V100, A100, JETSON_AGX_XAVIER)
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a device spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown GPU {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_gpus() -> list[str]:
    """Names of all registered devices."""
    return sorted(spec.name for spec in _REGISTRY.values())
