"""CUDA occupancy calculator.

Occupancy — the number of warps resident on an SM relative to the
hardware maximum — controls how well a kernel hides DRAM latency.  The
paper's §4 finding that *traditional* thread-level replication is slow
hinges on exactly this: doubling per-thread accumulator registers halves
the number of co-resident threadblocks, dropping occupancy and with it
effective memory bandwidth.

This module implements the standard occupancy rules (register file,
shared memory, thread count, and block-slot limits per SM) at the
granularity the analytic model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OccupancyError
from ..utils import check_positive_int, check_non_negative_int
from .specs import GPUSpec

#: Register allocation granularity: registers are allocated to warps in
#: chunks of this many registers per thread.
REGISTER_ALLOCATION_UNIT = 8

#: Shared-memory allocation granularity in bytes.
SMEM_ALLOCATION_UNIT = 256


def _round_up(value: int, unit: int) -> int:
    return -(-value // unit) * unit


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration.

    Attributes
    ----------
    blocks_per_sm:
        Threadblocks co-resident on one SM.
    warps_per_sm:
        Resident warps per SM.
    occupancy:
        ``warps_per_sm / max_warps_per_sm`` in [0, 1].
    limiter:
        Which resource bound first: ``"registers"``, ``"smem"``,
        ``"threads"``, or ``"blocks"``.
    """

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    limiter: str


def compute_occupancy(
    spec: GPUSpec,
    *,
    threads_per_block: int,
    registers_per_thread: int,
    smem_per_block: int = 0,
) -> OccupancyResult:
    """Compute how many copies of a threadblock fit on one SM.

    Raises
    ------
    OccupancyError
        If even a single threadblock exceeds an SM resource limit.
    """
    check_positive_int(threads_per_block, "threads_per_block")
    check_positive_int(registers_per_thread, "registers_per_thread")
    check_non_negative_int(smem_per_block, "smem_per_block")

    if threads_per_block % spec.warp_size != 0:
        raise OccupancyError(
            f"threads_per_block={threads_per_block} is not a multiple of the "
            f"warp size ({spec.warp_size})"
        )
    if registers_per_thread > spec.max_registers_per_thread:
        raise OccupancyError(
            f"kernel needs {registers_per_thread} registers/thread; "
            f"{spec.name} caps at {spec.max_registers_per_thread}"
        )
    if threads_per_block > spec.max_threads_per_sm:
        raise OccupancyError(
            f"threadblock of {threads_per_block} threads exceeds "
            f"{spec.name}'s {spec.max_threads_per_sm} threads/SM"
        )

    regs_per_thread_alloc = _round_up(registers_per_thread, REGISTER_ALLOCATION_UNIT)
    regs_per_block = regs_per_thread_alloc * threads_per_block
    if regs_per_block > spec.registers_per_sm:
        raise OccupancyError(
            f"threadblock needs {regs_per_block} registers; "
            f"{spec.name} has {spec.registers_per_sm} per SM"
        )

    limits: dict[str, int] = {
        "registers": spec.registers_per_sm // regs_per_block,
        "threads": spec.max_threads_per_sm // threads_per_block,
        "blocks": spec.max_blocks_per_sm,
    }
    if smem_per_block > 0:
        smem_alloc = _round_up(smem_per_block, SMEM_ALLOCATION_UNIT)
        if smem_alloc > spec.smem_per_sm:
            raise OccupancyError(
                f"threadblock needs {smem_alloc} B of shared memory; "
                f"{spec.name} has {spec.smem_per_sm} B per SM"
            )
        limits["smem"] = spec.smem_per_sm // smem_alloc

    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    warps_per_block = threads_per_block // spec.warp_size
    warps = min(blocks * warps_per_block, spec.max_warps_per_sm)
    blocks = warps // warps_per_block
    if blocks == 0:
        raise OccupancyError("threadblock has more warps than one SM can hold")
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / spec.max_warps_per_sm,
        limiter=limiter,
    )
