"""Execution pipes of the analytic performance model.

A GPU kernel's elapsed time is bounded below by the busiest of several
independent hardware resources ("pipes"):

* the Tensor-Core / matrix-math pipe (MMA FLOPs),
* the conventional CUDA-core ALU pipe (checksum adds, address math),
* the DRAM pipe (bytes moved),
* the warp-scheduler issue pipe (every instruction needs a slot).

The paper's central mechanism lives in the gap between the first and
third pipes: a bandwidth-bound GEMM leaves the Tensor-Core pipe idle, so
thread-level ABFT's redundant MMAs slot in for free, while global ABFT's
extra kernel launches cannot.  The §5.2.2 one-sided/two-sided trade-off
lives in the second pipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Pipe:
    """One hardware throughput resource.

    ``throughput`` is in pipe-native units per second (FLOPs/s for math
    pipes, bytes/s for memory, issue slots/s for the scheduler).
    """

    name: str
    throughput: float

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ConfigurationError(
                f"pipe {self.name!r} needs positive throughput, got {self.throughput}"
            )

    def time_for(self, work: float) -> float:
        """Seconds this pipe needs to retire ``work`` units."""
        if work < 0:
            raise ConfigurationError(f"negative work {work} on pipe {self.name!r}")
        return work / self.throughput


@dataclass(frozen=True)
class PipeSet:
    """The four pipes of a device, with efficiency factors applied."""

    tensor: Pipe
    alu: Pipe
    memory: Pipe
    issue: Pipe

    def __iter__(self) -> Iterator[Pipe]:
        yield self.tensor
        yield self.alu
        yield self.memory
        yield self.issue


@dataclass(frozen=True)
class PipeTimes:
    """Per-pipe busy times for one kernel, in seconds."""

    tensor: float
    alu: float
    memory: float
    issue: float

    @property
    def critical(self) -> str:
        """Name of the pipe with the longest busy time."""
        times = {
            "tensor": self.tensor,
            "alu": self.alu,
            "memory": self.memory,
            "issue": self.issue,
        }
        return max(times, key=lambda k: times[k])

    @property
    def bound(self) -> float:
        """The busy time of the critical pipe (the roofline bound)."""
        return max(self.tensor, self.alu, self.memory, self.issue)

    def scaled(self, factor: float) -> "PipeTimes":
        """All pipe times multiplied by ``factor`` (wave quantization)."""
        return PipeTimes(
            tensor=self.tensor * factor,
            alu=self.alu * factor,
            memory=self.memory * factor,
            issue=self.issue * factor,
        )
