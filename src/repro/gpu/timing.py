"""Kernel latency model: launch overhead + max-over-pipes + wave effects.

The modeled execution time of one kernel is

    T = launches * t_launch + Q * max(T_tc, T_alu, T_mem, T_issue)

where each ``T_pipe = work_pipe / (peak_pipe * efficiency_pipe * U)``,
``U`` accounts for partial-device utilization when the grid has fewer
threadblocks than the device has SM slots, and ``Q`` is the wave
quantization factor (a grid of 1.1 waves takes as long as 2 waves of
compute on the critical pipe).

Memory-latency hiding degrades below an occupancy knee (see
``ModelConstants.mem_latency_occupancy_knee``), which is what punishes
traditional thread-level replication's register bloat (paper §4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import DEFAULT_CONSTANTS, ModelConstants
from ..errors import ConfigurationError
from .occupancy import OccupancyResult, compute_occupancy
from .pipes import Pipe, PipeSet, PipeTimes
from .specs import GPUSpec


@dataclass(frozen=True)
class KernelWork:
    """Resource demands of one kernel launch, as counted by the GEMM engine.

    Attributes
    ----------
    matmul_flops:
        FLOPs routed to the matrix-math (Tensor Core) pipe.
    alu_ops:
        FP16-lane operations routed to the CUDA-core pipe (checksum
        generation, epilogue math, address/loop bookkeeping).
    dram_bytes:
        Bytes moved to/from DRAM.
    issue_slots:
        Warp-instruction issue slots consumed.
    blocks / threads_per_block / registers_per_thread / smem_per_block:
        Grid/occupancy parameters.
    launches:
        Number of kernel launches this work represents (a fused GEMM is
        1; global ABFT's separate check kernel adds another).
    """

    matmul_flops: float
    alu_ops: float
    dram_bytes: float
    issue_slots: float
    blocks: int
    threads_per_block: int
    registers_per_thread: int
    smem_per_block: int = 0
    launches: int = 1

    def __post_init__(self) -> None:
        if min(self.matmul_flops, self.alu_ops, self.dram_bytes, self.issue_slots) < 0:
            raise ConfigurationError("kernel work terms must be non-negative")
        if self.blocks <= 0 or self.threads_per_block <= 0:
            raise ConfigurationError("kernel grid must be non-empty")
        if self.launches < 0:
            raise ConfigurationError("launches must be non-negative")


@dataclass(frozen=True)
class KernelTiming:
    """Result of the latency model for one kernel."""

    total_s: float
    launch_s: float
    pipe_times: PipeTimes
    occupancy: OccupancyResult
    utilization: float
    wave_quantization: float

    @property
    def critical_pipe(self) -> str:
        """Name of the bottleneck pipe ('tensor'/'alu'/'memory'/'issue')."""
        return self.pipe_times.critical


def build_pipes(spec: GPUSpec, constants: ModelConstants = DEFAULT_CONSTANTS) -> PipeSet:
    """Device pipes with sustained-efficiency factors folded in."""
    return PipeSet(
        tensor=Pipe("tensor", spec.matmul_flops * constants.tensor_core_efficiency),
        alu=Pipe("alu", spec.alu_flops * constants.alu_efficiency),
        memory=Pipe("memory", spec.mem_bandwidth * constants.memory_efficiency),
        issue=Pipe("issue", spec.issue_slots_per_s * constants.issue_efficiency),
    )


def _memory_derating(occupancy: float, knee: float) -> float:
    """Fraction of peak bandwidth achievable at the given occupancy."""
    if knee <= 0.0:
        return 1.0
    return min(1.0, occupancy / knee)


def time_kernel(
    spec: GPUSpec,
    work: KernelWork,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> KernelTiming:
    """Model the latency of one kernel launch on ``spec``.

    Raises
    ------
    OccupancyError
        If the kernel cannot be scheduled at all (propagated from the
        occupancy calculator).
    """
    occ = compute_occupancy(
        spec,
        threads_per_block=work.threads_per_block,
        registers_per_thread=work.registers_per_thread,
        smem_per_block=work.smem_per_block,
    )

    # Partial-device utilization: a grid smaller than one full wave only
    # keeps `blocks` SMs busy (at most one block per SM counts toward
    # spreading work; co-residency helps latency hiding, not peak math).
    utilization = min(1.0, work.blocks / spec.num_sms)

    pipes = build_pipes(spec, constants)
    mem_derate = _memory_derating(occ.occupancy, constants.mem_latency_occupancy_knee)

    pipe_times = PipeTimes(
        tensor=pipes.tensor.time_for(work.matmul_flops) / utilization,
        alu=pipes.alu.time_for(work.alu_ops) / utilization,
        memory=pipes.memory.time_for(work.dram_bytes) / (utilization * mem_derate)
        if mem_derate > 0
        else math.inf,
        issue=pipes.issue.time_for(work.issue_slots) / utilization,
    )

    # Wave quantization: the tail wave of a multi-wave grid runs at the
    # same per-wave latency as full waves.
    slots = occ.blocks_per_sm * spec.num_sms
    waves = work.blocks / slots
    quantization = math.ceil(waves) / waves if waves > 1.0 else 1.0

    launch_s = work.launches * constants.launch_overhead_s
    total = launch_s + pipe_times.bound * quantization
    return KernelTiming(
        total_s=total,
        launch_s=launch_s,
        pipe_times=pipe_times,
        occupancy=occ,
        utilization=utilization,
        wave_quantization=quantization,
    )
