"""Application of fault specs to numeric accumulators.

Two granularities: :func:`apply_fault_to_accumulator` corrupts one
element of one accumulator (the scalar path reference semantics), and
:func:`apply_fault_batch` applies one fault per *trial slice* of a
stacked ``(N, rows, cols)`` accumulator with fancy indexing — the hot
path of :meth:`repro.abft.base.PreparedExecution.inject_batch`.  The
batch path is bit-identical to the scalar path per element: additive
faults accumulate in float64 before rounding back to float32, and bit
flips operate on the same FP32/FP16 views the scalar helpers use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import FaultInjectionError
from .bits import flip_fp16_bit, flip_fp32_bit
from .model import FaultKind, FaultSpec


def corrupted_value(original: float, spec: FaultSpec) -> float:
    """The value the target element holds after the fault strikes."""
    if spec.kind is FaultKind.BITFLIP_FP32:
        return flip_fp32_bit(original, spec.bit)
    if spec.kind is FaultKind.BITFLIP_FP16:
        return flip_fp16_bit(original, spec.bit)
    if spec.kind is FaultKind.ADD:
        return float(original) + spec.value
    if spec.kind is FaultKind.SET:
        return spec.value
    raise FaultInjectionError(f"unhandled fault kind {spec.kind!r}")


def apply_fault_to_accumulator(c_pad: np.ndarray, spec: FaultSpec) -> float:
    """Corrupt one element of the padded FP32 accumulator in place.

    Returns the additive delta the fault introduced (``new - old``),
    which is what a corrupted MMA partial product contributes to the
    final accumulator under linear accumulation.
    """
    rows, cols = c_pad.shape
    if not (0 <= spec.row < rows and 0 <= spec.col < cols):
        raise FaultInjectionError(
            f"fault site ({spec.row}, {spec.col}) outside accumulator "
            f"{rows}x{cols}"
        )
    old = float(c_pad[spec.row, spec.col])
    new = corrupted_value(old, spec)
    if not np.isfinite(new):
        # A flip of the exponent MSB can produce inf/NaN; keep it — ABFT
        # comparisons naturally flag non-finite mismatches.
        pass
    c_pad[spec.row, spec.col] = np.float32(new)
    return float(np.float32(new)) - old


def apply_fault_batch(
    c_batch: np.ndarray,
    trials: np.ndarray,
    specs: Sequence[FaultSpec],
) -> None:
    """Corrupt one element per listed trial of a stacked accumulator.

    ``specs[i]`` strikes ``c_batch[trials[i], specs[i].row, specs[i].col]``.
    Faults are grouped by kind and each group is applied with one fancy
    indexed read-modify-write, so the whole call is a handful of NumPy
    operations regardless of how many trials it covers.  A trial may
    appear at most once per call; callers sequencing multiple faults
    into the same trial make one call per ordering step.
    """
    if len(trials) != len(specs):
        raise FaultInjectionError(
            f"{len(trials)} trial indices for {len(specs)} fault specs"
        )
    if not len(specs):
        return
    _, rows_total, cols_total = c_batch.shape
    count = len(specs)
    rows = np.fromiter((s.row for s in specs), dtype=np.intp, count=count)
    cols = np.fromiter((s.col for s in specs), dtype=np.intp, count=count)
    out_of_bounds = (rows >= rows_total) | (cols >= cols_total)
    if out_of_bounds.any():
        bad = specs[int(np.flatnonzero(out_of_bounds)[0])]
        raise FaultInjectionError(
            f"fault site ({bad.row}, {bad.col}) outside accumulator "
            f"{rows_total}x{cols_total}"
        )

    groups: dict[FaultKind, list[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(spec.kind, []).append(i)
    for kind, members in groups.items():
        sel = np.asarray(members, dtype=np.intp)
        t, r, c = trials[sel], rows[sel], cols[sel]
        if kind is FaultKind.ADD:
            deltas = np.fromiter(
                (specs[i].value for i in members), dtype=np.float64,
                count=len(members),
            )
            c_batch[t, r, c] = (
                c_batch[t, r, c].astype(np.float64) + deltas
            ).astype(np.float32)
        elif kind is FaultKind.SET:
            values = np.fromiter(
                (specs[i].value for i in members), dtype=np.float64,
                count=len(members),
            )
            c_batch[t, r, c] = values.astype(np.float32)
        elif kind is FaultKind.BITFLIP_FP32:
            masks = np.fromiter(
                (1 << specs[i].bit for i in members), dtype=np.uint32,
                count=len(members),
            )
            flipped = (c_batch[t, r, c].view(np.uint32) ^ masks).view(np.float32)
            # Round-trip through float64 exactly like the scalar helpers
            # (float() then np.float32): a flip into the NaN space stores
            # the quieted pattern, not the raw signaling bits.
            with np.errstate(invalid="ignore"):
                c_batch[t, r, c] = flipped.astype(np.float64).astype(np.float32)
        elif kind is FaultKind.BITFLIP_FP16:
            masks = np.fromiter(
                (1 << specs[i].bit for i in members), dtype=np.uint16,
                count=len(members),
            )
            with np.errstate(over="ignore"):
                halves = c_batch[t, r, c].astype(np.float16)
            flipped = (halves.view(np.uint16) ^ masks).view(np.float16)
            with np.errstate(invalid="ignore"):
                c_batch[t, r, c] = flipped.astype(np.float64).astype(np.float32)
        else:
            raise FaultInjectionError(f"unhandled fault kind {kind!r}")
