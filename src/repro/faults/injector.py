"""Application of fault specs to numeric accumulators."""

from __future__ import annotations

import numpy as np

from ..errors import FaultInjectionError
from .bits import flip_fp16_bit, flip_fp32_bit
from .model import FaultKind, FaultSpec


def corrupted_value(original: float, spec: FaultSpec) -> float:
    """The value the target element holds after the fault strikes."""
    if spec.kind is FaultKind.BITFLIP_FP32:
        return flip_fp32_bit(original, spec.bit)
    if spec.kind is FaultKind.BITFLIP_FP16:
        return flip_fp16_bit(original, spec.bit)
    if spec.kind is FaultKind.ADD:
        return float(original) + spec.value
    if spec.kind is FaultKind.SET:
        return spec.value
    raise FaultInjectionError(f"unhandled fault kind {spec.kind!r}")


def apply_fault_to_accumulator(c_pad: np.ndarray, spec: FaultSpec) -> float:
    """Corrupt one element of the padded FP32 accumulator in place.

    Returns the additive delta the fault introduced (``new - old``),
    which is what a corrupted MMA partial product contributes to the
    final accumulator under linear accumulation.
    """
    rows, cols = c_pad.shape
    if not (0 <= spec.row < rows and 0 <= spec.col < cols):
        raise FaultInjectionError(
            f"fault site ({spec.row}, {spec.col}) outside accumulator "
            f"{rows}x{cols}"
        )
    old = float(c_pad[spec.row, spec.col])
    new = corrupted_value(old, spec)
    if not np.isfinite(new):
        # A flip of the exponent MSB can produce inf/NaN; keep it — ABFT
        # comparisons naturally flag non-finite mismatches.
        pass
    c_pad[spec.row, spec.col] = np.float32(new)
    return float(np.float32(new)) - old
