"""Application of fault specs to numeric accumulators.

Three granularities: :func:`apply_fault_to_accumulator` corrupts one
element of one accumulator (the scalar path reference semantics),
:func:`apply_fault_batch` applies one fault per *trial slice* of a
stacked ``(N, rows, cols)`` accumulator with fancy indexing, and
:func:`faulted_site_values` computes the final post-fault value of
every struck output element *without* materializing any per-trial
accumulator at all — the fault→coordinate mapping that feeds the
sparse re-reduction path of
:meth:`repro.abft.base.PreparedExecution.inject_batch`.

All paths share one corruption core (:func:`corrupted_values_batch`)
and are bit-identical to the scalar reference per element: additive
faults accumulate in float64 before rounding back to float32, and bit
flips operate on the same FP32/FP16 views the scalar helpers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import FaultInjectionError
from .bits import flip_fp16_bit, flip_fp32_bit
from .model import FaultKind, FaultPath, FaultSpec


def corrupted_value(original: float, spec: FaultSpec) -> float:
    """The value the target element holds after the fault strikes."""
    if spec.kind is FaultKind.BITFLIP_FP32:
        return flip_fp32_bit(original, spec.bit)
    if spec.kind is FaultKind.BITFLIP_FP16:
        return flip_fp16_bit(original, spec.bit)
    if spec.kind is FaultKind.ADD:
        return float(original) + spec.value
    if spec.kind is FaultKind.SET:
        return spec.value
    raise FaultInjectionError(f"unhandled fault kind {spec.kind!r}")


_INT32_WRAP = 1 << 32
_INT32_MIN = -(1 << 31)


def _wrap_int32(value: int) -> int:
    """Wrap an arbitrary integer into INT32 two's-complement range."""
    return (value - _INT32_MIN) % _INT32_WRAP + _INT32_MIN


def corrupted_int32_value(original: int, spec: FaultSpec) -> int:
    """INT32-domain reference semantics of one fault on one element.

    Bit flips XOR the requested bit of the 32-bit word (an FP16-domain
    flip strikes the low half-word — same storage-level event, no
    float interpretation); additive and set faults round the spec value
    to the nearest integer and wrap in two's complement like a hardware
    integer datapath would.
    """
    if spec.kind in (FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16):
        return _wrap_int32(_wrap_int32(original) ^ (1 << spec.bit))
    if not np.isfinite(spec.value):
        raise FaultInjectionError(
            f"non-finite fault value {spec.value!r} on an integer accumulator"
        )
    if spec.kind is FaultKind.ADD:
        return _wrap_int32(original + int(np.rint(spec.value)))
    if spec.kind is FaultKind.SET:
        return _wrap_int32(int(np.rint(spec.value)))
    raise FaultInjectionError(f"unhandled fault kind {spec.kind!r}")


def apply_fault_to_accumulator(c_pad: np.ndarray, spec: FaultSpec) -> float:
    """Corrupt one element of the padded FP32 accumulator in place.

    Returns the additive delta the fault introduced (``new - old``),
    which is what a corrupted MMA partial product contributes to the
    final accumulator under linear accumulation.
    """
    rows, cols = c_pad.shape
    if not (0 <= spec.row < rows and 0 <= spec.col < cols):
        raise FaultInjectionError(
            f"fault site ({spec.row}, {spec.col}) outside accumulator "
            f"{rows}x{cols}"
        )
    if np.issubdtype(c_pad.dtype, np.integer):
        old_int = int(c_pad[spec.row, spec.col])
        new_int = corrupted_int32_value(old_int, spec)
        c_pad[spec.row, spec.col] = np.int32(new_int)
        return float(new_int - old_int)
    old = float(c_pad[spec.row, spec.col])
    new = corrupted_value(old, spec)
    if not np.isfinite(new):
        # A flip of the exponent MSB can produce inf/NaN; keep it — ABFT
        # comparisons naturally flag non-finite mismatches.
        pass
    stored = c_pad.dtype.type(new)
    c_pad[spec.row, spec.col] = stored
    return float(stored) - old


def corrupted_values_batch(
    values: np.ndarray, specs: Sequence[FaultSpec]
) -> np.ndarray:
    """Post-fault values of a flat float32 vector, one spec per element.

    The vectorized corruption core shared by every batch path: faults
    are grouped by kind and each group is applied in one NumPy
    operation, bit-identical per element to :func:`corrupted_value`
    (additive faults accumulate in float64 before rounding back to
    float32; bit flips round-trip through float64 exactly like the
    scalar helpers, so a flip into the NaN space stores the quieted
    pattern, not the raw signaling bits).
    """
    if values.shape != (len(specs),):
        raise FaultInjectionError(
            f"{values.shape} corruption values for {len(specs)} fault specs"
        )
    if np.issubdtype(values.dtype, np.integer):
        return _corrupted_int32_values_batch(values, specs)
    out = np.ascontiguousarray(values, dtype=np.float32)
    if out is values:
        out = values.copy()
    groups: dict[FaultKind, list[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(spec.kind, []).append(i)
    for kind, members in groups.items():
        sel = np.asarray(members, dtype=np.intp)
        if kind is FaultKind.ADD:
            deltas = np.fromiter(
                (specs[i].value for i in members), dtype=np.float64,
                count=len(members),
            )
            out[sel] = (out[sel].astype(np.float64) + deltas).astype(np.float32)
        elif kind is FaultKind.SET:
            news = np.fromiter(
                (specs[i].value for i in members), dtype=np.float64,
                count=len(members),
            )
            out[sel] = news.astype(np.float32)
        elif kind is FaultKind.BITFLIP_FP32:
            masks = np.fromiter(
                (1 << specs[i].bit for i in members), dtype=np.uint32,
                count=len(members),
            )
            flipped = (out[sel].view(np.uint32) ^ masks).view(np.float32)
            with np.errstate(invalid="ignore"):
                out[sel] = flipped.astype(np.float64).astype(np.float32)
        elif kind is FaultKind.BITFLIP_FP16:
            masks = np.fromiter(
                (1 << specs[i].bit for i in members), dtype=np.uint16,
                count=len(members),
            )
            with np.errstate(over="ignore"):
                halves = out[sel].astype(np.float16)
            flipped = (halves.view(np.uint16) ^ masks).view(np.float16)
            with np.errstate(invalid="ignore"):
                out[sel] = flipped.astype(np.float64).astype(np.float32)
        else:
            raise FaultInjectionError(f"unhandled fault kind {kind!r}")
    return out


def _corrupted_int32_values_batch(
    values: np.ndarray, specs: Sequence[FaultSpec]
) -> np.ndarray:
    """INT32 corruption core: vectorized :func:`corrupted_int32_value`.

    Both bit-flip kinds XOR the 32-bit word (an FP16 flip is a low
    half-word strike, ``bit < 16`` by :class:`FaultSpec` contract);
    ADD/SET round the float spec value to the nearest integer and wrap
    in two's complement — element-identical to the scalar reference.
    """
    out = np.ascontiguousarray(values, dtype=np.int32)
    if out is values:
        out = values.copy()
    groups: dict[FaultKind, list[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(spec.kind, []).append(i)
    for kind, members in groups.items():
        sel = np.asarray(members, dtype=np.intp)
        if kind in (FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16):
            masks = np.fromiter(
                (1 << specs[i].bit for i in members), dtype=np.uint32,
                count=len(members),
            )
            out[sel] = (out[sel].view(np.uint32) ^ masks).view(np.int32)
        elif kind in (FaultKind.ADD, FaultKind.SET):
            raw = [float(specs[i].value) for i in members]
            if not np.all(np.isfinite(raw)):
                raise FaultInjectionError(
                    "non-finite fault value on an integer accumulator"
                )
            ints = np.fromiter(
                (_wrap_int32(int(np.rint(v))) for v in raw),
                dtype=np.int64, count=len(members),
            )
            if kind is FaultKind.ADD:
                summed = out[sel].astype(np.int64) + ints
                out[sel] = (summed & np.int64(_INT32_WRAP - 1)).astype(
                    np.uint32
                ).view(np.int32)
            else:
                out[sel] = ints.astype(np.uint32).view(np.int32)
        else:
            raise FaultInjectionError(f"unhandled fault kind {kind!r}")
    return out


def _validated_coords(
    specs: Sequence[FaultSpec], rows_total: int, cols_total: int
) -> tuple[np.ndarray, np.ndarray]:
    """Row/col index arrays of ``specs``, bounds-checked."""
    count = len(specs)
    rows = np.fromiter((s.row for s in specs), dtype=np.intp, count=count)
    cols = np.fromiter((s.col for s in specs), dtype=np.intp, count=count)
    out_of_bounds = (rows >= rows_total) | (cols >= cols_total)
    if out_of_bounds.any():
        bad = specs[int(np.flatnonzero(out_of_bounds)[0])]
        raise FaultInjectionError(
            f"fault site ({bad.row}, {bad.col}) outside accumulator "
            f"{rows_total}x{cols_total}"
        )
    return rows, cols


def apply_fault_batch(
    c_batch: np.ndarray,
    trials: np.ndarray,
    specs: Sequence[FaultSpec],
) -> None:
    """Corrupt one element per listed trial of a stacked accumulator.

    ``specs[i]`` strikes ``c_batch[trials[i], specs[i].row, specs[i].col]``.
    The struck elements are gathered with one fancy-indexed read, run
    through :func:`corrupted_values_batch`, and scattered back, so the
    whole call is a handful of NumPy operations regardless of how many
    trials it covers.  A trial may appear at most once per call; callers
    sequencing multiple faults into the same trial make one call per
    ordering step.
    """
    if len(trials) != len(specs):
        raise FaultInjectionError(
            f"{len(trials)} trial indices for {len(specs)} fault specs"
        )
    if not len(specs):
        return
    _, rows_total, cols_total = c_batch.shape
    rows, cols = _validated_coords(specs, rows_total, cols_total)
    c_batch[trials, rows, cols] = corrupted_values_batch(
        c_batch[trials, rows, cols], specs
    )


@dataclass(frozen=True)
class FaultSites:
    """Every original-path fault site of a trial batch, with final values.

    One entry per **unique** ``(trial, row, col)`` site: ``values[i]``
    is the value the accumulator element would hold after *all* of that
    trial's faults on that site were applied in spec order.  This is
    the sparse re-reduction engine's whole view of a batch — which
    output elements changed and what they became — derived without
    touching an ``(N, m, n)`` accumulator.
    """

    trials: np.ndarray  # (S,) intp — trial index per site
    rows: np.ndarray  # (S,) intp — padded accumulator row
    cols: np.ndarray  # (S,) intp — padded accumulator column
    values: np.ndarray  # (S,) accumulator dtype — final post-fault value
    n_trials: int

    def __len__(self) -> int:
        return len(self.trials)

    def deltas(self, c_clean: np.ndarray) -> np.ndarray:
        """Per-site signed corruption deltas against a clean grid: ``(S,)``.

        ``deltas[i] = float64(values[i]) - float64(c_clean[site i])`` —
        what each struck output element moved by after all of its
        trial's faults were applied.  Non-finite entries mark faults
        that flipped an element into inf/NaN.  This is the quantity the
        campaign layer classifies significance from, shared between the
        single-trial and batched record paths.
        """
        return self.values.astype(np.float64) - c_clean[
            self.rows, self.cols
        ].astype(np.float64)


def faulted_site_values(
    c_clean: np.ndarray,
    faults_batch: Sequence[Sequence[FaultSpec]],
) -> FaultSites:
    """Map a trial batch's original-path faults to final site values.

    Walks the same per-trial ordering steps as the dense stacked path
    (step ``j`` applies every trial's ``j``-th original-path fault), but
    applies each step's corruption only to the handful of struck clean
    values — so deriving the sparse engine's inputs costs O(faults),
    not O(trials x outputs).  Bit-identical per element to reading the
    struck sites out of :func:`apply_fault_batch`'s accumulator.
    """
    rows_total, cols_total = c_clean.shape
    site_index: dict[tuple[int, int, int], int] = {}
    site_trials: list[int] = []
    site_rows: list[int] = []
    site_cols: list[int] = []
    steps: list[list[tuple[int, FaultSpec]]] = []
    for t, faults in enumerate(faults_batch):
        step = 0
        for spec in faults:
            if spec.path is not FaultPath.ORIGINAL:
                continue
            key = (t, spec.row, spec.col)
            idx = site_index.get(key)
            if idx is None:
                idx = len(site_trials)
                site_index[key] = idx
                site_trials.append(t)
                site_rows.append(spec.row)
                site_cols.append(spec.col)
            if step == len(steps):
                steps.append([])
            steps[step].append((idx, spec))
            step += 1

    trials = np.asarray(site_trials, dtype=np.intp)
    rows = np.asarray(site_rows, dtype=np.intp)
    cols = np.asarray(site_cols, dtype=np.intp)
    if len(trials):
        all_specs = [spec for entries in steps for _, spec in entries]
        _validated_coords(all_specs, rows_total, cols_total)
    site_dtype = (
        np.int32 if np.issubdtype(c_clean.dtype, np.integer) else np.float32
    )
    values = c_clean[rows, cols].astype(site_dtype, copy=True)
    for entries in steps:
        sel = np.asarray([idx for idx, _ in entries], dtype=np.intp)
        values[sel] = corrupted_values_batch(
            values[sel], [spec for _, spec in entries]
        )
    return FaultSites(
        trials=trials, rows=rows, cols=cols, values=values,
        n_trials=len(faults_batch),
    )


def sites_from_flat_specs(
    c_clean: np.ndarray,
    trial_ids: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    specs: Sequence[FaultSpec],
    n_trials: int,
) -> FaultSites:
    """:class:`FaultSites` assembled directly from flat trial-major arrays.

    The fused fast path for freshly *drawn* batches
    (:meth:`repro.faults.FaultCampaign.run_batch`): the caller
    guarantees every spec targets the original path, the arrays are in
    trial-major spec order, and no trial strikes one site twice — so
    the dict-based first-occurrence walk of :func:`faulted_site_values`
    collapses to one gather + one :func:`corrupted_values_batch` call.
    Bit-identical to :func:`faulted_site_values` on the same batch:
    unique sites in trial-major order *are* first-occurrence order, and
    single-step corruption over disjoint elements matches the stepped
    application per element.
    """
    if not (len(trial_ids) == len(rows) == len(cols) == len(specs)):
        raise FaultInjectionError(
            f"mismatched flat site arrays: {len(trial_ids)} trials, "
            f"{len(rows)} rows, {len(cols)} cols, {len(specs)} specs"
        )
    rows_total, cols_total = c_clean.shape
    out_of_bounds = (rows >= rows_total) | (cols >= cols_total)
    if len(rows) and out_of_bounds.any():
        i = int(np.flatnonzero(out_of_bounds)[0])
        raise FaultInjectionError(
            f"fault site ({specs[i].row}, {specs[i].col}) outside "
            f"accumulator {rows_total}x{cols_total}"
        )
    values = corrupted_values_batch(c_clean[rows, cols], specs)
    return FaultSites(
        trials=np.asarray(trial_ids, dtype=np.intp),
        rows=np.asarray(rows, dtype=np.intp),
        cols=np.asarray(cols, dtype=np.intp),
        values=values,
        n_trials=n_trials,
    )


def subset_sites(sites: FaultSites, trial_indices: Sequence[int]) -> FaultSites:
    """Sites of the listed trials, renumbered to the subset's order.

    ``trial_indices[j]`` becomes trial ``j`` of the returned map — the
    shape the sparse engine's dense-fallback takes when a few trials of
    a batch (those with corrupted checksum sides) need fully
    materialized check arrays.
    """
    renumber = {int(t): j for j, t in enumerate(trial_indices)}
    if len(renumber) != len(trial_indices):
        raise FaultInjectionError("trial_indices must be unique")
    mask = np.isin(sites.trials, np.asarray(trial_indices, dtype=np.intp))
    kept = sites.trials[mask]
    return FaultSites(
        trials=np.asarray([renumber[int(t)] for t in kept], dtype=np.intp),
        rows=sites.rows[mask],
        cols=sites.cols[mask],
        values=sites.values[mask],
        n_trials=len(trial_indices),
    )
