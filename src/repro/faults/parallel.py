"""Multiprocess sharded campaign execution.

The prepared sparse engine sustains tens of thousands of trials per
second — on one core.  This module scales campaigns across cores by
sharding the *trials* of one run over a
:class:`concurrent.futures.ProcessPoolExecutor` while sharing the
*fault-invariant* state: the parent exports the read-only
:class:`~repro.abft.base.PreparedExecution` (padded operands, clean
FP32 accumulator, cached check arrays) into one
:mod:`multiprocessing.shared_memory` segment, and every worker maps
zero-copy views of it — no per-worker clean GEMM, no pickling of
operand or check arrays.  Workers run ordinary chunked sparse
``inject_batch`` shards locally and return columnar verdicts; the
parent concatenates them in shard order.

Determinism contract (DESIGN.md §4): the parent draws the *entire*
random spec stream exactly as the in-process path would — one seeded
RNG, whole-batch draws — and splits it into contiguous trial shards,
so a fixed campaign seed yields record-for-record identical results at
any worker count (``workers=1`` *is* the in-process path; sharded runs
merge to the same records, pinned by a hypothesis property).

Failure contract: a worker that raises — or dies outright
(:class:`~concurrent.futures.process.BrokenProcessPool`) — surfaces as
one :class:`~repro.errors.CampaignError` with the underlying exception
chained; the pool is drained, the shared segment unlinked, and no
partial merge escapes.

The pool uses the ``fork`` start method where available (cheap, and
the workers inherit the loaded NumPy), but nothing here depends on
inherited state: shard entry points are module-level functions taking
explicit picklable payloads, so the engine also runs under ``spawn``.
"""

from __future__ import annotations

import io
import logging
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..config import DetectionConstants
from ..errors import CampaignError, FaultInjectionError
from .campaign import (
    FaultCampaign,
    SpecArrays,
    TrialRecord,
    assemble_specs,
    group_spec_trials,
)
from .model import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .propagation import PropagationCampaign, PropagationRecord

__all__ = [
    "SharedPayload",
    "attach_payload",
    "export_payload",
    "run_campaign_sharded",
    "run_propagation_sharded",
    "shard_bounds",
]

_LOGGER = logging.getLogger(__name__)

#: PID that imported this module — lets workers tell whether they
#: inherited the parent's resource tracker (fork: module state carried
#: over, so the pid differs) or own a fresh one (spawn: re-import).
_IMPORT_PID = os.getpid()

#: Segment names created (not merely attached) by this process, whose
#: tracker registration belongs to the owner and must never be undone.
_CREATED: set[str] = set()

#: Persistent-id tag marking an extracted ndarray in a pickled skeleton.
_NDARRAY_TAG = "repro-ndarray"
#: Byte alignment of each array inside the shared segment (cache line).
_SHM_ALIGN = 64


# ----------------------------------------------------------------------
# Shared-memory payloads: object graph -> (skeleton pickle, one shm
# segment holding every ndarray) -> zero-copy reconstruction in workers.
# ----------------------------------------------------------------------
class _ExtractingPickler(pickle.Pickler):
    """Pickler that parks every ndarray aside instead of serializing it.

    The pickled stream (the *skeleton*) contains persistent-id tokens
    where the arrays were; the arrays themselves are collected for
    placement in shared memory.  This works for arbitrary object
    graphs — dataclasses, ``__slots__`` classes, nested containers —
    with zero per-class code.
    """

    def __init__(self, file, arrays: list[np.ndarray]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays

    def persistent_id(self, obj):
        if type(obj) is np.ndarray:
            self._arrays.append(np.ascontiguousarray(obj))
            return (_NDARRAY_TAG, len(self._arrays) - 1)
        return None


class _ResolvingUnpickler(pickle.Unpickler):
    """Unpickler substituting shared-memory views for array tokens."""

    def __init__(self, file, arrays: Sequence[np.ndarray]) -> None:
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):
        tag, index = pid
        if tag != _NDARRAY_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._arrays[index]


@dataclass(frozen=True)
class SharedPayload:
    """A picklable handle to an object graph parked in shared memory.

    Attributes
    ----------
    shm_name:
        Name of the segment holding every extracted ndarray.
    skeleton:
        Pickle of the object graph with arrays replaced by tokens.
    metas:
        Per-array ``(dtype_str, shape, byte_offset)`` reconstruction
        metadata, in extraction order.
    """

    shm_name: str
    skeleton: bytes
    metas: tuple[tuple[str, tuple[int, ...], int], ...]


def export_payload(obj) -> tuple[SharedPayload, shared_memory.SharedMemory]:
    """Park ``obj``'s ndarrays in one shared segment; return the handle.

    The caller owns the returned segment and must ``close()`` and
    ``unlink()`` it when every consumer is done.  The payload itself is
    small (skeleton pickle + offsets) and cheap to ship to workers.
    """
    buf = io.BytesIO()
    arrays: list[np.ndarray] = []
    _ExtractingPickler(buf, arrays).dump(obj)
    offsets: list[int] = []
    total = 0
    for array in arrays:
        total = -(-total // _SHM_ALIGN) * _SHM_ALIGN
        offsets.append(total)
        total += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    metas = []
    for array, offset in zip(arrays, offsets):
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
        )
        view[...] = array
        metas.append((array.dtype.str, array.shape, offset))
    payload = SharedPayload(
        shm_name=shm.name, skeleton=buf.getvalue(), metas=tuple(metas)
    )
    _CREATED.add(shm.name)
    return payload, shm


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Undo resource-tracker registration of an attach-only mapping.

    CPython's resource tracker registers every ``SharedMemory`` handle
    for cleanup — including pure attachments to a segment owned by
    another process (cpython#82300).  A *spawned* worker owns a private
    tracker, which would unlink the parent's segment when the worker
    exits — so the attachment must be unregistered there.  A *forked*
    worker shares the parent's tracker (the fd rides the fork), where
    the duplicate registration is an idempotent set-add and must be
    left alone: unregistering would strip the parent's own entry.  The
    two are told apart by whether this process inherited the module's
    import-time state.  Attaching in the *creating* process (useful in
    tests) must also leave the registration alone — it is the same
    entry ``export_payload`` made, and the owner's ``unlink()`` still
    needs it.
    """
    if os.getpid() != _IMPORT_PID:
        return
    if getattr(shm, "_name", shm.name).lstrip("/") in _CREATED:
        return
    try:
        resource_tracker.unregister(
            getattr(shm, "_name", shm.name), "shared_memory"
        )
    except (OSError, ValueError, KeyError) as exc:
        # The tracker process may already be gone (OSError: broken
        # pipe at interpreter teardown) or the registration cache may
        # not hold this name (ValueError/KeyError across CPython
        # versions).  Benign here — but logged, so a real lifecycle
        # bug (e.g. double-unregistration) is visible under
        # ``logging.DEBUG`` instead of silently swallowed.
        _LOGGER.debug(
            "resource-tracker unregister of %s failed: %s", shm.name, exc
        )


#: Worker-process cache of attached payloads, keyed by segment name —
#: the reconstruction cost is paid once per worker, not once per shard.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, object]] = {}


def attach_payload(payload: SharedPayload):
    """Reconstruct an exported object graph over shared-memory views.

    Every ndarray in the result is a read-only zero-copy view into the
    parent's segment; everything else is an ordinary private object
    rebuilt from the skeleton pickle.  Attachments are cached per
    process for the lifetime of the worker.
    """
    cached = _ATTACHED.get(payload.shm_name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=payload.shm_name)
    _untrack(shm)
    arrays: list[np.ndarray] = []
    for dtype_str, shape, offset in payload.metas:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=offset
        )
        view.flags.writeable = False
        arrays.append(view)
    obj = _ResolvingUnpickler(io.BytesIO(payload.skeleton), arrays).load()
    _ATTACHED[payload.shm_name] = (shm, obj)
    return obj


# ----------------------------------------------------------------------
# Shard partitioning and the worker entry points.
# ----------------------------------------------------------------------
def shard_bounds(n_trials: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` trial shards, one per worker.

    At most ``min(workers, n_trials)`` shards, sizes differing by at
    most one, earlier shards taking the remainder — a pure function of
    ``(n_trials, workers)``, so the partition is deterministic.  The
    shards tile the trial index space in order, which is what lets the
    parent merge per-shard results by simple concatenation.
    """
    k = max(1, min(workers, n_trials))
    base, extra = divmod(n_trials, k)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for i in range(k):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass(frozen=True)
class _ShardConfig:
    """Scalar campaign configuration shipped to every shard worker.

    Carries the parent campaign's *derived* settings — including the
    clean-baseline tolerance scale — so workers classify identically to
    the in-process path without re-running preparation or the baseline
    injection.
    """

    detection: DetectionConstants
    significance_factor: float
    tolerance_scale: float
    batch_size: int
    use_sparse: bool


def _run_campaign_shard(
    payload: SharedPayload,
    cfg: _ShardConfig,
    trials: list[tuple[FaultSpec, ...]] | None,
    arrays: SpecArrays | None,
    faults_per_trial: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Execute one contiguous trial shard in a worker process.

    Trials arrive either as explicit fault tuples (the :meth:`~repro.
    faults.FaultCampaign.run` path) or as a slice of the parent's raw
    spec-draw arrays (the :meth:`~repro.faults.FaultCampaign.run_batch`
    path — five small numeric arrays instead of thousands of pickled
    specs); the worker assembles specs locally, bit-identically to the
    parent's own assembly.  Returns the classification *columns*
    ``(deltas, detected, significant, benign)`` — compact numpy arrays
    — leaving record-object construction to the parent.
    """
    prepared = attach_payload(payload)
    campaign = FaultCampaign._from_prepared(
        prepared,
        detection=cfg.detection,
        significance_factor=cfg.significance_factor,
        tolerance_scale=cfg.tolerance_scale,
        batch_size=cfg.batch_size,
        use_sparse=cfg.use_sparse,
    )
    sites_fn = None
    if trials is None:
        trials = group_spec_trials(assemble_specs(arrays), faults_per_trial)
        sites_fn = campaign._fused_sites_fn(trials)
    return campaign._run_specs_columns(trials, sites_fn=sites_fn)


def _run_propagation_shard(
    payload: SharedPayload,
    trials: list[tuple[FaultSpec, ...]],
) -> "list[PropagationRecord]":
    """Execute one contiguous propagation-trial shard in a worker.

    The payload is the parent campaign's shard state (struck-layer
    prepared execution, clean baselines, downstream replay ops — see
    :meth:`~repro.faults.PropagationCampaign._shard_state`); the worker
    rebuilds a replay-capable campaign over the shared views and runs
    the standard chunk loop.  Records are plain frozen dataclasses and
    propagation throughput is orders of magnitude below the GEMM
    campaigns', so returning them pickled is free.
    """
    from .propagation import PropagationCampaign

    state = attach_payload(payload)
    campaign = PropagationCampaign._from_state(state)
    batch = state["batch_size"]
    records = []
    for start in range(0, len(trials), batch):
        records.extend(campaign._run_chunk(trials[start : start + batch]))
    return records


# ----------------------------------------------------------------------
# Parent-side orchestration.
# ----------------------------------------------------------------------
def _mp_context():
    """``fork`` where available (cheap startup, inherits loaded NumPy);
    the platform default otherwise.  Shard entry points are spawn-safe
    either way."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _gather_shards(pool, futures, shm, parent_side=None):
    """Collect shard results in submission order; always clean up.

    ``parent_side`` (optional thunk) runs after submission, overlapping
    parent-side assembly with worker execution.  Any worker failure —
    an exception raised mid-shard, or a dead worker surfacing as
    ``BrokenProcessPool`` — cancels what it can, tears the pool down,
    and re-raises as one :class:`CampaignError` with the cause chained.
    The shared segment is closed and unlinked on every path, so neither
    success, failure, nor ``KeyboardInterrupt`` leaks ``/dev/shm``
    space.
    """
    try:
        extra = parent_side() if parent_side is not None else None
        results = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                for pending in futures:
                    pending.cancel()
                raise CampaignError(
                    f"sharded campaign failed in a worker process: {exc}"
                ) from exc
        return results, extra
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def run_campaign_sharded(
    campaign: FaultCampaign,
    *,
    workers: int,
    trials: Sequence[tuple[FaultSpec, ...]] | None = None,
    arrays: SpecArrays | None = None,
    n_trials: int | None = None,
    faults_per_trial: int = 1,
) -> list[TrialRecord]:
    """Run a campaign's trials across a process pool; merge in order.

    Exactly one of ``trials`` (explicit fault tuples) or ``arrays`` (a
    drawn :class:`SpecArrays` batch of ``n_trials * faults_per_trial``
    specs) selects the shard transport.  The prepared state ships once
    via shared memory; each worker classifies its contiguous shard and
    returns verdict columns, which the parent concatenates in shard
    order and renders into :class:`TrialRecord` objects — yielding the
    exact record sequence the in-process path produces.
    """
    if (trials is None) == (arrays is None):
        raise FaultInjectionError(
            "run_campaign_sharded takes exactly one of trials= or arrays="
        )
    if trials is not None:
        n = len(trials)
        trials = list(trials)
    else:
        if n_trials is None:
            raise FaultInjectionError("arrays= requires n_trials=")
        n = int(n_trials)
        if len(arrays) != n * faults_per_trial:
            raise FaultInjectionError(
                f"drew {len(arrays)} specs for {n} trials x "
                f"{faults_per_trial} faults/trial"
            )

    prepared = campaign._prepared
    if campaign._use_sparse:
        # Force the lazy clean check arrays into the prepared state now
        # so they ride the shared segment instead of being rebuilt once
        # per worker.
        prepared.clean_reductions
        prepared.clean_comparison(campaign.detection)
    cfg = _ShardConfig(
        detection=campaign.detection,
        significance_factor=campaign.significance_factor,
        tolerance_scale=campaign._tolerance_scale,
        batch_size=campaign.batch_size,
        use_sparse=campaign._use_sparse,
    )
    payload, shm = export_payload(prepared)
    bounds = shard_bounds(n, workers)
    pool = ProcessPoolExecutor(max_workers=len(bounds), mp_context=_mp_context())
    futures = []
    for lo, hi in bounds:
        if trials is not None:
            shard = (trials[lo:hi], None, 1)
        else:
            r = faults_per_trial
            shard = (None, arrays.slice(lo * r, hi * r), r)
        futures.append(pool.submit(_run_campaign_shard, payload, cfg, *shard))

    def parent_side():
        # Record skeletons (the per-trial fault tuples) are built here,
        # overlapping the workers' numeric phase.
        if trials is not None:
            return trials
        return group_spec_trials(assemble_specs(arrays), faults_per_trial)

    columns, all_trials = _gather_shards(pool, futures, shm, parent_side)
    merged = tuple(
        np.concatenate([shard[k] for shard in columns]) for k in range(4)
    )
    return FaultCampaign._records_from_columns(all_trials, *merged)


def run_propagation_sharded(
    campaign: "PropagationCampaign",
    trials: Sequence[tuple[FaultSpec, ...]],
    *,
    workers: int,
) -> "list[PropagationRecord]":
    """Run propagation trials across a process pool; merge in order.

    Ships the campaign's shard state (struck-layer prepared execution,
    clean baselines, downstream replay ops) once via shared memory and
    splits the trial list into contiguous shards.  Per-trial records
    are independent of chunk and shard boundaries, so ordered
    concatenation reproduces the sequential record stream exactly.
    """
    trials = list(trials)
    if campaign._prepared.scheme.supports_sparse:
        campaign._prepared.clean_reductions
        campaign._prepared.clean_comparison(campaign._detection)
    payload, shm = export_payload(campaign._shard_state())
    bounds = shard_bounds(len(trials), workers)
    pool = ProcessPoolExecutor(max_workers=len(bounds), mp_context=_mp_context())
    futures = [
        pool.submit(_run_propagation_shard, payload, trials[lo:hi])
        for lo, hi in bounds
    ]
    shards, _ = _gather_shards(pool, futures, shm)
    return [record for shard in shards for record in shard]
