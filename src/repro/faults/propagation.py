"""End-to-end SDC propagation campaigns with detection-triggered recovery.

The GEMM-level campaigns (:class:`~repro.faults.FaultCampaign`) score
detection *at the struck layer* and stop.  The paper's premise is one
level up: what matters is whether an undetected fault silently corrupts
the **model output** — a top-1 flip, or output divergence beyond
tolerance.  :class:`PropagationCampaign` closes that gap: each trial
injects a fault set into one layer's GEMM via the prepared sparse
engine, carries the corrupted activations through the remaining layers
of the numeric model, and classifies the end-to-end outcome against
the ABFT verdict:

===============  =========  ================  =============================
outcome          detected?  output corrupted  meaning
===============  =========  ================  =============================
masked           no         no                absorbed by quantization /
                                              downstream nonlinearities
detected         yes        yes               ABFT caught real harm
benign-alarm     yes        no                alarm without end-to-end harm
undetected-SDC   no         yes               **silent data corruption**
===============  =========  ================  =============================

Downstream replay is cheap by construction: a corrupted *input*
activation yields a self-consistent downstream GEMM (checksums computed
from the corrupted operand agree with the corrupted output — ABFT
cannot, and should not, fire there), so downstream layers replay
through the raw tiled executor reusing each layer's clean prepared
state from the session's shared :class:`~repro.abft.base.PreparedCache`
— per trial only the struck activations are re-padded and multiplied;
no checksum work, no re-preparation.  Trials whose faults are absorbed
by the FP16 output quantization (or land in the padding region) skip
the replay entirely: their output *is* the clean output.

On detection, an optional :class:`~repro.faults.RecoveryPolicy` runs
the same bounded retry loop the inference engine uses; every recovered
trial is asserted bit-identical to the clean pass — at the layer
boundary always, end to end when ``verify_recovery`` is on.

See DESIGN.md §3 for the taxonomy, retry semantics, and degradation
modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ConfigurationError, FaultInjectionError
from .campaign import FaultCampaign
from .injector import faulted_site_values
from .model import FaultSpec
from .options import CampaignOptions, resolve_option
from .recovery import RecoveryPolicy, attempt_recovery

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..nn.inference import ProtectedInference, TraceStep


class PropagationOutcome(Enum):
    """End-to-end classification of one propagation trial (pre-recovery)."""

    MASKED = "masked"
    DETECTED = "detected"
    BENIGN_ALARM = "benign-alarm"
    UNDETECTED_SDC = "undetected-sdc"


@dataclass(frozen=True)
class PropagationRecord:
    """One propagation trial: GEMM verdict, end-to-end harm, recovery.

    Attributes
    ----------
    faults:
        The trial's injected fault set (struck layer's GEMM).
    detected:
        The struck layer's ABFT verdict.
    output_corrupted:
        The model output diverged from the clean pass (top-1 flip or
        per-element divergence beyond the campaign tolerances), before
        any recovery.
    top1_flip:
        Any sample's argmax changed.
    divergence:
        Largest absolute output divergence (float64; ``inf`` when the
        corrupted output went non-finite, ``0.0`` for masked trials).
    outcome:
        The detection x corruption cross-classification.
    retries, recovered, degraded:
        What the recovery policy did about a detection (all zero/False
        without a policy).
    residual_sdc:
        Output corruption that survives the recovery path: undetected
        SDC always, and detected-but-unrecovered corruption under
        ``flag-and-propagate``.  Recovered trials never carry it.
    """

    faults: tuple[FaultSpec, ...]
    detected: bool
    output_corrupted: bool
    top1_flip: bool
    divergence: float
    outcome: PropagationOutcome
    retries: int = 0
    recovered: bool = False
    degraded: bool = False
    residual_sdc: bool = False


@dataclass
class PropagationResult:
    """Aggregated propagation-campaign statistics."""

    model: str
    layer: str
    scheme: str
    records: list[PropagationRecord] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.records)

    def count(self, outcome: PropagationOutcome) -> int:
        """Trials classified as ``outcome``."""
        return sum(r.outcome is outcome for r in self.records)

    @property
    def n_detected(self) -> int:
        return sum(r.detected for r in self.records)

    @property
    def n_corrupted(self) -> int:
        """Trials whose pre-recovery output was corrupted."""
        return sum(r.output_corrupted for r in self.records)

    @property
    def n_undetected_sdc(self) -> int:
        return self.count(PropagationOutcome.UNDETECTED_SDC)

    @property
    def undetected_sdc_rate(self) -> float:
        """Fraction of trials that silently corrupted the output."""
        if not self.records:
            return 0.0
        return self.n_undetected_sdc / self.n_trials

    @property
    def n_recovered(self) -> int:
        return sum(r.recovered for r in self.records)

    @property
    def n_degraded(self) -> int:
        return sum(r.degraded for r in self.records)

    @property
    def n_residual_sdc(self) -> int:
        """Trials whose corruption survives the recovery path."""
        return sum(r.residual_sdc for r in self.records)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    def crosstab(self) -> dict[tuple[bool, bool], int]:
        """``(detected, output_corrupted) -> count`` over all trials."""
        table: dict[tuple[bool, bool], int] = {
            (False, False): 0, (False, True): 0,
            (True, False): 0, (True, True): 0,
        }
        for r in self.records:
            table[(r.detected, r.output_corrupted)] += 1
        return table


class PropagationCampaign:
    """Inject into one layer, propagate to the model output, classify.

    Parameters
    ----------
    engine:
        A :class:`~repro.nn.ProtectedInference` owning a shared
        :class:`~repro.abft.base.PreparedCache` (required — the replay
        draws every layer's clean prepared state from it).
        :meth:`repro.api.ProtectedSession.propagation_campaign` builds
        one from a deployed session.
    layer:
        The linear layer whose GEMM the faults strike.
    x:
        Model input activations; the campaign runs (and pins) one
        clean traced pass over them at construction.
    seed:
        Seed for the random fault draws (same stream as a
        :class:`~repro.faults.FaultCampaign` with this seed).
    recovery:
        Optional :class:`~repro.faults.RecoveryPolicy` applied to every
        detected trial.  A policy with ``on_exhausted="raise"``
        propagates :class:`~repro.errors.RecoveryError` out of
        :meth:`run` on the first exhausted budget; campaigns normally
        measure with ``"flag-and-propagate"``.
    output_rtol, output_atol:
        Per-element divergence tolerances classifying output
        corruption (``|out - clean| > atol + rtol * |clean|``, in
        float64; non-finite divergence always corrupts).
    batch_size:
        Trials per chunked injection call (default: the underlying
        GEMM campaign's auto-tuned size).
    verify_recovery:
        Assert every recovered trial's *end-to-end* output bit-equals
        the clean pass by replaying it (the layer-boundary bit-identity
        check always runs).  On by default; large throughput sweeps may
        disable the replay half.
    workers:
        Default worker-process count for :meth:`run`/:meth:`run_batch`
        (both also take a per-call override).  ``None`` or ``1`` runs
        in-process; ``N > 1`` shards each run's trials across a process
        pool sharing the campaign's prepared state, clean baselines,
        and downstream replay ops via shared memory
        (:mod:`repro.faults.parallel`), record-for-record identical to
        the in-process result for a fixed seed.
    options:
        A :class:`~repro.faults.CampaignOptions`; ``seed`` /
        ``batch_size`` / ``workers`` apply here (each settable either
        way, not both), ``significance_factor`` / ``sparse`` forward to
        the struck layer's GEMM campaign, and ``detection`` / ``cache``
        must agree with the engine's own (they are engine-derived).
        ``workers`` is options-only (its keyword alias was removed
        after one deprecated release).

    Examples
    --------
    >>> import numpy as np, repro
    >>> from repro.nn import build_runnable, runnable_input_shape
    >>> session = repro.deploy(
    ...     "mlp_bottom", "T4", batch=4,
    ...     runnable=build_runnable("mlp_bottom", batch=4, seed=0))
    >>> x = np.ones(runnable_input_shape("mlp_bottom", batch=4), np.float16)
    >>> result = session.propagation_campaign("fc1", x=x, seed=3).run_batch(6)
    >>> len(result.records)
    6
    """

    def __init__(
        self,
        engine: "ProtectedInference",
        layer: str,
        x: np.ndarray,
        *,
        seed: int | None = None,
        recovery: RecoveryPolicy | None = None,
        output_rtol: float = 1e-3,
        output_atol: float = 1e-3,
        batch_size: int | None = None,
        verify_recovery: bool = True,
        options: CampaignOptions | None = None,
    ) -> None:
        # workers travels only on the options object.
        workers = options.workers if options is not None else None
        seed = resolve_option(options, "PropagationCampaign", "seed", seed)
        batch_size = resolve_option(
            options, "PropagationCampaign", "batch_size", batch_size
        )
        if seed is None:
            seed = 0
        if options is not None:
            # detection and cache are the engine's by construction; an
            # options object that disagrees is a wiring error, not a
            # request this campaign can honor.
            if (
                options.detection is not None
                and options.detection != engine.detection
            ):
                raise ConfigurationError(
                    "PropagationCampaign inherits detection constants "
                    "from its engine; options.detection disagrees"
                )
            if options.cache is not None and options.cache is not engine.cache:
                raise ConfigurationError(
                    "PropagationCampaign inherits its PreparedCache "
                    "from its engine; options.cache is a different cache"
                )
        if engine.cache is None:
            raise ConfigurationError(
                "PropagationCampaign needs an engine with a shared "
                "PreparedCache: the downstream replay draws every "
                "layer's clean prepared state from it"
            )
        if workers is not None and workers < 1:
            raise FaultInjectionError(
                f"workers must be >= 1, got {workers}"
            )
        self.engine = engine
        self.layer = layer
        self.recovery = recovery
        self.output_rtol = float(output_rtol)
        self.output_atol = float(output_atol)
        self.verify_recovery = verify_recovery
        self.workers = workers
        # Shard workers rebuild the campaign without the engine; keep
        # everything the trial loop touches on the campaign itself.
        self._detection = engine.detection

        # One clean traced pass pins the baseline: per-layer operands,
        # tiles, clean outcomes, and the clean model output.
        trace = engine.trace(x)
        if trace.result.detected:
            raise FaultInjectionError(
                f"model {engine.model.name!r} flags a fault on clean "
                f"data; detection tolerances are miscalibrated"
            )
        self.trace = trace
        names = [s.name for s in trace.steps]
        if layer not in names:
            raise ConfigurationError(
                f"model {engine.model.name!r} has no linear layer "
                f"{layer!r}; linear layers are {names}"
            )
        self._step: "TraceStep" = trace.step(layer)
        self._step_dims = self._step.dims

        # The struck layer rides a full GEMM campaign (shared cache →
        # shared prepared state with the traced pass) for fault drawing,
        # chunk sizing, and the clean-baseline sanity check.
        self._gemm = FaultCampaign(
            engine.scheme_for(layer),
            self._step.a,
            self._step.b,
            tile=self._step.tile,
            options=CampaignOptions(
                detection=engine.detection,
                seed=seed,
                batch_size=batch_size,
                cache=engine.cache,
                significance_factor=(
                    options.significance_factor if options else None
                ),
                sparse=options.sparse if options else None,
            ),
        )
        self._prepared = self._gemm.prepared
        # The struck layer's accumulator→output lowering (FP16 downcast
        # on the float pipeline, dequantize on INT8) comes from its
        # prepared executor, so replayed site values match the scheme's
        # own epilogue bit-for-bit.
        self._epilogue = self._prepared.executor.epilogue
        self._clean_c16 = self._step.outcome.c  # struck layer's clean FP16
        self._clean_output = trace.output
        self._clean_top1 = self._top1(trace.output)

        # Downstream replay state: the ops after the struck layer, each
        # linear one paired with its clean prepared state (executor +
        # padded weights) drawn from the shared cache — per-trial work
        # is pad_a + multiply + crop, nothing else.
        idx = self._step.op_index
        self._struck_op = engine.model.ops[idx]
        self._downstream: list = []
        for op in engine.model.ops[idx + 1:]:
            if op.is_linear:
                st = trace.step(op.name)
                prepared = engine.cache.get(
                    engine.scheme_for(op.name), st.a, st.b, tile=st.tile
                )
                self._downstream.append((op, prepared))
            else:
                self._downstream.append((op, None))

    # ------------------------------------------------------------------
    def _shard_state(self) -> dict:
        """Everything a shard worker needs, free of engine/trace handles.

        The heavyweight entries (the struck layer's prepared execution,
        clean baselines, downstream ops with their prepared weights)
        are ndarray-bearing object graphs that
        :func:`repro.faults.parallel.export_payload` parks in shared
        memory — a worker attaches zero-copy views, never re-preparing
        or re-tracing anything.
        """
        return {
            "layer": self.layer,
            "recovery": self.recovery,
            "output_rtol": self.output_rtol,
            "output_atol": self.output_atol,
            "verify_recovery": self.verify_recovery,
            "detection": self._detection,
            "prepared": self._prepared,
            "clean_c16": self._clean_c16,
            "clean_output": self._clean_output,
            "clean_top1": self._clean_top1,
            "struck_op": self._struck_op,
            "downstream": self._downstream,
            "step_dims": self._step_dims,
            "batch_size": self._gemm.batch_size,
        }

    @classmethod
    def _from_state(cls, state: dict) -> "PropagationCampaign":
        """Rebuild a replay-capable campaign from :meth:`_shard_state`.

        The shard-worker constructor: no engine, no trace, no GEMM
        campaign — just the attributes :meth:`_run_chunk`,
        :meth:`_replay`, and the recovery checks touch.  Workers never
        draw randomness or aggregate results; the parent owns both.
        """
        self = object.__new__(cls)
        self.engine = None
        self.trace = None
        self._gemm = None
        self._step = None
        self.workers = None
        self.layer = state["layer"]
        self.recovery = state["recovery"]
        self.output_rtol = state["output_rtol"]
        self.output_atol = state["output_atol"]
        self.verify_recovery = state["verify_recovery"]
        self._detection = state["detection"]
        self._prepared = state["prepared"]
        self._epilogue = state["prepared"].executor.epilogue
        self._clean_c16 = state["clean_c16"]
        self._clean_output = state["clean_output"]
        self._clean_top1 = state["clean_top1"]
        self._struck_op = state["struck_op"]
        self._downstream = state["downstream"]
        self._step_dims = state["step_dims"]
        return self

    # ------------------------------------------------------------------
    @property
    def downstream_ops(self) -> list[str]:
        """Names of the ops corruption propagates through, in order."""
        return [type(op).__name__ if prepared is None else op.name
                for op, prepared in self._downstream]

    @staticmethod
    def _top1(output: np.ndarray) -> np.ndarray:
        """Per-sample argmax over the flattened output."""
        flat = output.reshape(output.shape[0], -1) if output.ndim > 1 else (
            output.reshape(1, -1)
        )
        return np.argmax(flat, axis=1)

    def _replay(self, c16: np.ndarray) -> np.ndarray:
        """Carry a (possibly corrupted) struck-layer FP16 output to the
        model output, bit-identically to what a protected forward pass
        over the same corrupted activations would compute.

        Downstream linear layers run the raw tiled GEMM against their
        clean prepared state's executor and padded weights — the
        protected path's epilogue (accumulate, crop, lower to FP16)
        with zero checksum work, which is sound because a consistent
        GEMM over corrupted inputs is exactly what the protected pass
        computes and cannot flag.
        """
        activation = self._struck_op.reshape_output(c16, self._step_dims)
        for op, prepared in self._downstream:
            if prepared is None:
                activation = op.forward(activation)
                continue
            a, _, dims = op.lower(activation)
            executor = prepared.executor
            acc = executor.multiply(executor.pad_a(a), prepared.b_pad)
            c = executor.epilogue(executor.crop(acc))
            activation = op.reshape_output(c, dims)
        return activation

    def _classify_output(self, final: np.ndarray) -> tuple[bool, bool, float]:
        """``(corrupted, top1_flip, divergence)`` of one replayed output."""
        clean = self._clean_output.astype(np.float64)
        out = final.astype(np.float64)
        with np.errstate(invalid="ignore"):
            diff = np.abs(out - clean)
            tol = self.output_atol + self.output_rtol * np.abs(clean)
            # NaN diff fails `<=`, so non-finite corruption always trips.
            diverged = bool(np.any(~(diff <= tol)))
        top1_flip = bool(np.any(self._top1(final) != self._clean_top1))
        finite = diff[np.isfinite(diff)]
        divergence = float(finite.max(initial=0.0)) if finite.size else 0.0
        if diff.size and not np.isfinite(diff).all():
            divergence = float("inf")
        return diverged or top1_flip, top1_flip, divergence

    # ------------------------------------------------------------------
    def run_batch(
        self,
        n_trials: int,
        *,
        faults_per_trial: int = 1,
        workers: int | None = None,
    ) -> PropagationResult:
        """``n_trials`` random trials, all faults drawn up front."""
        drawn = self._gemm.draw_faults(
            n_trials, faults_per_trial=faults_per_trial
        )
        return self.run(n_trials, specs=drawn, workers=workers)

    def run(
        self,
        n_trials: int,
        specs: Sequence["FaultSpec | Sequence[FaultSpec]"] | None = None,
        *,
        faults_per_trial: int | None = None,
        workers: int | None = None,
    ) -> PropagationResult:
        """Run ``n_trials`` random trials, or the provided fault sets.

        Same specs contract as :meth:`repro.faults.FaultCampaign.run`:
        explicit ``specs`` fully determine the trials (``n_trials``
        must be 0 or ``len(specs)``, ``faults_per_trial`` unset);
        otherwise each trial draws ``faults_per_trial`` random
        original-path faults from the campaign's seeded stream.

        ``workers`` overrides the campaign's default worker count for
        this run: with ``N > 1`` the trials shard across a process pool
        (:mod:`repro.faults.parallel`) sharing the campaign's prepared
        and replay state via shared memory.  Per-trial records are
        independent of shard boundaries, so the merged result is
        record-for-record identical to in-process execution; a worker
        failure raises :class:`~repro.errors.CampaignError`.
        """
        if n_trials < 0:
            raise FaultInjectionError(f"n_trials must be >= 0, got {n_trials}")
        if specs is not None:
            if faults_per_trial is not None:
                raise FaultInjectionError(
                    "faults_per_trial only applies to randomly drawn "
                    "trials; explicit specs already fix each trial's faults"
                )
            if n_trials not in (0, len(specs)):
                raise FaultInjectionError(
                    f"n_trials={n_trials} disagrees with {len(specs)} "
                    f"explicit specs; pass 0 or len(specs)"
                )
            trials = FaultCampaign._normalize_trials(specs)
        else:
            per_trial = 1 if faults_per_trial is None else faults_per_trial
            if per_trial < 1:
                raise FaultInjectionError(
                    f"faults_per_trial must be >= 1, got {per_trial}"
                )
            trials = FaultCampaign._normalize_trials(
                self._gemm.draw_faults(n_trials, faults_per_trial=per_trial)
            )
        result = PropagationResult(
            model=self.engine.model.name,
            layer=self.layer,
            scheme=self._gemm.scheme.name,
        )
        n_workers = self._gemm._resolve_workers(
            workers if workers is not None else self.workers, len(trials)
        )
        if n_workers > 1:
            from .parallel import run_propagation_sharded

            result.records.extend(
                run_propagation_sharded(self, trials, workers=n_workers)
            )
            return result
        batch = self._gemm.batch_size
        for start in range(0, len(trials), batch):
            chunk = trials[start:start + batch]
            result.records.extend(self._run_chunk(chunk))
        return result

    def _run_chunk(
        self, chunk: Sequence[tuple[FaultSpec, ...]]
    ) -> list[PropagationRecord]:
        """Inject one trial chunk, replay unmasked trials, classify."""
        prepared = self._prepared
        sites = faulted_site_values(prepared.c_clean, chunk)
        outcomes = prepared.inject_batch(
            chunk, detection=self._detection, sites=sites,
        )

        # Quantization-masked fast path: a site only affects the model
        # output if it lies inside the logical crop AND its FP16 value
        # differs from the clean one.  Trials with no such site keep
        # the clean output bit-exactly — no replay needed.
        m, n = prepared.problem.m, prepared.problem.n
        in_crop = (sites.rows < m) & (sites.cols < n)
        changed = np.zeros(len(sites), dtype=bool)
        if in_crop.any():
            sel = np.flatnonzero(in_crop)
            new16 = self._epilogue(sites.values[sel])
            old16 = self._clean_c16[sites.rows[sel], sites.cols[sel]]
            changed[sel] = new16 != old16
        per_trial: list[list[int]] = [[] for _ in range(len(chunk))]
        for j, t in enumerate(sites.trials):
            per_trial[int(t)].append(j)

        records: list[PropagationRecord] = []
        for i, faults in enumerate(chunk):
            detected = bool(outcomes[i].detected)
            live = [j for j in per_trial[i] if changed[j]]
            if not live:
                corrupted, top1_flip, divergence = False, False, 0.0
            else:
                c16 = self._clean_c16.copy()
                rows = sites.rows[live]
                cols = sites.cols[live]
                c16[rows, cols] = self._epilogue(sites.values[live])
                corrupted, top1_flip, divergence = self._classify_output(
                    self._replay(c16)
                )
            if detected:
                outcome = (
                    PropagationOutcome.DETECTED
                    if corrupted
                    else PropagationOutcome.BENIGN_ALARM
                )
            else:
                outcome = (
                    PropagationOutcome.UNDETECTED_SDC
                    if corrupted
                    else PropagationOutcome.MASKED
                )
            attempt = attempt_recovery(
                lambda specs: prepared.inject(
                    specs, detection=self._detection
                ),
                outcomes[i],
                faults,
                self.recovery if detected else None,
                context=f"layer {self.layer!r} trial {i}",
            )
            if attempt.recovered:
                self._check_recovered(attempt.outcome)
            records.append(
                PropagationRecord(
                    faults=faults,
                    detected=detected,
                    output_corrupted=corrupted,
                    top1_flip=top1_flip,
                    divergence=divergence,
                    outcome=outcome,
                    retries=attempt.retries,
                    recovered=attempt.recovered,
                    degraded=attempt.degraded,
                    residual_sdc=corrupted and not attempt.recovered,
                )
            )
        return records

    def _check_recovered(self, outcome) -> None:
        """Assert a recovered execution is bit-identical to clean.

        The layer-boundary check always runs (byte equality of the
        FP16 layer outputs — NaN-safe); with ``verify_recovery`` the
        recovered output is additionally replayed end to end and must
        byte-equal the clean model output.
        """
        recovered_c = np.ascontiguousarray(outcome.c)
        clean_c = np.ascontiguousarray(self._clean_c16)
        if recovered_c.tobytes() != clean_c.tobytes():
            raise FaultInjectionError(
                f"recovered execution of layer {self.layer!r} is not "
                f"bit-identical to the clean layer output — the "
                f"recovery contract is broken"
            )
        if self.verify_recovery:
            replayed = np.ascontiguousarray(self._replay(outcome.c))
            clean_out = np.ascontiguousarray(self._clean_output)
            if replayed.tobytes() != clean_out.tobytes():
                raise FaultInjectionError(
                    f"recovered pass through layer {self.layer!r} does "
                    f"not reproduce the clean model output bit-exactly"
                )
