"""Fault specification types.

A :class:`FaultSpec` names *where* a soft error strikes (an output
accumulator element, in padded coordinates) and *how* the value is
corrupted (bit flip, additive delta, or overwrite), and *which path*
is hit — the original GEMM computation or the redundant checksum
computation.  The paper's primary fault model is a single fault per
GEMM (§2.3); §2.4 extends detection to up to ``r`` simultaneous faults
via ``r`` independent checksums, and the campaign runner accordingly
injects one *fault set* per trial (a 1-tuple in the single-fault
model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import FaultInjectionError


class FaultKind(enum.Enum):
    """How the target value is corrupted."""

    BITFLIP_FP32 = "bitflip_fp32"
    """Flip one bit of the FP32 accumulator value."""

    BITFLIP_FP16 = "bitflip_fp16"
    """Flip one bit of the value as stored in FP16."""

    ADD = "add"
    """Add a fixed delta (models a corrupted MMA partial product)."""

    SET = "set"
    """Overwrite with a fixed value."""


class FaultPath(enum.Enum):
    """Which redundant-execution path the fault strikes."""

    ORIGINAL = "original"
    """The GEMM output path: silent corruption unless ABFT catches it."""

    CHECKSUM = "checksum"
    """The redundant path: a benign false alarm when flagged."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected soft error.

    Attributes
    ----------
    row, col:
        Output-element coordinates in the *padded* accumulator grid.
        For checksum-path faults the coordinates select the thread tile
        (or are ignored by global schemes, which have one checksum).
    kind:
        Corruption mechanism.
    bit:
        Bit index for the bit-flip kinds.  Unused by ADD/SET but still
        validated against the widest legal range so a nonsense spec
        (e.g. ``bit=99``) is rejected instead of silently ignored.
    value:
        Delta for :attr:`FaultKind.ADD` or the new value for
        :attr:`FaultKind.SET`.
    path:
        Original or checksum computation path.
    """

    row: int
    col: int
    kind: FaultKind = FaultKind.BITFLIP_FP32
    bit: int = 20
    value: float = 0.0
    path: FaultPath = FaultPath.ORIGINAL

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise FaultInjectionError(
                f"fault coordinates must be non-negative, got ({self.row}, {self.col})"
            )
        # Every kind validates ``bit`` against its value-format width —
        # ADD/SET ignore the field, but an out-of-range bit on them is a
        # malformed spec, not a quietly-dropped one.
        max_bits = 16 if self.kind is FaultKind.BITFLIP_FP16 else 32
        if not 0 <= self.bit < max_bits:
            raise FaultInjectionError(
                f"bit must be in [0, {max_bits}) for {self.kind.value} "
                f"faults, got {self.bit}"
            )
