"""Fault specification types.

A :class:`FaultSpec` names *where* a soft error strikes (an output
accumulator element, in padded coordinates) and *how* the value is
corrupted (bit flip, additive delta, or overwrite), and *which path*
is hit — the original GEMM computation or the redundant checksum
computation.  The paper's fault model is a single fault per GEMM; the
campaign runner enforces that by injecting one spec per trial.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import FaultInjectionError


class FaultKind(enum.Enum):
    """How the target value is corrupted."""

    BITFLIP_FP32 = "bitflip_fp32"
    """Flip one bit of the FP32 accumulator value."""

    BITFLIP_FP16 = "bitflip_fp16"
    """Flip one bit of the value as stored in FP16."""

    ADD = "add"
    """Add a fixed delta (models a corrupted MMA partial product)."""

    SET = "set"
    """Overwrite with a fixed value."""


class FaultPath(enum.Enum):
    """Which redundant-execution path the fault strikes."""

    ORIGINAL = "original"
    """The GEMM output path: silent corruption unless ABFT catches it."""

    CHECKSUM = "checksum"
    """The redundant path: a benign false alarm when flagged."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected soft error.

    Attributes
    ----------
    row, col:
        Output-element coordinates in the *padded* accumulator grid.
        For checksum-path faults the coordinates select the thread tile
        (or are ignored by global schemes, which have one checksum).
    kind:
        Corruption mechanism.
    bit:
        Bit index for the bit-flip kinds.
    value:
        Delta for :attr:`FaultKind.ADD` or the new value for
        :attr:`FaultKind.SET`.
    path:
        Original or checksum computation path.
    """

    row: int
    col: int
    kind: FaultKind = FaultKind.BITFLIP_FP32
    bit: int = 20
    value: float = 0.0
    path: FaultPath = FaultPath.ORIGINAL

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise FaultInjectionError(
                f"fault coordinates must be non-negative, got ({self.row}, {self.col})"
            )
        if self.kind is FaultKind.BITFLIP_FP16 and not 0 <= self.bit < 16:
            raise FaultInjectionError(f"FP16 bit must be in [0, 16), got {self.bit}")
        if self.kind is FaultKind.BITFLIP_FP32 and not 0 <= self.bit < 32:
            raise FaultInjectionError(f"FP32 bit must be in [0, 32), got {self.bit}")
