"""Fault-injection campaigns measuring detection coverage.

A campaign runs a scheme's protected GEMM many times, each trial
injecting one *fault set* — a single fault in the paper's §2.3 model,
or ``r`` simultaneous faults when exercising the §2.4 multi-checksum
extension — and tallies detections.  Trials whose corruption is
numerically negligible (below the detection tolerance *and* below any
sensible significance threshold) are tracked separately: ABFT's
guarantee is about *significant* faults, and FP bit flips in low
mantissa bits can be smaller than legitimate rounding noise.
Checksum-path faults corrupt the redundant computation, not the
output; per the fault model they can only raise *benign false alarms*
and are never counted as significant corruption.

The campaign rides the prepared-execution engine: the operands are
prepared **once** at construction (padding, tile selection, the clean
GEMM, operand checksums), and trials execute in chunked
:meth:`~repro.abft.base.PreparedExecution.inject_batch` calls — so N
trials run the clean padded GEMM and the operand-side reductions
exactly once instead of N+1 times, and the output-side re-reductions
and verdicts all happen in batch-wide NumPy calls.  Passing a shared
:class:`~repro.abft.base.PreparedCache` amortizes one step further:
parameter sweeps (several campaigns over one problem, varying
significance factors, detection constants, or per-trial fault counts)
reuse a single prepared state, so the whole sweep runs the clean GEMM
exactly once.  Schemes with a sparse re-reduction path (DESIGN.md
§1.3) additionally skip the stacked accumulator entirely: only the
reduction slices each fault struck are recomputed, and trial records
are classified from the fault sites' final values rather than from
materialized accumulators, so the whole record pipeline — delta
gather, significance classification, verdict extraction — is
vectorized end to end and scales with the *faults per trial*, not the
output.  The chunk size (:attr:`FaultCampaign.batch_size`) is
auto-tuned from the scheme's check-array footprint unless overridden.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..config import DetectionConstants

if TYPE_CHECKING:  # avoid the faults <-> abft import cycle at runtime
    from ..abft.base import PreparedCache, PreparedExecution, Scheme
from ..errors import FaultInjectionError
from ..gemm.tiles import TileConfig
from .injector import FaultSites, faulted_site_values, sites_from_flat_specs
from .model import FaultKind, FaultPath, FaultSpec
from .options import CampaignOptions, resolve_option

#: One campaign trial's fault set, or a bare spec (normalized to a
#: 1-tuple) — what ``run``/``run_batch`` accept per trial.
TrialFaults = "FaultSpec | Sequence[FaultSpec]"

#: Kind table for :class:`SpecArrays` wire codes (index == code).  The
#: order matches the draw distribution of :meth:`FaultCampaign.
#: random_fault`, which samples these three original-path kinds.
SPEC_KINDS = (FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16, FaultKind.ADD)


@dataclass(frozen=True)
class SpecArrays:
    """Columnar form of a drawn random-spec batch.

    The raw whole-batch RNG draws behind :meth:`FaultCampaign.
    draw_faults`, before per-spec assembly: one entry per spec, fault
    kinds wire-coded as ``uint8`` indices into :data:`SPEC_KINDS`.  A
    batch in this form ships to sharded campaign workers as five small
    numeric arrays instead of thousands of pickled :class:`FaultSpec`
    objects; :func:`assemble_specs` materializes any slice back into
    specs, bit-identically to the in-process assembly.
    """

    rows: np.ndarray
    cols: np.ndarray
    kind_codes: np.ndarray
    values: np.ndarray
    bits: np.ndarray

    def __len__(self) -> int:
        return len(self.rows)

    def slice(self, lo: int, hi: int) -> "SpecArrays":
        """The ``[lo, hi)`` sub-batch (views, no copies)."""
        return SpecArrays(
            rows=self.rows[lo:hi],
            cols=self.cols[lo:hi],
            kind_codes=self.kind_codes[lo:hi],
            values=self.values[lo:hi],
            bits=self.bits[lo:hi],
        )


def assemble_specs(arrays: SpecArrays) -> list[FaultSpec]:
    """Materialize drawn spec arrays into :class:`FaultSpec` objects.

    The (cheap, per-spec) assembly half of :meth:`FaultCampaign.
    draw_faults`, shared verbatim between the in-process path and shard
    workers so both produce identical specs from identical draws.
    """
    rows, cols = arrays.rows, arrays.cols
    values, bits = arrays.values, arrays.bits
    specs: list[FaultSpec] = []
    for i, code in enumerate(arrays.kind_codes):
        kind = SPEC_KINDS[code]
        if kind is FaultKind.ADD:
            specs.append(
                FaultSpec(row=int(rows[i]), col=int(cols[i]), kind=kind,
                          value=float(values[i]))
            )
        else:
            n_bits = 32 if kind is FaultKind.BITFLIP_FP32 else 16
            specs.append(
                FaultSpec(row=int(rows[i]), col=int(cols[i]), kind=kind,
                          bit=int(bits[i]) % n_bits)
            )
    return specs


def group_spec_trials(
    specs: Sequence[FaultSpec], faults_per_trial: int
) -> list[tuple[FaultSpec, ...]]:
    """Flat drawn specs -> per-trial fault tuples, in draw order.

    Matches ``_normalize_trials(draw_faults(...))`` exactly: trial
    ``i`` takes specs ``[i*r, (i+1)*r)`` for ``r = faults_per_trial``.
    """
    r = faults_per_trial
    if r == 1:
        return [(spec,) for spec in specs]
    return [tuple(specs[i * r:(i + 1) * r]) for i in range(len(specs) // r)]


@dataclass(frozen=True)
class TrialRecord:
    """One campaign trial: the fault set, its magnitude, and the verdict.

    Attributes
    ----------
    faults:
        Every fault injected in this trial, in application order.
    delta:
        The largest-magnitude per-site output corruption (signed; the
        site whose ``|new - clean|`` is greatest, non-finite ranking
        above everything).  NaN when no original-path fault struck the
        output (checksum-path-only trials).
    detected:
        Whether the scheme's checks flagged the trial.
    significant:
        Whether any struck output element moved by more than the
        campaign's significance threshold.  Always False for
        checksum-path-only trials: they corrupt the redundant path,
        not the output.
    benign_alarm:
        The trial raised an alarm attributable to checksum-path
        corruption alone: it was detected, every injected fault hit
        the checksum path (so no output corruption exists the alarm
        could stem from), and accordingly nothing was significant — a
        false positive by construction of the fault model, tracked
        separately from coverage.  Mixed trials never carry the flag:
        with both paths struck, attribution is ambiguous.
    """

    faults: tuple[FaultSpec, ...]
    delta: float
    detected: bool
    significant: bool
    benign_alarm: bool = False

    @property
    def n_faults(self) -> int:
        """Number of faults injected in this trial."""
        return len(self.faults)

    @property
    def spec(self) -> FaultSpec:
        """The injected fault of a single-fault trial (compat accessor)."""
        if len(self.faults) != 1:
            raise FaultInjectionError(
                f"trial injected {len(self.faults)} faults; use .faults"
            )
        return self.faults[0]


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    scheme: str
    trials: list[TrialRecord] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_detected(self) -> int:
        return sum(t.detected for t in self.trials)

    @property
    def n_significant(self) -> int:
        return sum(t.significant for t in self.trials)

    @property
    def n_benign_alarms(self) -> int:
        """Trials whose alarm is attributable to checksum-path faults."""
        return sum(t.benign_alarm for t in self.trials)

    @property
    def coverage(self) -> float:
        """Detection rate over *significant* faults (the ABFT guarantee)."""
        significant = [t for t in self.trials if t.significant]
        if not significant:
            return 1.0
        return sum(t.detected for t in significant) / len(significant)

    @property
    def false_negatives(self) -> list[TrialRecord]:
        """Significant faults that escaped detection."""
        return [t for t in self.trials if t.significant and not t.detected]

    def by_fault_count(self) -> dict[int, "CampaignResult"]:
        """Per-simultaneous-fault-count sub-results, ascending.

        Groups trials by :attr:`TrialRecord.n_faults` so coverage (and
        every other statistic) can be reported *as a function of the
        number of simultaneous faults* — the axis of the paper's §2.4
        multi-fault detection claim.
        """
        grouped: dict[int, CampaignResult] = {}
        for trial in self.trials:
            grouped.setdefault(
                trial.n_faults, CampaignResult(scheme=self.scheme)
            ).trials.append(trial)
        return dict(sorted(grouped.items()))

    def coverage_by_fault_count(self) -> dict[int, float]:
        """Detection coverage keyed by per-trial fault count, ascending."""
        return {k: r.coverage for k, r in self.by_fault_count().items()}


class FaultCampaign:
    """Run repeated fault-injection trials against one scheme.

    Each trial injects one fault set: a single fault by default (the
    paper's §2.3 model), or several simultaneous faults via the
    ``faults_per_trial`` arguments of :meth:`run`/:meth:`run_batch`/
    :meth:`draw_faults` (the §2.4 extension — the sparse engine handles
    arbitrary per-trial fault sets).

    Parameters
    ----------
    scheme:
        The protected-execution scheme under test.
    a, b:
        Operand matrices (logical shapes).
    tile:
        Optional tile configuration override.
    significance_factor:
        A fault is *significant* when its absolute delta exceeds
        ``significance_factor`` times the detection tolerance of the
        coarsest check (the output summation).  Sub-significant flips
        (e.g. LSB mantissa flips) are below the rounding-noise floor by
        construction and no checksum scheme can — or needs to — see them.
    batch_size:
        Trials per chunked ``inject_batch`` call.  ``None`` (default)
        auto-tunes it from the scheme's per-trial memory footprint —
        the check arrays alone on the sparse path, the stacked
        ``(batch, m_full, n_full)`` accumulator plus check arrays on
        the dense one — so every scheme's chunk fills roughly the same
        transient-memory budget while keeping the per-trial Python
        overhead amortized.
    sparse:
        Re-reduction path selector, forwarded to ``inject_batch``:
        ``None`` (default) uses sparse re-reduction whenever the scheme
        supports it, ``False`` forces the dense stacked batch, ``True``
        demands sparse and rejects schemes without it.
    cache:
        Optional shared :class:`~repro.abft.base.PreparedCache`.  When
        given, the campaign fetches its prepared state from the cache
        instead of preparing privately, so a parameter sweep of many
        campaigns over one ``(scheme, a, b, tile)`` runs the clean GEMM
        and operand reductions exactly once (bit-identical results
        either way — the state is fault-invariant).
    workers:
        Default worker-process count for :meth:`run`/:meth:`run_batch`
        (both also take a per-call override).  ``None`` or ``1`` runs
        in-process; ``N > 1`` shards each run's trials across a process
        pool sharing this campaign's prepared state via shared memory
        (:mod:`repro.faults.parallel`), record-for-record identical to
        the in-process result for a fixed seed.
    options:
        A :class:`~repro.faults.CampaignOptions` carrying any of the
        knobs above; ``seed`` / ``significance_factor`` / ``batch_size``
        / ``sparse`` may be given either here or as their keyword, not
        both.  ``detection`` / ``cache`` / ``workers`` are options-only
        (their keyword aliases were removed after one deprecated
        release).
    """

    #: Transient-memory budget the auto-tuned batch size fills.
    BATCH_MEMORY_BUDGET = 32 * 1024 * 1024
    #: Auto-tuned batch size clamp (amortization floor / memory ceiling).
    BATCH_SIZE_BOUNDS = (32, 2048)

    def __init__(
        self,
        scheme: "Scheme",
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        significance_factor: float | None = None,
        seed: int | None = None,
        batch_size: int | None = None,
        sparse: bool | None = None,
        options: CampaignOptions | None = None,
    ) -> None:
        # detection / cache / workers travel only on the options object.
        detection = options.detection if options is not None else None
        cache = options.cache if options is not None else None
        workers = options.workers if options is not None else None
        significance_factor = resolve_option(
            options, "FaultCampaign", "significance_factor",
            significance_factor,
        )
        seed = resolve_option(options, "FaultCampaign", "seed", seed)
        batch_size = resolve_option(
            options, "FaultCampaign", "batch_size", batch_size
        )
        sparse = resolve_option(options, "FaultCampaign", "sparse", sparse)
        if detection is None:
            # Scheme-matched default: the INT8 pipeline's exact-integer
            # checks need the half-ULP tolerance, not FP32 roundoff.
            detection = scheme.default_detection
        if significance_factor is None:
            significance_factor = 4.0
        if seed is None:
            seed = 0
        if not scheme.protects:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} performs no checks; a campaign "
                f"against it cannot measure coverage"
            )
        if batch_size is not None and batch_size <= 0:
            raise FaultInjectionError(
                f"batch_size must be positive, got {batch_size}"
            )
        if sparse and not scheme.supports_sparse:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} has no sparse re-reduction path; "
                f"pass sparse=False or None"
            )
        if workers is not None and workers < 1:
            raise FaultInjectionError(
                f"workers must be >= 1, got {workers}"
            )
        self.workers = workers
        self.scheme = scheme
        self.a = np.asarray(a, dtype=np.float16)
        self.b = np.asarray(b, dtype=np.float16)
        self.tile = tile
        self.detection = detection
        self.significance_factor = significance_factor
        self.sparse = sparse
        self.rng = np.random.default_rng(seed)
        # Dense-path scratch is reused across runs but never across
        # threads: concurrent runs of one campaign (session fan-out)
        # each fill a private buffer.
        self._tls = threading.local()

        # All fault-invariant work happens exactly once — here, or once
        # per sweep inside a shared cache; trials only inject into
        # copies of the prepared accumulator.
        if cache is not None:
            self._prepared = cache.get(scheme, self.a, self.b, tile=tile)
        else:
            self._prepared = scheme.prepare(self.a, self.b, tile=tile)
        self._use_sparse = scheme.supports_sparse if sparse is None else sparse
        self.batch_size = (
            batch_size if batch_size is not None else self._auto_batch_size()
        )

        # Baseline (fault-free) run: establishes the tolerance scale and
        # sanity-checks that the clean execution raises no alarm.
        baseline = self._prepared.inject(detection=detection)
        if baseline.detected:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} flags a fault on clean data; "
                f"detection tolerances are miscalibrated for this problem"
            )
        self._baseline = baseline
        self._tolerance_scale = max(
            baseline.verdict.tolerance if baseline.verdict else 0.0,
            detection.atol_floor,
        )

    @property
    def prepared(self) -> "PreparedExecution":
        """The campaign's shared prepared state (fault-invariant half).

        Exposed for consumers that layer more work on the same state —
        :class:`~repro.faults.PropagationCampaign` injects through it
        and replays downstream from its clean accumulator.  Treat as
        read-only; the state is shared across every trial (and, with a
        cache, across campaigns).
        """
        return self._prepared

    @property
    def tolerance_scale(self) -> float:
        """The campaign's numerical sensitivity floor.

        The largest detection tolerance of the scheme's clean baseline
        verdict (floored at the detection constants' absolute floor) —
        the scale the significance threshold multiplies.  Corruptions
        below ``significance_factor * tolerance_scale`` are classified
        insignificant: they are within the rounding noise the tolerance
        model already budgets for.
        """
        return self._tolerance_scale

    # ------------------------------------------------------------------
    @classmethod
    def _from_prepared(
        cls,
        prepared: "PreparedExecution",
        *,
        detection: DetectionConstants,
        significance_factor: float,
        tolerance_scale: float,
        batch_size: int,
        use_sparse: bool,
    ) -> "FaultCampaign":
        """Rehydrate a campaign around an existing prepared state.

        The shard-worker constructor (:mod:`repro.faults.parallel`):
        skips preparation and the clean-baseline injection entirely —
        the parent already did both — and carries the parent's
        *derived* configuration (including the baseline tolerance
        scale) verbatim, so worker-side classification matches the
        in-process path bit for bit.  No RNG is attached: workers never
        draw, the parent owns the random stream.
        """
        self = cls.__new__(cls)
        self.scheme = prepared.scheme
        # Logical operands live inside the prepared state; nothing
        # downstream of construction reads these again.
        self.a = None
        self.b = None
        self.tile = prepared.tile
        self.detection = detection
        self.significance_factor = significance_factor
        self.sparse = use_sparse
        self.workers = None
        self.rng = None
        self._tls = threading.local()
        self._prepared = prepared
        self._use_sparse = use_sparse
        self.batch_size = batch_size
        self._baseline = None
        self._tolerance_scale = tolerance_scale
        return self

    def _resolve_workers(self, workers: int | None, n_trials: int) -> int:
        """Effective worker count for a run of ``n_trials`` trials.

        A per-call ``workers`` overrides the campaign default; ``None``
        everywhere means in-process.  The count is clamped to the trial
        count — shards are contiguous non-empty trial ranges, so extra
        workers would have nothing to do.
        """
        if workers is None:
            workers = self.workers
        if workers is None:
            return 1
        if workers < 1:
            raise FaultInjectionError(f"workers must be >= 1, got {workers}")
        return max(1, min(int(workers), n_trials))

    # ------------------------------------------------------------------
    def _auto_batch_size(self) -> int:
        """Chunk size filling :attr:`BATCH_MEMORY_BUDGET` per batch.

        The per-trial transient footprint depends on the execution
        path: sparse re-reduction materializes only per-trial copies of
        the scheme's check arrays (plus comparison intermediates of the
        same shape), while the dense batch adds the stacked
        ``(batch, m_full, n_full)`` float32 accumulator.  Schemes with
        small check arrays (scalar global checks, per-tile sums) thus
        get much larger chunks than schemes whose checks are
        output-sized (elementwise replication), instead of everyone
        sharing one fixed guess.
        """
        executor = self._prepared.executor
        outputs = executor.m_full * executor.n_full
        if self.scheme.supports_sparse:
            reductions = self._prepared.clean_reductions
            if not isinstance(reductions, tuple):
                reductions = (reductions,)
            check_bytes = sum(np.asarray(r).nbytes for r in reductions)
        else:
            # No slice-decomposable reduction: the check compares
            # output-sized arrays elementwise (replication).
            check_bytes = 8 * outputs
        if self._use_sparse:
            # Broadcast check-array copy + residual/tolerance/verdict
            # intermediates, all check-shaped; no stacked accumulator.
            per_trial = 6 * check_bytes + 256
        else:
            per_trial = 4 * outputs + 4 * check_bytes
        low, high = self.BATCH_SIZE_BOUNDS
        return max(low, min(high, self.BATCH_MEMORY_BUDGET // per_trial))

    @property
    def fault_domain(self) -> tuple[int, int]:
        """Padded accumulator shape every random fault site is drawn from.

        The single source of truth for both :meth:`random_fault` and
        :meth:`draw_faults` — the prepared clean accumulator, whose grid
        is what injection indexes into.
        """
        rows, cols = self._prepared.c_clean.shape
        return int(rows), int(cols)

    def random_fault(self) -> FaultSpec:
        """Draw one original-path fault at a random output element."""
        rows, cols = self.fault_domain
        row = int(self.rng.integers(rows))
        col = int(self.rng.integers(cols))
        kind = self.rng.choice(
            [FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16, FaultKind.ADD]
        )
        if kind is FaultKind.ADD:
            # A corrupted MMA partial product: magnitude comparable to a
            # legitimate partial sum, random sign.
            scale = float(np.abs(self._prepared.c_clean).mean() + 1.0)
            value = float(self.rng.normal(0.0, scale))
            return FaultSpec(row=row, col=col, kind=kind, value=value)
        bits = 32 if kind is FaultKind.BITFLIP_FP32 else 16
        bit = int(self.rng.integers(bits))
        return FaultSpec(row=row, col=col, kind=kind, bit=bit)

    def draw_faults(
        self, n: int, *, faults_per_trial: int = 1
    ) -> list[FaultSpec] | list[tuple[FaultSpec, ...]]:
        """Vectorized batch of ``n`` random original-path fault trials.

        All random draws happen up front in whole-batch RNG calls; only
        the cheap per-spec assembly is a Python loop.  The stream
        differs from successive :meth:`random_fault` calls but is
        equally deterministic for a given campaign seed.

        With the default ``faults_per_trial=1`` the return value is a
        flat spec list (one fault per trial — the historical API).
        With ``faults_per_trial=r > 1`` it is a list of ``r``-tuples,
        each a trial's simultaneous fault set; sites are drawn i.i.d.
        over the fault domain, so a trial occasionally strikes the same
        element twice (then holding fewer than ``r`` distinct faulty
        values, still within the §2.4 ``<= r`` guarantee).
        """
        if n < 0:
            raise FaultInjectionError(f"cannot draw {n} faults")
        if faults_per_trial < 1:
            raise FaultInjectionError(
                f"faults_per_trial must be >= 1, got {faults_per_trial}"
            )
        specs = self._draw_spec_batch(n * faults_per_trial)
        if faults_per_trial == 1:
            return specs
        return [
            tuple(specs[i * faults_per_trial:(i + 1) * faults_per_trial])
            for i in range(n)
        ]

    def _draw_spec_arrays(self, total: int) -> SpecArrays:
        """``total`` random original-path draws as columnar arrays.

        All randomness for a batch happens here, in whole-batch RNG
        calls on the campaign's single seeded stream — the assembly
        into :class:`FaultSpec` objects (:func:`assemble_specs`) is
        pure, so the draw can be split from the assembly: sharded runs
        draw once in the parent and assemble per worker, consuming the
        RNG stream identically to an in-process run.
        """
        rows_total, cols_total = self.fault_domain
        rows = self.rng.integers(rows_total, size=total)
        cols = self.rng.integers(cols_total, size=total)
        kinds = self.rng.choice(np.array(SPEC_KINDS, dtype=object), size=total)
        scale = float(np.abs(self._prepared.c_clean).mean() + 1.0)
        values = self.rng.normal(0.0, scale, size=total)
        bits = self.rng.integers(32, size=total)
        codes = np.empty(total, dtype=np.uint8)
        for code, kind in enumerate(SPEC_KINDS):
            codes[kinds == kind] = code
        return SpecArrays(
            rows=rows, cols=cols, kind_codes=codes, values=values, bits=bits
        )

    def _draw_spec_batch(self, total: int) -> list[FaultSpec]:
        """``total`` random original-path specs from whole-batch RNG calls."""
        return assemble_specs(self._draw_spec_arrays(total))

    @staticmethod
    def _normalize_trials(
        specs: Iterable["TrialFaults"],
    ) -> list[tuple[FaultSpec, ...]]:
        """Per-trial fault tuples from bare specs and/or spec sequences."""
        trials: list[tuple[FaultSpec, ...]] = []
        for entry in specs:
            if isinstance(entry, FaultSpec):
                trials.append((entry,))
            else:
                trials.append(tuple(entry))
        return trials

    def run_trial(self, faults: "TrialFaults") -> TrialRecord:
        """Execute one trial with the given fault (or fault set) injected."""
        (trial,) = self._normalize_trials([faults])
        outcome = self._prepared.inject(trial, detection=self.detection)
        return self._record(trial, outcome)

    def _record(
        self, faults: tuple[FaultSpec, ...], outcome
    ) -> TrialRecord:
        """Classify one trial outcome against the clean accumulator.

        Delegates to :meth:`_records_batch` with a batch of one, so the
        two paths are record-for-record identical by construction.
        """
        return self._records_batch((faults,), (outcome,))[0]

    def _records_batch(
        self,
        trials: Sequence[tuple[FaultSpec, ...]],
        outcomes: Sequence,
        sites=None,
    ) -> list[TrialRecord]:
        """Vectorized record assembly for one trial chunk.

        Deltas come from the fault sites' final values
        (:func:`~repro.faults.injector.faulted_site_values` — the same
        corruption core injection uses), not from reading materialized
        accumulators, so the gather is a handful of fancy-indexed NumPy
        calls on either execution path and sparse outcomes never
        materialize their grids.  A trial is *significant* when any of
        its struck sites moved past the significance threshold (or into
        non-finite territory); its reported ``delta`` is the
        largest-magnitude site delta (first site wins ties).  Trials
        with no original-path site — checksum-path-only fault sets —
        are never significant: they corrupt the redundant computation,
        so a detection there is a *benign alarm*, not coverage of a
        significant fault.
        """
        return self._records_from_columns(
            trials, *self._classify_batch(trials, outcomes, sites)
        )

    def _classify_batch(
        self,
        trials: Sequence[tuple[FaultSpec, ...]],
        outcomes: Sequence,
        sites=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Verdict columns ``(deltas, detected, significant, benign)``.

        The vectorized half of record assembly — everything except the
        :class:`TrialRecord` object construction, which shard workers
        leave to the parent: four compact arrays cross a process
        boundary far cheaper than pickled record objects.
        """
        n = len(trials)
        clean = self._prepared.c_clean
        if sites is None:
            sites = faulted_site_values(clean, trials)
        deltas = np.full(n, np.nan)
        significant = np.zeros(n, dtype=bool)
        if len(sites):
            site_deltas = sites.deltas(clean)
            keys = np.where(
                np.isfinite(site_deltas), np.abs(site_deltas), np.inf
            )
            # Representative site per trial: descending |delta| within
            # each trial (stable lexsort keeps the first site on ties),
            # then the head of every trial's span.
            order = np.lexsort((-keys, sites.trials))
            sorted_trials = sites.trials[order]
            first = np.concatenate(
                ([0], np.flatnonzero(np.diff(sorted_trials)) + 1)
            )
            rep = order[first]
            touched = sorted_trials[first]
            deltas[touched] = site_deltas[rep]
            threshold = self.significance_factor * self._tolerance_scale
            significant[touched] = keys[rep] > threshold
        detected = np.fromiter(
            (bool(o.detected) for o in outcomes), dtype=bool, count=n
        )
        # Attribution must be unambiguous: only trials whose every
        # fault hit the checksum path can blame the alarm on it (such
        # trials have no output corruption, hence are never significant
        # either).
        benign = np.fromiter(
            (
                bool(detected[i])
                and bool(trials[i])
                and all(f.path is FaultPath.CHECKSUM for f in trials[i])
                for i in range(n)
            ),
            dtype=bool,
            count=n,
        )
        return deltas, detected, significant, benign

    @staticmethod
    def _records_from_columns(
        trials: Sequence[tuple[FaultSpec, ...]],
        deltas: np.ndarray,
        detected: np.ndarray,
        significant: np.ndarray,
        benign: np.ndarray,
    ) -> list[TrialRecord]:
        """Render verdict columns into :class:`TrialRecord` objects."""
        return [
            TrialRecord(
                faults=tuple(trials[i]),
                delta=float(deltas[i]),
                detected=bool(detected[i]),
                significant=bool(significant[i]),
                benign_alarm=bool(benign[i]),
            )
            for i in range(len(trials))
        ]

    def _run_specs(
        self,
        trials: Sequence[tuple[FaultSpec, ...]],
        sites_fn=None,
    ) -> list[TrialRecord]:
        """Execute all trials through chunked ``inject_batch`` calls.

        On the dense path one scratch buffer of ``batch_size`` stacked
        accumulators is allocated lazily and reused across chunks (and
        campaign runs): records are extracted from each chunk's
        outcomes before the next chunk overwrites the buffer.  The
        sparse path materializes no accumulators, so it needs no
        scratch at all.  ``sites_fn`` — ``(start, chunk) -> FaultSites``
        — supplies each chunk's site valuation when the caller already
        fused it with drawing (:meth:`run_batch`); otherwise the sparse
        path derives it per chunk from the specs.
        """
        return self._records_from_columns(
            trials, *self._run_specs_columns(trials, sites_fn)
        )

    def _run_specs_columns(
        self,
        trials: Sequence[tuple[FaultSpec, ...]],
        sites_fn=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The chunked execution loop, returning verdict columns.

        Same contract as :meth:`_run_specs` minus the final record
        rendering: the per-chunk ``(deltas, detected, significant,
        benign)`` columns are concatenated across chunks.  Shard
        workers call this directly and ship the columns home.
        """
        columns: list[tuple[np.ndarray, ...]] = []
        scratch = None
        if not self._use_sparse:
            size = min(self.batch_size, len(trials))
            scratch = getattr(self._tls, "scratch", None)
            if size and (scratch is None or len(scratch) < size):
                scratch = np.empty(
                    (size, *self._prepared.c_clean.shape),
                    dtype=self._prepared.c_clean.dtype,
                )
                self._tls.scratch = scratch
        for start in range(0, len(trials), self.batch_size):
            chunk = list(trials[start:start + self.batch_size])
            sites = None
            if sites_fn is not None:
                sites = sites_fn(start, chunk)
            elif self._use_sparse:
                # One fault→site valuation serves both the sparse
                # injection and the record classification.
                sites = faulted_site_values(self._prepared.c_clean, chunk)
            outcomes = self._prepared.inject_batch(
                chunk,
                detection=self.detection,
                out=scratch[: len(chunk)] if scratch is not None else None,
                sparse=self._use_sparse,
                sites=sites,
            )
            columns.append(self._classify_batch(chunk, outcomes, sites))
        if not columns:
            return (
                np.empty(0),
                np.empty(0, dtype=bool),
                np.empty(0, dtype=bool),
                np.empty(0, dtype=bool),
            )
        if len(columns) == 1:
            return columns[0]
        return tuple(
            np.concatenate([chunk[k] for chunk in columns]) for k in range(4)
        )

    def run(
        self,
        n_trials: int,
        specs: Sequence["TrialFaults"] | None = None,
        *,
        faults_per_trial: int | None = None,
        workers: int | None = None,
    ) -> CampaignResult:
        """Run ``n_trials`` random trials, or the provided fault sets.

        Contract: when ``specs`` is given it fully determines the
        trials — each entry a bare :class:`FaultSpec` (a single-fault
        trial) or a sequence of specs (one trial's simultaneous fault
        set) — and ``n_trials`` must agree: either ``0`` ("however
        many specs there are") or exactly ``len(specs)``;
        ``faults_per_trial`` must then be left unset.  Without
        ``specs``, each trial draws ``faults_per_trial`` (default 1)
        random original-path faults.  Any other combination raises
        :class:`FaultInjectionError` rather than silently ignoring an
        argument.

        All trials execute through the batched injection engine
        (bit-identical to per-trial :meth:`run_trial` calls).
        ``workers`` overrides the campaign's default worker count for
        this run (see the constructor); any sharded execution returns
        the exact record sequence the in-process path produces.

        Example
        -------
        >>> import numpy as np
        >>> from repro.abft import GlobalABFT
        >>> from repro.faults import FaultCampaign
        >>> rng = np.random.default_rng(0)
        >>> a = rng.standard_normal((48, 32)).astype(np.float16)
        >>> b = rng.standard_normal((32, 40)).astype(np.float16)
        >>> campaign = FaultCampaign(GlobalABFT(), a, b, seed=7)
        >>> result = campaign.run(64)
        >>> result.n_trials
        64
        >>> 0.0 <= result.coverage <= 1.0
        True
        """
        if n_trials < 0:
            raise FaultInjectionError(f"n_trials must be >= 0, got {n_trials}")
        if specs is not None:
            if faults_per_trial is not None:
                raise FaultInjectionError(
                    "faults_per_trial only applies to randomly drawn "
                    "trials; explicit specs already fix each trial's faults"
                )
            if n_trials not in (0, len(specs)):
                raise FaultInjectionError(
                    f"n_trials={n_trials} disagrees with {len(specs)} explicit "
                    f"specs; pass 0 or len(specs)"
                )
            trials = self._normalize_trials(specs)
        else:
            per_trial = 1 if faults_per_trial is None else faults_per_trial
            if per_trial < 1:
                raise FaultInjectionError(
                    f"faults_per_trial must be >= 1, got {per_trial}"
                )
            trials = [
                tuple(self.random_fault() for _ in range(per_trial))
                for _ in range(n_trials)
            ]
        result = CampaignResult(scheme=self.scheme.name)
        n_workers = self._resolve_workers(workers, len(trials))
        if n_workers > 1:
            from .parallel import run_campaign_sharded

            result.trials.extend(
                run_campaign_sharded(self, trials=trials, workers=n_workers)
            )
        else:
            result.trials.extend(self._run_specs(trials))
        return result

    def _fused_sites_fn(self, trials: Sequence[tuple[FaultSpec, ...]]):
        """Per-chunk :class:`FaultSites` builder fused with a drawn batch.

        Extracts the batch's flat trial-major coordinate arrays once,
        so each chunk's site valuation is a slice + one vectorized
        corruption call (:func:`sites_from_flat_specs`) instead of the
        generic per-spec first-occurrence walk.  Returns ``None`` —
        caller falls back to :func:`faulted_site_values` — when any
        trial strikes one site twice (possible for multi-fault trials
        over tiny fault domains), where single-step application would
        diverge from spec-order semantics.
        """
        counts = np.fromiter(
            (len(t) for t in trials), dtype=np.intp, count=len(trials)
        )
        flat = [spec for trial in trials for spec in trial]
        total = len(flat)
        trial_ids = np.repeat(np.arange(len(trials), dtype=np.intp), counts)
        rows = np.fromiter((s.row for s in flat), dtype=np.intp, count=total)
        cols = np.fromiter((s.col for s in flat), dtype=np.intp, count=total)
        rows_total, cols_total = self.fault_domain
        keys = (trial_ids * rows_total + rows) * cols_total + cols
        if len(np.unique(keys)) != total:
            return None
        offsets = np.concatenate(([0], np.cumsum(counts)))

        def build(start: int, chunk) -> "FaultSites":
            lo = int(offsets[start])
            hi = int(offsets[start + len(chunk)])
            return sites_from_flat_specs(
                self._prepared.c_clean,
                trial_ids[lo:hi] - start,
                rows[lo:hi],
                cols[lo:hi],
                flat[lo:hi],
                len(chunk),
            )

        return build

    def run_batch(
        self,
        n_trials: int,
        *,
        faults_per_trial: int = 1,
        workers: int | None = None,
    ) -> CampaignResult:
        """Run ``n_trials`` random trials with all specs drawn up front.

        Equivalent coverage semantics to :meth:`run` (each trial is one
        fault-set injection against the shared prepared state), but the
        randomness is drawn in vectorized batch RNG calls before any
        trial executes, and the fault→site valuation feeding the sparse
        engine and record classification is fused with the draw
        (:meth:`_fused_sites_fn`) — the fastest path through a
        campaign, record-for-record identical to
        ``run(n_trials, specs=draw_faults(...))``.
        ``faults_per_trial`` sets every trial's simultaneous fault
        count (see :meth:`draw_faults`).

        With ``workers=N > 1`` (or a campaign-level default) the drawn
        trial stream is sharded across a process pool sharing this
        campaign's prepared state through shared memory; the parent
        draws all randomness up front exactly as in-process, so for a
        fixed seed the merged result is record-for-record identical at
        any worker count.  A worker failure raises
        :class:`~repro.errors.CampaignError`.

        Example
        -------
        >>> import numpy as np
        >>> from repro.abft import GlobalABFT
        >>> from repro.faults import FaultCampaign
        >>> rng = np.random.default_rng(0)
        >>> a = rng.standard_normal((48, 32)).astype(np.float16)
        >>> b = rng.standard_normal((32, 40)).astype(np.float16)
        >>> campaign = FaultCampaign(GlobalABFT(), a, b, seed=7)
        >>> result = campaign.run_batch(128, faults_per_trial=2)
        >>> result.n_trials, result.trials[0].n_faults
        (128, 2)
        >>> sorted(result.coverage_by_fault_count()) == [2]
        True
        """
        n_workers = self._resolve_workers(workers, n_trials)
        if n_workers > 1:
            if faults_per_trial < 1:
                raise FaultInjectionError(
                    f"faults_per_trial must be >= 1, got {faults_per_trial}"
                )
            from .parallel import run_campaign_sharded

            arrays = self._draw_spec_arrays(n_trials * faults_per_trial)
            result = CampaignResult(scheme=self.scheme.name)
            result.trials.extend(
                run_campaign_sharded(
                    self,
                    arrays=arrays,
                    n_trials=n_trials,
                    faults_per_trial=faults_per_trial,
                    workers=n_workers,
                )
            )
            return result
        drawn = self.draw_faults(n_trials, faults_per_trial=faults_per_trial)
        trials = self._normalize_trials(drawn)
        result = CampaignResult(scheme=self.scheme.name)
        result.trials.extend(
            self._run_specs(trials, sites_fn=self._fused_sites_fn(trials))
        )
        return result
