"""Fault-injection campaigns measuring detection coverage.

A campaign runs a scheme's protected GEMM many times, each trial
injecting one fault (the paper's single-fault model), and tallies
detections.  Trials whose corruption is numerically negligible (below
the detection tolerance *and* below any sensible significance threshold)
are tracked separately: ABFT's guarantee is about *significant* faults,
and FP bit flips in low mantissa bits can be smaller than legitimate
rounding noise.

The campaign rides the prepared-execution engine: the operands are
prepared **once** at construction (padding, tile selection, the clean
GEMM, operand checksums), and trials execute in chunked
:meth:`~repro.abft.base.PreparedExecution.inject_batch` calls — so N
trials run the clean padded GEMM and the operand-side reductions
exactly once instead of N+1 times, and the output-side re-reductions
and verdicts all happen in batch-wide NumPy calls.  Schemes with a
sparse re-reduction path (DESIGN.md §1.3) additionally skip the
stacked accumulator entirely: only the reduction slices each fault
struck are recomputed, and trial records are classified from the fault
sites' final values rather than from materialized accumulators, so the
whole record pipeline — delta gather, significance classification,
verdict extraction — is vectorized end to end.  The chunk size
(:attr:`FaultCampaign.batch_size`) is auto-tuned from the scheme's
check-array footprint unless overridden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..config import DEFAULT_DETECTION, DetectionConstants

if TYPE_CHECKING:  # avoid the faults <-> abft import cycle at runtime
    from ..abft.base import Scheme
from ..errors import FaultInjectionError
from ..gemm.tiles import TileConfig
from .injector import faulted_site_values
from .model import FaultKind, FaultPath, FaultSpec


@dataclass(frozen=True)
class TrialRecord:
    """One campaign trial: the fault, its magnitude, and the verdict."""

    spec: FaultSpec
    delta: float
    detected: bool
    significant: bool


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    scheme: str
    trials: list[TrialRecord] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_detected(self) -> int:
        return sum(t.detected for t in self.trials)

    @property
    def n_significant(self) -> int:
        return sum(t.significant for t in self.trials)

    @property
    def coverage(self) -> float:
        """Detection rate over *significant* faults (the ABFT guarantee)."""
        significant = [t for t in self.trials if t.significant]
        if not significant:
            return 1.0
        return sum(t.detected for t in significant) / len(significant)

    @property
    def false_negatives(self) -> list[TrialRecord]:
        """Significant faults that escaped detection."""
        return [t for t in self.trials if t.significant and not t.detected]


class FaultCampaign:
    """Run repeated single-fault trials against one scheme.

    Parameters
    ----------
    scheme:
        The protected-execution scheme under test.
    a, b:
        Operand matrices (logical shapes).
    tile:
        Optional tile configuration override.
    significance_factor:
        A fault is *significant* when its absolute delta exceeds
        ``significance_factor`` times the detection tolerance of the
        coarsest check (the output summation).  Sub-significant flips
        (e.g. LSB mantissa flips) are below the rounding-noise floor by
        construction and no checksum scheme can — or needs to — see them.
    batch_size:
        Trials per chunked ``inject_batch`` call.  ``None`` (default)
        auto-tunes it from the scheme's per-trial memory footprint —
        the check arrays alone on the sparse path, the stacked
        ``(batch, m_full, n_full)`` accumulator plus check arrays on
        the dense one — so every scheme's chunk fills roughly the same
        transient-memory budget while keeping the per-trial Python
        overhead amortized.
    sparse:
        Re-reduction path selector, forwarded to ``inject_batch``:
        ``None`` (default) uses sparse re-reduction whenever the scheme
        supports it, ``False`` forces the dense stacked batch, ``True``
        demands sparse and rejects schemes without it.
    """

    #: Transient-memory budget the auto-tuned batch size fills.
    BATCH_MEMORY_BUDGET = 32 * 1024 * 1024
    #: Auto-tuned batch size clamp (amortization floor / memory ceiling).
    BATCH_SIZE_BOUNDS = (32, 2048)

    def __init__(
        self,
        scheme: "Scheme",
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        detection: DetectionConstants = DEFAULT_DETECTION,
        significance_factor: float = 4.0,
        seed: int = 0,
        batch_size: int | None = None,
        sparse: bool | None = None,
    ) -> None:
        if not scheme.protects:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} performs no checks; a campaign "
                f"against it cannot measure coverage"
            )
        if batch_size is not None and batch_size <= 0:
            raise FaultInjectionError(
                f"batch_size must be positive, got {batch_size}"
            )
        if sparse and not scheme.supports_sparse:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} has no sparse re-reduction path; "
                f"pass sparse=False or None"
            )
        self.scheme = scheme
        self.a = np.asarray(a, dtype=np.float16)
        self.b = np.asarray(b, dtype=np.float16)
        self.tile = tile
        self.detection = detection
        self.significance_factor = significance_factor
        self.sparse = sparse
        self.rng = np.random.default_rng(seed)
        self._scratch: np.ndarray | None = None

        # All fault-invariant work happens exactly once, here; trials
        # only inject into copies of the prepared accumulator.
        self._prepared = scheme.prepare(self.a, self.b, tile=tile)
        self._use_sparse = scheme.supports_sparse if sparse is None else sparse
        self.batch_size = (
            batch_size if batch_size is not None else self._auto_batch_size()
        )

        # Baseline (fault-free) run: establishes the tolerance scale and
        # sanity-checks that the clean execution raises no alarm.
        baseline = self._prepared.inject(detection=detection)
        if baseline.detected:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} flags a fault on clean data; "
                f"detection tolerances are miscalibrated for this problem"
            )
        self._baseline = baseline
        self._tolerance_scale = max(
            baseline.verdict.tolerance if baseline.verdict else 0.0,
            detection.atol_floor,
        )

    # ------------------------------------------------------------------
    def _auto_batch_size(self) -> int:
        """Chunk size filling :attr:`BATCH_MEMORY_BUDGET` per batch.

        The per-trial transient footprint depends on the execution
        path: sparse re-reduction materializes only per-trial copies of
        the scheme's check arrays (plus comparison intermediates of the
        same shape), while the dense batch adds the stacked
        ``(batch, m_full, n_full)`` float32 accumulator.  Schemes with
        small check arrays (scalar global checks, per-tile sums) thus
        get much larger chunks than schemes whose checks are
        output-sized (elementwise replication), instead of everyone
        sharing one fixed guess.
        """
        executor = self._prepared.executor
        outputs = executor.m_full * executor.n_full
        if self.scheme.supports_sparse:
            reductions = self._prepared.clean_reductions
            if not isinstance(reductions, tuple):
                reductions = (reductions,)
            check_bytes = sum(np.asarray(r).nbytes for r in reductions)
        else:
            # No slice-decomposable reduction: the check compares
            # output-sized arrays elementwise (replication).
            check_bytes = 8 * outputs
        if self._use_sparse:
            # Broadcast check-array copy + residual/tolerance/verdict
            # intermediates, all check-shaped; no stacked accumulator.
            per_trial = 6 * check_bytes + 256
        else:
            per_trial = 4 * outputs + 4 * check_bytes
        low, high = self.BATCH_SIZE_BOUNDS
        return max(low, min(high, self.BATCH_MEMORY_BUDGET // per_trial))

    @property
    def fault_domain(self) -> tuple[int, int]:
        """Padded accumulator shape every random fault site is drawn from.

        The single source of truth for both :meth:`random_fault` and
        :meth:`draw_faults` — the prepared clean accumulator, whose grid
        is what injection indexes into.
        """
        rows, cols = self._prepared.c_clean.shape
        return int(rows), int(cols)

    def random_fault(self) -> FaultSpec:
        """Draw one original-path fault at a random output element."""
        rows, cols = self.fault_domain
        row = int(self.rng.integers(rows))
        col = int(self.rng.integers(cols))
        kind = self.rng.choice(
            [FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16, FaultKind.ADD]
        )
        if kind is FaultKind.ADD:
            # A corrupted MMA partial product: magnitude comparable to a
            # legitimate partial sum, random sign.
            scale = float(np.abs(self._prepared.c_clean).mean() + 1.0)
            value = float(self.rng.normal(0.0, scale))
            return FaultSpec(row=row, col=col, kind=kind, value=value)
        bits = 32 if kind is FaultKind.BITFLIP_FP32 else 16
        bit = int(self.rng.integers(bits))
        return FaultSpec(row=row, col=col, kind=kind, bit=bit)

    def draw_faults(self, n: int) -> list[FaultSpec]:
        """Vectorized batch of ``n`` random original-path fault specs.

        All random draws happen up front in whole-batch RNG calls; only
        the cheap per-spec assembly is a Python loop.  The stream
        differs from ``n`` successive :meth:`random_fault` calls but is
        equally deterministic for a given campaign seed.
        """
        if n < 0:
            raise FaultInjectionError(f"cannot draw {n} faults")
        rows_total, cols_total = self.fault_domain
        rows = self.rng.integers(rows_total, size=n)
        cols = self.rng.integers(cols_total, size=n)
        kinds = self.rng.choice(
            np.array(
                [FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16, FaultKind.ADD],
                dtype=object,
            ),
            size=n,
        )
        scale = float(np.abs(self._prepared.c_clean).mean() + 1.0)
        values = self.rng.normal(0.0, scale, size=n)
        bits = self.rng.integers(32, size=n)
        specs: list[FaultSpec] = []
        for i in range(n):
            kind = kinds[i]
            if kind is FaultKind.ADD:
                specs.append(
                    FaultSpec(row=int(rows[i]), col=int(cols[i]), kind=kind,
                              value=float(values[i]))
                )
            else:
                n_bits = 32 if kind is FaultKind.BITFLIP_FP32 else 16
                specs.append(
                    FaultSpec(row=int(rows[i]), col=int(cols[i]), kind=kind,
                              bit=int(bits[i]) % n_bits)
                )
        return specs

    def run_trial(self, spec: FaultSpec) -> TrialRecord:
        """Execute one trial with the given fault injected."""
        outcome = self._prepared.inject([spec], detection=self.detection)
        return self._record(spec, outcome)

    def _record(self, spec: FaultSpec, outcome) -> TrialRecord:
        """Classify one trial outcome against the clean accumulator."""
        if spec.path is FaultPath.ORIGINAL:
            clean = self._prepared.c_clean
            delta = float(outcome.c_accumulator[spec.row, spec.col]) - float(
                clean[spec.row, spec.col]
            )
        else:
            delta = float("nan")
        significant = (
            not np.isfinite(delta)
            or abs(delta) > self.significance_factor * self._tolerance_scale
        )
        return TrialRecord(
            spec=spec, delta=delta, detected=outcome.detected, significant=significant
        )

    def _records_batch(
        self, specs: Sequence[FaultSpec], outcomes: Sequence, sites=None
    ) -> list[TrialRecord]:
        """Vectorized record assembly for one single-fault chunk.

        Deltas come from the fault sites' final values
        (:func:`~repro.faults.injector.faulted_site_values` — the same
        corruption core injection uses), not from reading materialized
        accumulators, so the gather is one fancy-indexed NumPy call on
        either execution path and sparse outcomes never materialize
        their grids.  Significance classification is a single
        vectorized comparison.  Record-for-record identical to
        :meth:`_record` on each (spec, outcome) pair.
        """
        n = len(specs)
        clean = self._prepared.c_clean
        deltas = np.full(n, np.nan)
        if sites is None:
            sites = faulted_site_values(clean, [(spec,) for spec in specs])
        if len(sites):
            deltas[sites.trials] = sites.values.astype(np.float64) - clean[
                sites.rows, sites.cols
            ].astype(np.float64)
        threshold = self.significance_factor * self._tolerance_scale
        with np.errstate(invalid="ignore"):
            significant = ~np.isfinite(deltas) | (np.abs(deltas) > threshold)
        return [
            TrialRecord(
                spec=specs[i],
                delta=float(deltas[i]),
                detected=outcomes[i].detected,
                significant=bool(significant[i]),
            )
            for i in range(n)
        ]

    def _run_specs(self, specs: Sequence[FaultSpec]) -> list[TrialRecord]:
        """Execute all specs through chunked ``inject_batch`` calls.

        On the dense path one scratch buffer of ``batch_size`` stacked
        accumulators is allocated lazily and reused across chunks (and
        campaign runs): records are extracted from each chunk's
        outcomes before the next chunk overwrites the buffer.  The
        sparse path materializes no accumulators, so it needs no
        scratch at all.
        """
        records: list[TrialRecord] = []
        scratch = None
        if not self._use_sparse:
            size = min(self.batch_size, len(specs))
            if size and (self._scratch is None or len(self._scratch) < size):
                self._scratch = np.empty(
                    (size, *self._prepared.c_clean.shape), dtype=np.float32
                )
            scratch = self._scratch
        for start in range(0, len(specs), self.batch_size):
            chunk = list(specs[start:start + self.batch_size])
            trials = [(spec,) for spec in chunk]
            sites = None
            if self._use_sparse:
                # One fault→site valuation serves both the sparse
                # injection and the record classification.
                sites = faulted_site_values(self._prepared.c_clean, trials)
            outcomes = self._prepared.inject_batch(
                trials,
                detection=self.detection,
                out=scratch[: len(chunk)] if scratch is not None else None,
                sparse=self._use_sparse,
                sites=sites,
            )
            records.extend(self._records_batch(chunk, outcomes, sites))
        return records

    def run(self, n_trials: int, specs: Sequence[FaultSpec] | None = None) -> CampaignResult:
        """Run ``n_trials`` random trials, or the provided specs.

        Contract: when ``specs`` is given it fully determines the
        trials, and ``n_trials`` must agree — either ``0`` ("however
        many specs there are") or exactly ``len(specs)``.  Any other
        combination raises :class:`FaultInjectionError` rather than
        silently ignoring ``n_trials``.

        All trials execute through the batched injection engine
        (bit-identical to per-trial :meth:`run_trial` calls).
        """
        if n_trials < 0:
            raise FaultInjectionError(f"n_trials must be >= 0, got {n_trials}")
        if specs is not None:
            if n_trials not in (0, len(specs)):
                raise FaultInjectionError(
                    f"n_trials={n_trials} disagrees with {len(specs)} explicit "
                    f"specs; pass 0 or len(specs)"
                )
        else:
            specs = [self.random_fault() for _ in range(n_trials)]
        result = CampaignResult(scheme=self.scheme.name)
        result.trials.extend(self._run_specs(specs))
        return result

    def run_batch(self, n_trials: int) -> CampaignResult:
        """Run ``n_trials`` random trials with all specs drawn up front.

        Equivalent coverage semantics to :meth:`run` (each trial is one
        single-fault injection against the shared prepared state), but
        the randomness is drawn in vectorized batch RNG calls before any
        trial executes — the fastest path through a campaign.
        """
        return self.run(n_trials, specs=self.draw_faults(n_trials))
