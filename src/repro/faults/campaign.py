"""Fault-injection campaigns measuring detection coverage.

A campaign runs a scheme's protected GEMM many times, each trial
injecting one fault (the paper's single-fault model), and tallies
detections.  Trials whose corruption is numerically negligible (below
the detection tolerance *and* below any sensible significance threshold)
are tracked separately: ABFT's guarantee is about *significant* faults,
and FP bit flips in low mantissa bits can be smaller than legitimate
rounding noise.

The campaign rides the prepared-execution engine: the operands are
prepared **once** at construction (padding, tile selection, the clean
GEMM, operand checksums), and trials execute in stacked
:meth:`~repro.abft.base.PreparedExecution.inject_batch` calls — so N
trials run the clean padded GEMM and the operand-side reductions
exactly once instead of N+1 times, and the per-trial accumulator
copies, output-side re-reductions, and verdicts all happen in
batch-wide NumPy calls (chunked at :attr:`FaultCampaign.batch_size`
trials to bound the stacked-accumulator memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..config import DEFAULT_DETECTION, DetectionConstants

if TYPE_CHECKING:  # avoid the faults <-> abft import cycle at runtime
    from ..abft.base import Scheme
from ..errors import FaultInjectionError
from ..gemm.tiles import TileConfig
from .model import FaultKind, FaultPath, FaultSpec


@dataclass(frozen=True)
class TrialRecord:
    """One campaign trial: the fault, its magnitude, and the verdict."""

    spec: FaultSpec
    delta: float
    detected: bool
    significant: bool


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    scheme: str
    trials: list[TrialRecord] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_detected(self) -> int:
        return sum(t.detected for t in self.trials)

    @property
    def n_significant(self) -> int:
        return sum(t.significant for t in self.trials)

    @property
    def coverage(self) -> float:
        """Detection rate over *significant* faults (the ABFT guarantee)."""
        significant = [t for t in self.trials if t.significant]
        if not significant:
            return 1.0
        return sum(t.detected for t in significant) / len(significant)

    @property
    def false_negatives(self) -> list[TrialRecord]:
        """Significant faults that escaped detection."""
        return [t for t in self.trials if t.significant and not t.detected]


class FaultCampaign:
    """Run repeated single-fault trials against one scheme.

    Parameters
    ----------
    scheme:
        The protected-execution scheme under test.
    a, b:
        Operand matrices (logical shapes).
    tile:
        Optional tile configuration override.
    significance_factor:
        A fault is *significant* when its absolute delta exceeds
        ``significance_factor`` times the detection tolerance of the
        coarsest check (the output summation).  Sub-significant flips
        (e.g. LSB mantissa flips) are below the rounding-noise floor by
        construction and no checksum scheme can — or needs to — see them.
    batch_size:
        Trials per stacked ``inject_batch`` call; bounds the transient
        ``(batch, m_full, n_full)`` accumulator memory while keeping the
        per-trial Python overhead amortized.
    """

    def __init__(
        self,
        scheme: "Scheme",
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        detection: DetectionConstants = DEFAULT_DETECTION,
        significance_factor: float = 4.0,
        seed: int = 0,
        batch_size: int = 128,
    ) -> None:
        if not scheme.protects:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} performs no checks; a campaign "
                f"against it cannot measure coverage"
            )
        if batch_size <= 0:
            raise FaultInjectionError(
                f"batch_size must be positive, got {batch_size}"
            )
        self.scheme = scheme
        self.a = np.asarray(a, dtype=np.float16)
        self.b = np.asarray(b, dtype=np.float16)
        self.tile = tile
        self.detection = detection
        self.significance_factor = significance_factor
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self._scratch: np.ndarray | None = None

        # All fault-invariant work happens exactly once, here; trials
        # only inject into copies of the prepared accumulator.
        self._prepared = scheme.prepare(self.a, self.b, tile=tile)

        # Baseline (fault-free) run: establishes the tolerance scale and
        # sanity-checks that the clean execution raises no alarm.
        baseline = self._prepared.inject(detection=detection)
        if baseline.detected:
            raise FaultInjectionError(
                f"scheme {scheme.name!r} flags a fault on clean data; "
                f"detection tolerances are miscalibrated for this problem"
            )
        self._baseline = baseline
        self._tolerance_scale = max(
            baseline.verdict.tolerance if baseline.verdict else 0.0,
            detection.atol_floor,
        )

    # ------------------------------------------------------------------
    @property
    def fault_domain(self) -> tuple[int, int]:
        """Padded accumulator shape every random fault site is drawn from.

        The single source of truth for both :meth:`random_fault` and
        :meth:`draw_faults` — the prepared clean accumulator, whose grid
        is what injection indexes into.
        """
        rows, cols = self._prepared.c_clean.shape
        return int(rows), int(cols)

    def random_fault(self) -> FaultSpec:
        """Draw one original-path fault at a random output element."""
        rows, cols = self.fault_domain
        row = int(self.rng.integers(rows))
        col = int(self.rng.integers(cols))
        kind = self.rng.choice(
            [FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16, FaultKind.ADD]
        )
        if kind is FaultKind.ADD:
            # A corrupted MMA partial product: magnitude comparable to a
            # legitimate partial sum, random sign.
            scale = float(np.abs(self._prepared.c_clean).mean() + 1.0)
            value = float(self.rng.normal(0.0, scale))
            return FaultSpec(row=row, col=col, kind=kind, value=value)
        bits = 32 if kind is FaultKind.BITFLIP_FP32 else 16
        bit = int(self.rng.integers(bits))
        return FaultSpec(row=row, col=col, kind=kind, bit=bit)

    def draw_faults(self, n: int) -> list[FaultSpec]:
        """Vectorized batch of ``n`` random original-path fault specs.

        All random draws happen up front in whole-batch RNG calls; only
        the cheap per-spec assembly is a Python loop.  The stream
        differs from ``n`` successive :meth:`random_fault` calls but is
        equally deterministic for a given campaign seed.
        """
        if n < 0:
            raise FaultInjectionError(f"cannot draw {n} faults")
        rows_total, cols_total = self.fault_domain
        rows = self.rng.integers(rows_total, size=n)
        cols = self.rng.integers(cols_total, size=n)
        kinds = self.rng.choice(
            np.array(
                [FaultKind.BITFLIP_FP32, FaultKind.BITFLIP_FP16, FaultKind.ADD],
                dtype=object,
            ),
            size=n,
        )
        scale = float(np.abs(self._prepared.c_clean).mean() + 1.0)
        values = self.rng.normal(0.0, scale, size=n)
        bits = self.rng.integers(32, size=n)
        specs: list[FaultSpec] = []
        for i in range(n):
            kind = kinds[i]
            if kind is FaultKind.ADD:
                specs.append(
                    FaultSpec(row=int(rows[i]), col=int(cols[i]), kind=kind,
                              value=float(values[i]))
                )
            else:
                n_bits = 32 if kind is FaultKind.BITFLIP_FP32 else 16
                specs.append(
                    FaultSpec(row=int(rows[i]), col=int(cols[i]), kind=kind,
                              bit=int(bits[i]) % n_bits)
                )
        return specs

    def run_trial(self, spec: FaultSpec) -> TrialRecord:
        """Execute one trial with the given fault injected."""
        outcome = self._prepared.inject([spec], detection=self.detection)
        return self._record(spec, outcome)

    def _record(self, spec: FaultSpec, outcome) -> TrialRecord:
        """Classify one trial outcome against the clean accumulator."""
        if spec.path is FaultPath.ORIGINAL:
            clean = self._prepared.c_clean
            delta = float(outcome.c_accumulator[spec.row, spec.col]) - float(
                clean[spec.row, spec.col]
            )
        else:
            delta = float("nan")
        significant = (
            not np.isfinite(delta)
            or abs(delta) > self.significance_factor * self._tolerance_scale
        )
        return TrialRecord(
            spec=spec, delta=delta, detected=outcome.detected, significant=significant
        )

    def _run_specs(self, specs: Sequence[FaultSpec]) -> list[TrialRecord]:
        """Execute all specs through chunked ``inject_batch`` calls.

        One scratch buffer of ``batch_size`` stacked accumulators is
        allocated lazily and reused across chunks (and campaign runs):
        records are extracted from each chunk's outcomes before the next
        chunk overwrites the buffer.
        """
        records: list[TrialRecord] = []
        size = min(self.batch_size, len(specs))
        if size and (self._scratch is None or len(self._scratch) < size):
            self._scratch = np.empty(
                (size, *self._prepared.c_clean.shape), dtype=np.float32
            )
        for start in range(0, len(specs), self.batch_size):
            chunk = list(specs[start:start + self.batch_size])
            outcomes = self._prepared.inject_batch(
                [(spec,) for spec in chunk],
                detection=self.detection,
                out=self._scratch[: len(chunk)],
            )
            records.extend(
                self._record(spec, outcome)
                for spec, outcome in zip(chunk, outcomes)
            )
        return records

    def run(self, n_trials: int, specs: Sequence[FaultSpec] | None = None) -> CampaignResult:
        """Run ``n_trials`` random trials, or the provided specs.

        Contract: when ``specs`` is given it fully determines the
        trials, and ``n_trials`` must agree — either ``0`` ("however
        many specs there are") or exactly ``len(specs)``.  Any other
        combination raises :class:`FaultInjectionError` rather than
        silently ignoring ``n_trials``.

        All trials execute through the batched injection engine
        (bit-identical to per-trial :meth:`run_trial` calls).
        """
        if n_trials < 0:
            raise FaultInjectionError(f"n_trials must be >= 0, got {n_trials}")
        if specs is not None:
            if n_trials not in (0, len(specs)):
                raise FaultInjectionError(
                    f"n_trials={n_trials} disagrees with {len(specs)} explicit "
                    f"specs; pass 0 or len(specs)"
                )
        else:
            specs = [self.random_fault() for _ in range(n_trials)]
        result = CampaignResult(scheme=self.scheme.name)
        result.trials.extend(self._run_specs(specs))
        return result

    def run_batch(self, n_trials: int) -> CampaignResult:
        """Run ``n_trials`` random trials with all specs drawn up front.

        Equivalent coverage semantics to :meth:`run` (each trial is one
        single-fault injection against the shared prepared state), but
        the randomness is drawn in vectorized batch RNG calls before any
        trial executes — the fastest path through a campaign.
        """
        return self.run(n_trials, specs=self.draw_faults(n_trials))
