"""Bit-flip helpers for IEEE-754 half and single precision values.

Soft errors in datapath logic manifest as single-bit upsets in computed
values; these helpers produce the corrupted value for a given bit
position, which the injector turns into an additive delta on the target
accumulator.
"""

from __future__ import annotations

import numpy as np

from ..errors import FaultInjectionError


def flip_fp16_bit(value: float, bit: int) -> float:
    """Return ``value`` (as FP16) with bit ``bit`` (0 = LSB) flipped.

    Values beyond the FP16 range quantize to inf first — that is the
    word the hardware would hold, so the overflow is expected.
    """
    if not 0 <= bit < 16:
        raise FaultInjectionError(f"FP16 bit index must be in [0, 16), got {bit}")
    with np.errstate(over="ignore"):
        raw = np.float16(value).view(np.uint16)
    flipped = np.uint16(raw ^ np.uint16(1 << bit))
    return float(flipped.view(np.float16))


def flip_fp32_bit(value: float, bit: int) -> float:
    """Return ``value`` (as FP32) with bit ``bit`` (0 = LSB) flipped."""
    if not 0 <= bit < 32:
        raise FaultInjectionError(f"FP32 bit index must be in [0, 32), got {bit}")
    raw = np.float32(value).view(np.uint32)
    flipped = np.uint32(raw ^ np.uint32(1 << bit))
    return float(flipped.view(np.float32))
