"""One options object for every campaign entry point.

:class:`CampaignOptions` collapses the execution knobs that were
duplicated — with drifting subsets — across :class:`~repro.faults.
FaultCampaign`, :class:`~repro.faults.PropagationCampaign`, and the
:class:`~repro.api.ProtectedSession` campaign methods into a single
frozen dataclass accepted everywhere as ``options=``.

Every field defaults to ``None``, meaning "the consumer's own default",
so a partially filled options object composes with per-consumer
defaults exactly like the individual kwargs did.  The trial-shaping
knobs (``seed`` / ``significance_factor`` / ``batch_size`` /
``sparse``) may be given either through ``options=`` or through the
corresponding keyword, never both; ``detection`` / ``cache`` /
``workers`` travel only on the options object (their keyword aliases
were removed after one deprecated release).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any

from ..errors import FaultInjectionError

if TYPE_CHECKING:  # pragma: no cover
    from ..abft.base import PreparedCache
    from ..config import DetectionConstants


@dataclass(frozen=True)
class CampaignOptions:
    """Execution knobs shared by every campaign entry point.

    Attributes
    ----------
    seed:
        Fault-draw RNG seed (effective default ``0``).
    detection:
        Detection constants.  GEMM-level campaigns default to the
        scheme's own :attr:`~repro.abft.Scheme.default_detection`
        (sessions to their own constants); a
        :class:`~repro.faults.PropagationCampaign` inherits its
        engine's constants and rejects a conflicting value.
    significance_factor:
        Significance threshold multiplier (effective default ``4.0``).
    batch_size:
        Trials per chunked ``inject_batch`` call (default: auto-tuned).
    sparse:
        Re-reduction path selector (default: sparse when supported).
    cache:
        Shared :class:`~repro.abft.base.PreparedCache`.  A propagation
        campaign inherits its engine's cache and rejects a conflicting
        value.
    workers:
        Default worker-process count for every run of the campaign.

    Example
    -------
    >>> from repro.faults import CampaignOptions
    >>> opts = CampaignOptions(seed=7, workers=2)
    >>> opts.with_defaults(seed=0, batch_size=64)
    CampaignOptions(seed=7, detection=None, significance_factor=None, \
batch_size=64, sparse=None, cache=None, workers=2)
    """

    seed: int | None = None
    detection: "DetectionConstants | None" = None
    significance_factor: float | None = None
    batch_size: int | None = None
    sparse: bool | None = None
    cache: "PreparedCache | None" = None
    workers: int | None = None

    def with_defaults(self, **defaults: Any) -> "CampaignOptions":
        """A copy with every still-``None`` field filled from ``defaults``."""
        known = {field.name for field in fields(self)}
        unknown = set(defaults) - known
        if unknown:
            raise TypeError(
                f"unknown CampaignOptions fields: {sorted(unknown)}"
            )
        updates = {
            name: value
            for name, value in defaults.items()
            if getattr(self, name) is None
        }
        return replace(self, **updates) if updates else self


def resolve_option(
    options: CampaignOptions | None, owner: str, name: str, value: Any
) -> Any:
    """The effective value of a knob settable as a keyword or via options.

    ``None`` means "not given" on both sides; giving both raises (which
    side wins would otherwise be a silent guess).
    """
    from_options = getattr(options, name) if options is not None else None
    if value is not None and from_options is not None:
        raise FaultInjectionError(
            f"{owner}: {name!r} given both directly and via options="
        )
    return value if value is not None else from_options
