"""Detection-triggered recovery: bounded retry with graceful degradation.

ABFT detects, it does not correct — the actionable response to a
detection is to *re-execute* the struck GEMM (paper §2.5: a flagged
layer is recomputed before its output is consumed).  Whether that
helps depends on the fault's temporal model:

* **transient** — a soft error (particle strike, voltage droop) that
  does not recur: the retry executes fault-free and recovers the
  bit-exact clean output.
* **sticky** — a persistent defect (stuck-at logic, a bad SM): every
  retry re-executes under the same fault, so retries burn budget
  without converging and the policy's degradation mode decides what
  happens to the request.

:class:`RecoveryPolicy` bundles the retry budget, the fault model, and
the degradation mode; :func:`attempt_recovery` is the engine-agnostic
retry loop shared by :class:`~repro.nn.ProtectedInference`, the
layer-GEMM session path, and :class:`~repro.faults.PropagationCampaign`
— one implementation, one semantics, everywhere a detection can fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import ConfigurationError, RecoveryError
from .model import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..abft.base import ExecutionOutcome

#: Valid temporal fault models.
FAULT_MODELS = ("transient", "sticky")
#: Valid budget-exhaustion degradation modes.
EXHAUSTION_MODES = ("raise", "flag-and-propagate")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a session responds to a detected fault.

    Attributes
    ----------
    max_retries:
        Bounded retry budget per detection (>= 1).  A retry re-executes
        only the struck layer's GEMM against its prepared state — the
        fault-invariant half is never re-paid.
    fault_model:
        ``"transient"`` (default): the fault does not recur, so retries
        execute fault-free.  ``"sticky"``: the fault persists, so every
        retry re-executes under the same fault specs — the adversarial
        model for exercising the degradation path.
    on_exhausted:
        What happens when every retry in the budget is still detected:
        ``"raise"`` aborts the pass with
        :class:`~repro.errors.RecoveryError`;
        ``"flag-and-propagate"`` (default) marks the layer outcome
        degraded and lets the (possibly corrupted) output flow
        downstream — the caller sees the flag and decides.

    Examples
    --------
    >>> RecoveryPolicy().fault_model
    'transient'
    >>> RecoveryPolicy(fault_model="sticky").sticky
    True
    >>> RecoveryPolicy(max_retries=0)
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: max_retries must be >= 1, got 0
    """

    max_retries: int = 2
    fault_model: str = "transient"
    on_exhausted: str = "flag-and-propagate"

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.fault_model not in FAULT_MODELS:
            raise ConfigurationError(
                f"fault_model must be one of {FAULT_MODELS}, "
                f"got {self.fault_model!r}"
            )
        if self.on_exhausted not in EXHAUSTION_MODES:
            raise ConfigurationError(
                f"on_exhausted must be one of {EXHAUSTION_MODES}, "
                f"got {self.on_exhausted!r}"
            )

    @property
    def sticky(self) -> bool:
        """True when retries re-execute under the original faults."""
        return self.fault_model == "sticky"


@dataclass(frozen=True)
class RecoveryAttempt:
    """Outcome of one detection's retry loop.

    Attributes
    ----------
    outcome:
        The execution outcome the pass continues with: the first clean
        retry when recovery succeeded, the original detected outcome
        when the budget was exhausted under ``"flag-and-propagate"``.
    retries:
        Retries actually executed (0 when the first execution was
        already clean or no policy applies).
    recovered:
        A retry came back clean; its output is bit-identical to a
        fault-free execution of the same prepared state.
    degraded:
        The budget was exhausted and the policy chose to propagate.
    """

    outcome: "ExecutionOutcome"
    retries: int
    recovered: bool
    degraded: bool


def attempt_recovery(
    execute: Callable[[Sequence[FaultSpec]], "ExecutionOutcome"],
    first: "ExecutionOutcome",
    faults: Sequence[FaultSpec],
    policy: RecoveryPolicy | None,
    *,
    context: str = "GEMM",
) -> RecoveryAttempt:
    """Run the policy's retry loop for one executed GEMM.

    ``execute(faults)`` re-executes the layer with the given fault
    specs — under the transient model retries pass ``()`` (the fault
    does not recur), under the sticky model they pass the original
    ``faults``.  The loop stops at the first undetected retry; an
    exhausted budget either raises :class:`~repro.errors.RecoveryError`
    or flags degradation, per ``policy.on_exhausted``.
    """
    if policy is None or not first.detected:
        return RecoveryAttempt(
            outcome=first, retries=0, recovered=False, degraded=False
        )
    retry_faults: Sequence[FaultSpec] = tuple(faults) if policy.sticky else ()
    retries = 0
    while retries < policy.max_retries:
        retries += 1
        retry = execute(retry_faults)
        if not retry.detected:
            return RecoveryAttempt(
                outcome=retry, retries=retries, recovered=True, degraded=False
            )
    if policy.on_exhausted == "raise":
        raise RecoveryError(
            f"{context}: detection persisted through {retries} "
            f"retr{'y' if retries == 1 else 'ies'} "
            f"({policy.fault_model} fault model)"
        )
    return RecoveryAttempt(
        outcome=first, retries=retries, recovered=False, degraded=True
    )
