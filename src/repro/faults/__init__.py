"""Soft-error fault model, injection, and coverage campaigns.

Implements the paper's fault model (§2.3): a single faulty output value
in ``C`` caused by a soft error in processing logic, with the memory
hierarchy assumed ECC-protected.  Faults can target the original
computation path, or the redundant (checksum) path — the latter yields
benign false alarms rather than silent corruption.
"""

from .bits import flip_fp16_bit, flip_fp32_bit
from .model import FaultKind, FaultPath, FaultSpec
from .injector import apply_fault_to_accumulator, corrupted_value
from .campaign import CampaignResult, FaultCampaign, SpecArrays, TrialRecord
from .options import CampaignOptions
from .parallel import (
    run_campaign_sharded,
    run_propagation_sharded,
    shard_bounds,
)
from .recovery import RecoveryAttempt, RecoveryPolicy, attempt_recovery
from .propagation import (
    PropagationCampaign,
    PropagationOutcome,
    PropagationRecord,
    PropagationResult,
)

__all__ = [
    "flip_fp16_bit",
    "flip_fp32_bit",
    "FaultKind",
    "FaultPath",
    "FaultSpec",
    "apply_fault_to_accumulator",
    "corrupted_value",
    "CampaignOptions",
    "CampaignResult",
    "FaultCampaign",
    "SpecArrays",
    "TrialRecord",
    "run_campaign_sharded",
    "run_propagation_sharded",
    "shard_bounds",
    "RecoveryAttempt",
    "RecoveryPolicy",
    "attempt_recovery",
    "PropagationCampaign",
    "PropagationOutcome",
    "PropagationRecord",
    "PropagationResult",
]
