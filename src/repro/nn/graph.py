"""Shape-level model representation: an ordered list of linear layers.

The paper's entire evaluation consumes a NN as the sequence of GEMMs
implementing its convolutional and fully-connected layers ("we include
only linear layers, as these layers typically dominate the end-to-end
execution time", §6.2).  :class:`ModelGraph` is exactly that sequence,
annotated with enough metadata to label figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import ModelZooError
from ..gemm.problem import GemmProblem


@dataclass(frozen=True)
class LinearLayer:
    """One linear layer of a model, lowered to its GEMM."""

    name: str
    kind: str  # "conv", "linear" or "attention"
    problem: GemmProblem

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "linear", "attention"):
            raise ModelZooError(
                f"layer kind must be conv|linear|attention, got {self.kind!r}"
            )


@dataclass(frozen=True)
class ModelGraph:
    """A model as its ordered linear layers plus provenance metadata.

    Attributes
    ----------
    name:
        Model identifier, e.g. ``"resnet50"``.
    batch:
        Batch size the shapes were derived for.
    input_desc:
        Human-readable input description, e.g. ``"3x1080x1920"``.
    layers:
        Linear layers in execution order.
    """

    name: str
    batch: int
    input_desc: str
    layers: tuple[LinearLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ModelZooError(f"model {self.name!r} has no linear layers")

    def __iter__(self) -> Iterator[LinearLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def problems(self) -> list[GemmProblem]:
        """The GEMMs of all linear layers, in order."""
        return [layer.problem for layer in self.layers]

    def total_flops(self, *, padded: bool = True) -> float:
        """Sum of GEMM FLOPs over all linear layers."""
        return sum(p.flops(padded=padded) for p in self.problems)

    def total_bytes(self, *, padded: bool = True) -> float:
        """Sum of GEMM bytes over all linear layers."""
        return sum(p.bytes_moved(padded=padded) for p in self.problems)

    def aggregate_intensity(self, *, padded: bool = True) -> float:
        """Aggregate arithmetic intensity (paper §3.2)."""
        return self.total_flops(padded=padded) / self.total_bytes(padded=padded)


class GraphBuilder:
    """Incremental builder used by the model-zoo architecture code.

    Tracks the running activation shape ``(channels, h, w)`` and
    appends lowered linear layers; architecture files stay close to
    their torchvision definitions.
    """

    def __init__(self, name: str, *, batch: int, channels: int, h: int, w: int) -> None:
        self.name = name
        self.batch = batch
        self.channels = channels
        self.h = h
        self.w = w
        self._layers: list[LinearLayer] = []

    # ------------------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel: int,
        *,
        stride: int = 1,
        padding: int = 0,
        name: str,
        in_channels: int | None = None,
        update_shape: bool = True,
    ) -> None:
        """Append a convolution operating on the current activation shape."""
        from .layers import Conv2dSpec

        cin = self.channels if in_channels is None else in_channels
        spec = Conv2dSpec(
            in_channels=cin,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )
        problem = spec.gemm_problem(
            batch=self.batch, h=self.h, w=self.w, label=f"{self.name}/{name}"
        )
        self._layers.append(LinearLayer(name=name, kind="conv", problem=problem))
        if update_shape:
            self.h, self.w = spec.output_hw(self.h, self.w)
            self.channels = out_channels

    def pool(
        self, kernel: int, stride: int, *, padding: int = 0, ceil_mode: bool = False
    ) -> None:
        """Apply a pooling layer (shape-only; pools are not GEMMs)."""
        from .layers import pool_output_shape

        self.h, self.w = pool_output_shape(
            self.h, self.w, kernel=kernel, stride=stride,
            padding=padding, ceil_mode=ceil_mode,
        )

    def adaptive_pool(self, out_h: int, out_w: int) -> None:
        """Adaptive average pool to a fixed spatial size."""
        self.h, self.w = out_h, out_w

    def set_channels(self, channels: int) -> None:
        """Override the channel count (after concatenation/splits)."""
        self.channels = channels

    def linear(self, out_features: int, *, name: str, in_features: int | None = None) -> None:
        """Append a fully-connected layer; flattens implicitly."""
        from .layers import LinearSpec

        fin = self.channels * self.h * self.w if in_features is None else in_features
        spec = LinearSpec(in_features=fin, out_features=out_features)
        problem = spec.gemm_problem(batch=self.batch, label=f"{self.name}/{name}")
        self._layers.append(LinearLayer(name=name, kind="linear", problem=problem))
        self.channels, self.h, self.w = out_features, 1, 1

    # ------------------------------------------------------------------
    def build(self, input_desc: str) -> ModelGraph:
        """Finalize into an immutable :class:`ModelGraph`."""
        return ModelGraph(
            name=self.name,
            batch=self.batch,
            input_desc=input_desc,
            layers=tuple(self._layers),
        )
