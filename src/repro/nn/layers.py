"""Linear-layer specifications and their GEMM lowering.

``Conv2dSpec`` and ``LinearSpec`` are shape-level descriptions: they
know how to propagate activation shapes and to produce the
:class:`~repro.gemm.problem.GemmProblem` the paper's accounting uses
(conv: ``M = B*Ho*Wo``, ``N = C_out``, ``K = C_in*kh*kw``; linear:
``M = B``, ``N = out_features``, ``K = in_features``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError
from ..gemm.im2col import conv_gemm_shape, conv_output_shape
from ..gemm.problem import GemmProblem
from ..utils import ceil_div, check_positive_int


def pool_output_shape(
    h: int,
    w: int,
    *,
    kernel: int,
    stride: int,
    padding: int = 0,
    ceil_mode: bool = False,
) -> tuple[int, int]:
    """Spatial shape after a pooling layer (floor or ceil semantics)."""
    check_positive_int(kernel, "kernel")
    check_positive_int(stride, "stride")

    def _one(size: int) -> int:
        span = size + 2 * padding - kernel
        if span < 0:
            raise ShapeError(f"pool kernel {kernel} larger than padded input {size}")
        out = (ceil_div(span, stride) if ceil_mode else span // stride) + 1
        if ceil_mode and (out - 1) * stride >= size + padding:
            out -= 1  # PyTorch rule: last window must start inside input
        return out

    return _one(h), _one(w)


@dataclass(frozen=True)
class Conv2dSpec:
    """A 2-D convolution's shape parameters.

    Grouped/depthwise convolutions are expressed with ``groups``; per
    the paper's footnote 3, the model zoo substitutes non-grouped
    convolutions (``groups=1``) for grouped ones, and this spec
    supports both so the substitution is explicit and testable.
    """

    in_channels: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.in_channels, "in_channels")
        check_positive_int(self.out_channels, "out_channels")
        check_positive_int(self.kernel, "kernel")
        check_positive_int(self.stride, "stride")
        check_positive_int(self.groups, "groups")
        if self.padding < 0:
            raise ShapeError("padding must be non-negative")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ShapeError(
                f"groups={self.groups} must divide channels "
                f"{self.in_channels}->{self.out_channels}"
            )

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        """Spatial output shape on an ``h x w`` input."""
        return conv_output_shape(
            h,
            w,
            kernel=(self.kernel, self.kernel),
            stride=(self.stride, self.stride),
            padding=(self.padding, self.padding),
        )

    def gemm_problem(self, *, batch: int, h: int, w: int, label: str = "") -> GemmProblem:
        """The GEMM implementing this conv on a ``batch x h x w`` input.

        For grouped convolutions each group is an independent GEMM; the
        aggregate is represented by one problem with ``K`` scaled down
        by ``groups`` (FLOPs and weight bytes both shrink by the group
        count, which is the property the intensity analysis needs).
        """
        m, n, k = conv_gemm_shape(
            batch=batch,
            in_channels=self.in_channels // self.groups,
            out_channels=self.out_channels,
            h=h,
            w=w,
            kernel=(self.kernel, self.kernel),
            stride=(self.stride, self.stride),
            padding=(self.padding, self.padding),
        )
        return GemmProblem(m, n, k, label=label)


@dataclass(frozen=True)
class LinearSpec:
    """A fully-connected layer's shape parameters."""

    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        check_positive_int(self.in_features, "in_features")
        check_positive_int(self.out_features, "out_features")

    def gemm_problem(self, *, batch: int, label: str = "") -> GemmProblem:
        """The GEMM implementing this layer on a ``batch``-row input."""
        return GemmProblem(batch, self.out_features, self.in_features, label=label)
