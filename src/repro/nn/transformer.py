"""Transformer-block workloads lowered to the paper's GEMM stream.

The paper's evaluation (§6.2) spans CNNs and DLRM MLPs; transformer
blocks extend the same methodology to attention.  A block decomposes
into exactly the linear layers intensity-guided ABFT reasons about:

* ``qkv`` — the fused query/key/value projection,
  ``(batch*seq) x d_model x 3*d_model``;
* per head ``h``: ``attn.h{h}.scores`` (``Q_h @ K_h^T / sqrt(d_h)``,
  a skinny ``k = d_h`` GEMM) and ``attn.h{h}.ctx`` (attention
  probabilities times ``V_h``, ``k = kv``);
* ``attn.out`` — the output projection;
* ``ffn.fc1`` / ``ffn.fc2`` — the two feed-forward GEMMs, the
  compute-heavy ``k = d_model`` / ``k = d_ff`` layers.

The attention-score GEMMs have small reduction dimensions (``d_h`` is
typically 32-128), putting them on the bandwidth-bound side of the
roofline where global ABFT's extra output traffic hurts, while the FFN
GEMMs are squarely compute-bound — the intensity split that makes the
guided scheme choose differently *within one block*.

Two views are produced, mirroring the CNN zoo:

* :func:`build_transformer_graph` — shape-only
  :class:`~repro.nn.ModelGraph` for selection and deployment planning;
* :func:`build_transformer_runnable` — a seeded numeric
  :class:`~repro.nn.SequentialModel` whose linear names match the
  graph layer for layer, so propagation campaigns and protected
  sessions run unchanged.

The runnable model executes decode-style attention against a frozen,
seeded key/value cache (length ``kv_len``), shared across the batch:
every per-head GEMM then has a fixed weight-side operand, which is what
lets the engine reuse prepared weight checksums across forward passes
exactly as it does for convolution kernels.  Softmax, GELU and the
concatenation plumbing run as nonlinear ops outside ABFT protection,
matching how the paper treats activations (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from ..errors import ModelZooError, ShapeError
from ..gemm.problem import GemmProblem
from .graph import LinearLayer, ModelGraph
from .inference import Linear, SequentialModel, _Op
from .layers import LinearSpec

__all__ = [
    "TransformerBlockSpec",
    "TRANSFORMER_PRESETS",
    "transformer_models",
    "build_transformer_graph",
    "build_transformer_runnable",
]


@dataclass(frozen=True)
class TransformerBlockSpec:
    """Shape of one transformer block's linear layers.

    ``seq_len`` is the *query* length (rows fed through the block);
    ``kv_len`` is the key/value cache length attended over, defaulting
    to ``seq_len`` (encoder-style self-attention).  A GPT-style decode
    step uses a short ``seq_len`` against a long ``kv_len``.

    >>> spec = TransformerBlockSpec(d_model=64, n_heads=2, d_ff=128, seq_len=4)
    >>> spec.head_dim, spec.kv, spec.rows
    (32, 4, 4)
    >>> TransformerBlockSpec(d_model=65, n_heads=2, d_ff=128, seq_len=4)
    Traceback (most recent call last):
        ...
    repro.errors.ShapeError: d_model (65) must divide evenly into 2 heads
    """

    d_model: int
    n_heads: int
    d_ff: int
    seq_len: int
    batch: int = 1
    kv_len: int | None = None

    def __post_init__(self) -> None:
        for field_name in ("d_model", "n_heads", "d_ff", "seq_len", "batch"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise ShapeError(
                    f"{field_name} must be a positive int, got {value!r}"
                )
        if self.kv_len is not None and (
            not isinstance(self.kv_len, int) or self.kv_len < 1
        ):
            raise ShapeError(f"kv_len must be a positive int, got {self.kv_len!r}")
        if self.d_model % self.n_heads:
            raise ShapeError(
                f"d_model ({self.d_model}) must divide evenly into "
                f"{self.n_heads} heads"
            )

    @property
    def head_dim(self) -> int:
        """Per-head feature width ``d_model / n_heads``."""
        return self.d_model // self.n_heads

    @property
    def kv(self) -> int:
        """Key/value cache length (``kv_len``, defaulting to ``seq_len``)."""
        return self.seq_len if self.kv_len is None else self.kv_len

    @property
    def rows(self) -> int:
        """GEMM row count ``batch * seq_len`` shared by every layer."""
        return self.batch * self.seq_len


#: The two shipped block presets.  ``transformer_encoder`` is a small
#: encoder block with square self-attention; ``transformer_decoder`` is
#: a GPT-style decode step — few query rows against a long KV cache,
#: which drives the attention GEMMs deep into bandwidth-bound territory
#: while the FFN stays compute-bound.
TRANSFORMER_PRESETS: Mapping[str, TransformerBlockSpec] = {
    "transformer_encoder": TransformerBlockSpec(
        d_model=128, n_heads=4, d_ff=512, seq_len=32
    ),
    "transformer_decoder": TransformerBlockSpec(
        d_model=128, n_heads=4, d_ff=512, seq_len=8, kv_len=128
    ),
}


def transformer_models() -> list[str]:
    """Names of the transformer presets, in zoo order.

    >>> transformer_models()
    ['transformer_encoder', 'transformer_decoder']
    """
    return list(TRANSFORMER_PRESETS)


def _spec_for(name: str, batch: int | None) -> TransformerBlockSpec:
    spec = TRANSFORMER_PRESETS.get(name.lower())
    if spec is None:
        raise ModelZooError(
            f"unknown transformer preset {name!r}; presets are "
            f"{transformer_models()}"
        )
    if batch is not None:
        spec = replace(spec, batch=batch)
    return spec


def _layer_names(spec: TransformerBlockSpec) -> list[str]:
    names = ["qkv"]
    for h in range(spec.n_heads):
        names += [f"attn.h{h}.scores", f"attn.h{h}.ctx"]
    return names + ["attn.out", "ffn.fc1", "ffn.fc2"]


def build_transformer_graph(
    name: str, *, batch: int | None = None, spec: TransformerBlockSpec | None = None
) -> ModelGraph:
    """Shape-only graph of one transformer block's GEMM stream.

    ``name`` selects a preset from :data:`TRANSFORMER_PRESETS` unless an
    explicit ``spec`` is given (the graph is then labeled ``name``).

    >>> graph = build_transformer_graph("transformer_encoder")
    >>> [layer.name for layer in graph][:4]
    ['qkv', 'attn.h0.scores', 'attn.h0.ctx', 'attn.h1.scores']
    >>> graph.layers[1].kind, graph.layers[1].problem.k
    ('attention', 32)
    """
    if spec is None:
        spec = _spec_for(name, batch)
    elif batch is not None:
        spec = replace(spec, batch=batch)
    m, dh, kv = spec.rows, spec.head_dim, spec.kv

    def _layer(layer_name: str, kind: str, n: int, k: int) -> LinearLayer:
        problem = GemmProblem(m, n, k, label=f"{name}/{layer_name}")
        return LinearLayer(name=layer_name, kind=kind, problem=problem)

    layers = [_layer("qkv", "linear", 3 * spec.d_model, spec.d_model)]
    for h in range(spec.n_heads):
        layers.append(_layer(f"attn.h{h}.scores", "attention", kv, dh))
        layers.append(_layer(f"attn.h{h}.ctx", "attention", dh, kv))
    layers.append(_layer("attn.out", "linear", spec.d_model, spec.d_model))
    layers.append(_layer("ffn.fc1", "linear", spec.d_ff, spec.d_model))
    layers.append(_layer("ffn.fc2", "linear", spec.d_model, spec.d_ff))
    return ModelGraph(
        name=name,
        batch=spec.batch,
        input_desc=f"{spec.seq_len}x{spec.d_model} (kv={kv})",
        layers=tuple(layers),
    )


# ----------------------------------------------------------------------
# Runnable ops.  The sequential engine threads ONE activation tensor
# through the op list, so multi-head attention is expressed by carrying
# intermediate results as extra columns: each head's scores op appends
# its score block, softmax renormalizes those trailing columns, and the
# context op swaps them for the head's output columns.  By the time
# ``attn.out`` runs, the activation's trailing d_model columns are the
# concatenated head contexts.
# ----------------------------------------------------------------------


class _HeadScores(_Op):
    """Per-head attention scores ``Q_h @ (K_h^T / sqrt(d_h))``.

    The scaled, transposed key cache is the fixed weight-side operand;
    the query slice is carved out of the activation's leading ``qkv``
    columns.  The score block is appended to the activation.
    """

    is_linear = True

    def __init__(self, head: int, head_dim: int, b: np.ndarray, *, name: str) -> None:
        self.head = head
        self.head_dim = head_dim
        self.name = name
        self.weights = b.astype(np.float16)  # (head_dim, kv)

    def lower(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lo = self.head * self.head_dim
        q = x[:, lo : lo + self.head_dim]
        return np.ascontiguousarray(q, dtype=np.float16), self.weights, x

    def reshape_output(self, c: np.ndarray, ctx: np.ndarray) -> np.ndarray:
        return np.concatenate([ctx, c], axis=1)


class _SoftmaxTail(_Op):
    """Row softmax over the activation's trailing ``n`` columns (FP32)."""

    def __init__(self, n: int) -> None:
        self.n = n

    def forward(self, x: np.ndarray) -> np.ndarray:
        tail = x[:, -self.n :].astype(np.float32)
        tail -= tail.max(axis=1, keepdims=True)
        np.exp(tail, out=tail)
        tail /= tail.sum(axis=1, keepdims=True)
        return np.concatenate([x[:, : -self.n], tail.astype(np.float16)], axis=1)


class _HeadContext(_Op):
    """Per-head context ``softmax(scores) @ V_h``.

    Consumes the activation's trailing ``kv`` columns (the attention
    probabilities) and replaces them with the head's ``d_h`` output
    columns; everything before them is carried through untouched.
    """

    is_linear = True

    def __init__(self, kv: int, v: np.ndarray, *, name: str) -> None:
        self.kv = kv
        self.name = name
        self.weights = v.astype(np.float16)  # (kv, head_dim)

    def lower(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        probs = x[:, -self.kv :]
        carried = x[:, : -self.kv]
        return np.ascontiguousarray(probs, dtype=np.float16), self.weights, carried

    def reshape_output(self, c: np.ndarray, ctx: np.ndarray) -> np.ndarray:
        return np.concatenate([ctx, c], axis=1)


class _TailLinear(_Op):
    """Linear layer over the activation's trailing ``in_features`` columns.

    Used for the attention output projection: its input is the
    concatenated head contexts at the activation's tail, and its output
    *replaces* the whole activation (dropping the carried ``qkv``
    columns), returning the stream to a plain ``(rows, d_model)`` shape.
    """

    is_linear = True

    def __init__(self, spec: LinearSpec, weights: np.ndarray, *, name: str) -> None:
        if weights.shape != (spec.in_features, spec.out_features):
            raise ShapeError(
                f"{name}: weights must be "
                f"{(spec.in_features, spec.out_features)}, got {weights.shape}"
            )
        self.spec = spec
        self.name = name
        self.weights = weights.astype(np.float16)

    def lower(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, None]:
        tail = x[:, -self.spec.in_features :]
        return np.ascontiguousarray(tail, dtype=np.float16), self.weights, None

    def reshape_output(self, c: np.ndarray, ctx: None) -> np.ndarray:
        return c


class _GELU(_Op):
    """Tanh-approximation GELU, computed in FP32, emitted in FP16."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x32 = x.astype(np.float32)
        inner = np.sqrt(2.0 / np.pi) * (x32 + 0.044715 * x32**3)
        return (0.5 * x32 * (1.0 + np.tanh(inner))).astype(np.float16)


def build_transformer_runnable(
    name: str,
    *,
    batch: int | None = None,
    seed: int = 0,
    spec: TransformerBlockSpec | None = None,
) -> SequentialModel:
    """A runnable numeric realization of a transformer-block preset.

    Linear-layer names match :func:`build_transformer_graph` exactly
    (same ``name``/``batch``), so the model drops straight into
    ``repro.deploy(name, runnable=...)``.  Weights and the frozen
    key/value cache are drawn from ``seed``.

    >>> model = build_transformer_runnable("transformer_decoder")
    >>> graph = build_transformer_graph("transformer_decoder")
    >>> model.linear_names == [layer.name for layer in graph]
    True
    """
    if spec is None:
        spec = _spec_for(name, batch)
    elif batch is not None:
        spec = replace(spec, batch=batch)
    key = name.lower()
    rng = np.random.default_rng([seed, *key.encode()])
    d, dh, kv = spec.d_model, spec.head_dim, spec.kv
    scale = 1.0 / np.sqrt(d)

    qkv_spec = LinearSpec(in_features=d, out_features=3 * d)
    ops: list[_Op] = [
        Linear(
            qkv_spec,
            SequentialModel.random_weights_linear(qkv_spec, rng),
            name="qkv",
        )
    ]
    # Frozen decode-style KV cache, shared across the batch: the fixed
    # weight-side operands of every per-head GEMM.
    k_cache = (rng.standard_normal((kv, d)) * scale).astype(np.float16)
    v_cache = (rng.standard_normal((kv, d)) * scale).astype(np.float16)
    for h in range(spec.n_heads):
        k_h = k_cache[:, h * dh : (h + 1) * dh].astype(np.float32)
        b_scores = (k_h.T / np.sqrt(dh)).astype(np.float16)
        ops.append(
            _HeadScores(h, dh, b_scores, name=f"attn.h{h}.scores")
        )
        ops.append(_SoftmaxTail(kv))
        ops.append(
            _HeadContext(
                kv, v_cache[:, h * dh : (h + 1) * dh], name=f"attn.h{h}.ctx"
            )
        )
    out_spec = LinearSpec(in_features=d, out_features=d)
    ops.append(
        _TailLinear(
            out_spec,
            SequentialModel.random_weights_linear(out_spec, rng),
            name="attn.out",
        )
    )
    fc1_spec = LinearSpec(in_features=d, out_features=spec.d_ff)
    ops.append(
        Linear(
            fc1_spec,
            SequentialModel.random_weights_linear(fc1_spec, rng),
            name="ffn.fc1",
        )
    )
    ops.append(_GELU())
    fc2_spec = LinearSpec(in_features=spec.d_ff, out_features=d)
    ops.append(
        Linear(
            fc2_spec,
            SequentialModel.random_weights_linear(fc2_spec, rng),
            name="ffn.fc2",
        )
    )
    return SequentialModel(ops, name=key)


def transformer_input_shape(
    name: str, *, batch: int | None = None, spec: TransformerBlockSpec | None = None
) -> tuple[int, int]:
    """The ``(rows, d_model)`` input the runnable block expects.

    >>> transformer_input_shape("transformer_decoder")
    (8, 128)
    """
    if spec is None:
        spec = _spec_for(name, batch)
    elif batch is not None:
        spec = replace(spec, batch=batch)
    return (spec.rows, spec.d_model)
