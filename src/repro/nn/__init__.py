"""Neural-network layer shapes, the model zoo, and protected inference.

The evaluation pipeline consumes each model as an ordered list of
*linear layers* (convolutions and fully-connected layers) expressed as
GEMMs — exactly the view the paper takes (§2.1).  ``models`` re-derives
those GEMM shapes from the architectures by shape propagation;
``inference`` runs small models numerically under ABFT protection.
"""

from .layers import Conv2dSpec, LinearSpec, pool_output_shape
from .graph import LinearLayer, ModelGraph
from .inference import ProtectedInference, SequentialModel
from .transformer import (
    TransformerBlockSpec,
    build_transformer_graph,
    build_transformer_runnable,
    transformer_models,
)
from .models import (
    build_model,
    build_runnable,
    list_models,
    runnable_input_shape,
    runnable_models,
)

__all__ = [
    "Conv2dSpec",
    "LinearSpec",
    "pool_output_shape",
    "LinearLayer",
    "ModelGraph",
    "ProtectedInference",
    "SequentialModel",
    "TransformerBlockSpec",
    "build_transformer_graph",
    "build_transformer_runnable",
    "transformer_models",
    "build_model",
    "list_models",
    "build_runnable",
    "runnable_input_shape",
    "runnable_models",
]
