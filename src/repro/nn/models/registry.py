"""Model registry: uniform construction of all evaluation NNs.

``build_model(name, batch=..., h=..., w=...)`` dispatches to the
architecture modules.  CNN defaults follow the paper (HD 1080x1920,
batch 1); DLRM MLPs ignore the resolution; specialized CNNs have fixed
50x50 inputs and default to batch 64 (§6.2); the transformer-block
presets extend the zoo beyond the paper's fourteen networks.
"""

from __future__ import annotations

from typing import Callable

from ...errors import ModelZooError
from ..graph import ModelGraph
from ..transformer import TRANSFORMER_PRESETS, build_transformer_graph
from . import noscope
from .alexnet import alexnet
from .densenet import densenet161
from .dlrm import mlp_bottom, mlp_top
from .resnet import resnet50, resnext50_32x4d, wide_resnet50_2
from .shufflenet import shufflenet_v2_x1_0
from .squeezenet import squeezenet1_0
from .vgg import vgg16

#: The eight general-purpose CNNs of Fig. 4 / Fig. 9, in the paper's order.
GENERAL_CNNS: tuple[str, ...] = (
    "squeezenet1_0",
    "shufflenet_v2_x1_0",
    "densenet161",
    "resnet50",
    "alexnet",
    "vgg16",
    "resnext50_32x4d",
    "wide_resnet50_2",
)

#: The two DLRM MLPs of Fig. 10.
DLRM_MLPS: tuple[str, ...] = ("mlp_bottom", "mlp_top")

#: The four specialized CNNs of Fig. 11.
SPECIALIZED_CNNS: tuple[str, ...] = ("coral", "roundabout", "taipei", "amsterdam")

#: The two transformer-block presets (beyond the paper's evaluation).
TRANSFORMERS: tuple[str, ...] = tuple(TRANSFORMER_PRESETS)

_CNN_BUILDERS: dict[str, Callable[..., ModelGraph]] = {
    "resnet50": resnet50,
    "wide_resnet50_2": wide_resnet50_2,
    "resnext50_32x4d": resnext50_32x4d,
    "vgg16": vgg16,
    "alexnet": alexnet,
    "squeezenet1_0": squeezenet1_0,
    "shufflenet_v2_x1_0": shufflenet_v2_x1_0,
    "densenet161": densenet161,
}


def list_models() -> list[str]:
    """All model names: the paper's fourteen (Fig. 8 order), then the
    transformer-block presets."""
    return (
        list(DLRM_MLPS)
        + list(SPECIALIZED_CNNS)
        + list(GENERAL_CNNS)
        + list(TRANSFORMERS)
    )


def build_model(
    name: str,
    *,
    batch: int | None = None,
    h: int = 1080,
    w: int = 1920,
) -> ModelGraph:
    """Build any evaluation model by name.

    Parameters
    ----------
    name:
        One of :func:`list_models`.
    batch:
        Batch size; defaults to 1 for CNNs/MLPs and 64 for the
        specialized CNNs (the paper's settings).
    h, w:
        Input resolution for the general-purpose CNNs (ignored by MLPs
        and the fixed-50x50 specialized CNNs).
    """
    key = name.lower()
    if key in _CNN_BUILDERS:
        return _CNN_BUILDERS[key](batch=batch if batch is not None else 1, h=h, w=w)
    if key == "mlp_bottom":
        return mlp_bottom(batch=batch if batch is not None else 1)
    if key == "mlp_top":
        return mlp_top(batch=batch if batch is not None else 1)
    if key in SPECIALIZED_CNNS:
        return noscope.build_noscope(
            key, batch=batch if batch is not None else noscope.DEFAULT_BATCH
        )
    if key in TRANSFORMERS:
        return build_transformer_graph(key, batch=batch)
    raise ModelZooError(f"unknown model {name!r}; known: {list_models()}")
