"""SqueezeNet 1.0 (torchvision).

A 7x7/2 stem, eight Fire modules (squeeze 1x1 + parallel expand 1x1 and
expand 3x3 branches, channel-concatenated) with ceil-mode 3x3/2 max
pools, and a final 1x1 classifier convolution to 1000 channels followed
by global average pooling.  No fully-connected layers.
"""

from __future__ import annotations

from ..graph import GraphBuilder, ModelGraph


def _fire(g: GraphBuilder, squeeze: int, expand1: int, expand3: int, *, name: str) -> None:
    """One Fire module; leaves channels = expand1 + expand3."""
    g.conv(squeeze, 1, name=f"{name}.squeeze")
    c_squeeze = g.channels
    g.conv(expand1, 1, name=f"{name}.expand1x1")
    # The 3x3 expand branch consumes the squeeze output too.
    g.conv(expand3, 3, padding=1, name=f"{name}.expand3x3", in_channels=c_squeeze)
    g.set_channels(expand1 + expand3)


def squeezenet1_0(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """SqueezeNet 1.0 lowered to its linear-layer GEMMs."""
    g = GraphBuilder("squeezenet1_0", batch=batch, channels=3, h=h, w=w)
    g.conv(96, 7, stride=2, name="features.0")
    g.pool(3, 2, ceil_mode=True)
    _fire(g, 16, 64, 64, name="fire2")
    _fire(g, 16, 64, 64, name="fire3")
    _fire(g, 32, 128, 128, name="fire4")
    g.pool(3, 2, ceil_mode=True)
    _fire(g, 32, 128, 128, name="fire5")
    _fire(g, 48, 192, 192, name="fire6")
    _fire(g, 48, 192, 192, name="fire7")
    _fire(g, 64, 256, 256, name="fire8")
    g.pool(3, 2, ceil_mode=True)
    _fire(g, 64, 256, 256, name="fire9")
    g.conv(1000, 1, name="classifier.1")
    return g.build(input_desc=f"3x{h}x{w}")
