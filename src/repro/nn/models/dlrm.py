"""The two MLPs of Facebook's DLRM recommendation model (paper §6.2).

* **MLP-Bottom** processes the 13 dense features of the Criteo-style
  input through hidden layers of 512, 256 and 64 nodes.
* **MLP-Top** processes the 512-dimensional interaction output through
  hidden layers of 512 and 256 nodes and produces one output value.

These input dimensions reproduce the paper's printed aggregate
intensities exactly: 7.4 / 7.7 at batch 1 and 92.0 / 175.8 at batch
2048 (with the §6.2 pad-to-8 accounting).
"""

from __future__ import annotations

from ..graph import GraphBuilder, ModelGraph

#: Criteo dense-feature count feeding MLP-Bottom.
MLP_BOTTOM_INPUT = 13
MLP_BOTTOM_HIDDEN = (512, 256, 64)

#: Interaction-feature width feeding MLP-Top.
MLP_TOP_INPUT = 512
MLP_TOP_HIDDEN = (512, 256)


def _mlp(name: str, input_dim: int, hidden: tuple[int, ...], out: int | None,
         *, batch: int) -> ModelGraph:
    g = GraphBuilder(name, batch=batch, channels=input_dim, h=1, w=1)
    for idx, width in enumerate(hidden):
        g.linear(width, name=f"fc{idx}")
    if out is not None:
        g.linear(out, name=f"fc{len(hidden)}")
    return g.build(input_desc=f"{input_dim} features")


def mlp_bottom(*, batch: int = 1) -> ModelGraph:
    """DLRM MLP-Bottom: 13 -> 512 -> 256 -> 64."""
    return _mlp("mlp_bottom", MLP_BOTTOM_INPUT, MLP_BOTTOM_HIDDEN, None, batch=batch)


def mlp_top(*, batch: int = 1) -> ModelGraph:
    """DLRM MLP-Top: 512 -> 512 -> 256 -> 1."""
    return _mlp("mlp_top", MLP_TOP_INPUT, MLP_TOP_HIDDEN, 1, batch=batch)
