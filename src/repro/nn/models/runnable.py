"""Numeric realizations of the sequential-expressible zoo models.

The shape-level zoo (:func:`~repro.nn.models.build_model`) covers all
fourteen evaluation networks, but end-to-end *numeric* studies — SDC
propagation campaigns, recovery verification — need a runnable
:class:`~repro.nn.SequentialModel` whose linear-layer names match the
graph's plan layers exactly.  The DLRM MLPs and the four NoScope-style
specialized CNNs are pure op chains, so this module builds them as
runnable models with deterministic He-initialized weights; the
general-purpose torchvision CNNs carry branches (residual adds,
concats) the sequential engine does not express and are excluded.

``build_runnable(name)`` mirrors ``build_model(name)`` layer for
layer: identical linear names, identical GEMM shapes (the conv→FC
transition flattens exactly like the graph's shape propagation), so
``repro.deploy(name, runnable=build_runnable(name))`` wires the
numeric model straight into the plan.  Weights are drawn from a seeded
generator, making every derived quantity — activations, clean GEMMs,
campaign outcomes — reproducible.

Note the batch default: the runnable specialized CNNs default to batch
1, not the shape-level evaluation batch 64 — a 64-frame im2col GEMM is
needlessly heavy for numeric fault studies.  Pass the same ``batch``
to :func:`build_runnable` and the graph build when wiring a session.
"""

from __future__ import annotations

import numpy as np

from ...errors import ModelZooError
from ..inference import (
    Conv2d,
    Conv2dSpec,
    Flatten,
    Linear,
    LinearSpec,
    MaxPool2d,
    ReLU,
    SequentialModel,
    _Op,
)
from ..layers import pool_output_shape
from ..transformer import (
    TRANSFORMER_PRESETS,
    build_transformer_runnable,
    transformer_input_shape,
)
from . import noscope
from .dlrm import (
    MLP_BOTTOM_HIDDEN,
    MLP_BOTTOM_INPUT,
    MLP_TOP_HIDDEN,
    MLP_TOP_INPUT,
)

#: Default batch for runnable models (numeric studies, not throughput).
DEFAULT_BATCH = 1


def runnable_models() -> list[str]:
    """Zoo models with a numeric sequential realization, in zoo order."""
    return (
        ["mlp_bottom", "mlp_top"]
        + [cfg.name for cfg in noscope.CONFIGS]
        + list(TRANSFORMER_PRESETS)
    )


def runnable_input_shape(
    name: str, *, batch: int | None = None
) -> tuple[int, ...]:
    """The input-activation shape ``build_runnable(name)`` expects."""
    b = DEFAULT_BATCH if batch is None else batch
    key = name.lower()
    if key == "mlp_bottom":
        return (b, MLP_BOTTOM_INPUT)
    if key == "mlp_top":
        return (b, MLP_TOP_INPUT)
    if key in {cfg.name for cfg in noscope.CONFIGS}:
        return (b, 3, noscope.INPUT_HW, noscope.INPUT_HW)
    if key in TRANSFORMER_PRESETS:
        return transformer_input_shape(key, batch=batch)
    raise ModelZooError(
        f"no runnable realization for model {name!r}; runnable models "
        f"are {runnable_models()}"
    )


def _runnable_mlp(
    name: str,
    input_dim: int,
    hidden: tuple[int, ...],
    out: int | None,
    rng: np.random.Generator,
) -> SequentialModel:
    """Linear chain with ReLU between layers (none after the last)."""
    widths = list(hidden) + ([out] if out is not None else [])
    ops: list[_Op] = []
    fin = input_dim
    for idx, width in enumerate(widths):
        spec = LinearSpec(in_features=fin, out_features=width)
        ops.append(
            Linear(
                spec,
                SequentialModel.random_weights_linear(spec, rng),
                name=f"fc{idx}",
            )
        )
        if idx < len(widths) - 1:
            ops.append(ReLU())
        fin = width
    return SequentialModel(ops, name=name)


def _runnable_noscope(
    cfg: "noscope.NoScopeConfig", batch: int, rng: np.random.Generator
) -> SequentialModel:
    """Conv/pool trunk + FC head mirroring :func:`noscope.build_noscope`."""
    ops: list[_Op] = []
    channels, h, w = 3, noscope.INPUT_HW, noscope.INPUT_HW
    for idx, out_channels in enumerate(cfg.conv_channels):
        spec = Conv2dSpec(
            in_channels=channels, out_channels=out_channels, kernel=3, padding=1
        )
        ops.append(
            Conv2d(
                spec,
                SequentialModel.random_weights_conv(spec, rng),
                name=f"conv{idx}",
            )
        )
        ops.append(ReLU())
        channels = out_channels
        if idx in cfg.pool_after:
            ops.append(MaxPool2d(2, 2))
            h, w = pool_output_shape(h, w, kernel=2, stride=2)
    ops.append(Flatten())
    fin = channels * h * w
    if cfg.fc_hidden is not None:
        spec = LinearSpec(in_features=fin, out_features=cfg.fc_hidden)
        ops.append(
            Linear(
                spec,
                SequentialModel.random_weights_linear(spec, rng),
                name="fc0",
            )
        )
        ops.append(ReLU())
        fin = cfg.fc_hidden
    spec = LinearSpec(in_features=fin, out_features=2)
    ops.append(
        Linear(
            spec,
            SequentialModel.random_weights_linear(spec, rng),
            name="fc_out",
        )
    )
    return SequentialModel(ops, name=cfg.name)


def build_runnable(
    name: str, *, batch: int | None = None, seed: int = 0
) -> SequentialModel:
    """A runnable numeric realization of the named zoo model.

    Linear-layer names match ``build_model(name)`` exactly, so the
    result drops into ``repro.deploy(name, runnable=...)`` (build the
    graph with the same ``batch``).  Weights are He-initialized from
    ``seed``; the model itself is batch-agnostic (``batch`` only
    matters for :func:`runnable_input_shape` and the paired graph).
    """
    key = name.lower()
    # Per-model entropy folded in bytewise (str hash() is salted per
    # process and would break cross-run determinism).
    rng = np.random.default_rng([seed, *key.encode()])
    if key == "mlp_bottom":
        return _runnable_mlp(
            key, MLP_BOTTOM_INPUT, MLP_BOTTOM_HIDDEN, None, rng
        )
    if key == "mlp_top":
        return _runnable_mlp(key, MLP_TOP_INPUT, MLP_TOP_HIDDEN, 1, rng)
    for cfg in noscope.CONFIGS:
        if cfg.name == key:
            return _runnable_noscope(
                cfg, DEFAULT_BATCH if batch is None else batch, rng
            )
    if key in TRANSFORMER_PRESETS:
        return build_transformer_runnable(key, batch=batch, seed=seed)
    raise ModelZooError(
        f"no runnable realization for model {name!r}; runnable models "
        f"are {runnable_models()}"
    )
