"""ShuffleNet V2 x1.0 (torchvision), with non-grouped substitution.

A 3x3/2 stem to 24 channels and 3x3/2 max pool, three stages of
ShuffleNet V2 units (4, 8, 4 units; output channels 116/232/464), a
final 1x1 convolution to 1024 channels, and a 1024 -> 1000 classifier.

Each stride-1 unit splits channels in half and runs one branch through
1x1 -> 3x3-depthwise -> 1x1; each stage-opening stride-2 unit runs both
branches.  Per the paper's footnote 3, grouped/depthwise convolutions
are replaced with non-grouped ones ("the reported aggregate arithmetic
intensities of these NNs are, thus, higher than they would be with
grouped convolutions") — so the 3x3 depthwise convs here are dense.
"""

from __future__ import annotations

from ..graph import GraphBuilder, ModelGraph

_STAGES = ((4, 116), (8, 232), (4, 464))


def shufflenet_v2_x1_0(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """ShuffleNet V2 1.0x lowered to its (non-grouped) GEMMs."""
    g = GraphBuilder("shufflenet_v2_x1_0", batch=batch, channels=3, h=h, w=w)
    g.conv(24, 3, stride=2, padding=1, name="conv1")
    g.pool(3, 2, padding=1)

    for stage_idx, (units, c_out) in enumerate(_STAGES, start=2):
        branch = c_out // 2
        for unit_idx in range(units):
            name = f"stage{stage_idx}.{unit_idx}"
            if unit_idx == 0:
                # Stride-2 unit: both branches run, spatial halves.
                c_in = g.channels
                h_in, w_in = g.h, g.w
                # Branch 1: 3x3 (dw->dense) stride 2 on full input, then 1x1.
                g.conv(c_in, 3, stride=2, padding=1, name=f"{name}.branch1.dw")
                g.conv(branch, 1, name=f"{name}.branch1.pw")
                h_out, w_out = g.h, g.w
                # Branch 2: 1x1, 3x3 (dw->dense) stride 2, 1x1.
                g.h, g.w, g.channels = h_in, w_in, c_in
                g.conv(branch, 1, name=f"{name}.branch2.pw1")
                g.conv(branch, 3, stride=2, padding=1, name=f"{name}.branch2.dw")
                g.conv(branch, 1, name=f"{name}.branch2.pw2")
                g.h, g.w = h_out, w_out
                g.set_channels(c_out)
            else:
                # Stride-1 unit: half the channels pass through untouched.
                g.set_channels(branch)
                g.conv(branch, 1, name=f"{name}.branch2.pw1")
                g.conv(branch, 3, padding=1, name=f"{name}.branch2.dw")
                g.conv(branch, 1, name=f"{name}.branch2.pw2")
                g.set_channels(c_out)

    g.conv(1024, 1, name="conv5")
    g.adaptive_pool(1, 1)
    g.linear(1000, name="fc")
    return g.build(input_desc=f"3x{h}x{w}")
