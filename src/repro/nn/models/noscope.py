"""NoScope-style specialized CNNs (paper §6.2 "Specialized CNNs").

The paper evaluates four specialized CNNs from the NoScope video
analytics system — Coral, Roundabout, Taipei, Amsterdam — described as
having "2-4 convolutional layers, each with 16-64 channels, at most two
fully-connected layers", operating on 50x50-pixel regions of video
frames at batch size 64, performing binary classification.

NoScope's per-video architectures come from a per-query search and are
not published layer-by-layer, so this module instantiates concrete
architectures inside the paper's described envelope, with channel
counts chosen so each model's aggregate arithmetic intensity matches
the value the paper prints under each bar of Figs. 8/11
(15.1 / 37.9 / 51.9 / 52.7).  This is the documented substitution of
DESIGN.md §6.

All convolutions are 3x3 with unit stride and 'same' padding; 2x2/2 max
pools follow each conv pair, mirroring the NoScope search space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import GraphBuilder, ModelGraph

#: Input region size (pixels) and evaluation batch size (paper §6.2).
INPUT_HW = 50
DEFAULT_BATCH = 64


@dataclass(frozen=True)
class NoScopeConfig:
    """One specialized CNN: conv widths, pool placement, FC widths."""

    name: str
    conv_channels: tuple[int, ...]
    pool_after: tuple[int, ...]  # conv indices followed by a 2x2/2 max pool
    fc_hidden: int | None
    paper_intensity: float  # aggregate AI printed in the paper's figures


CONFIGS: tuple[NoScopeConfig, ...] = (
    NoScopeConfig(
        name="coral",
        conv_channels=(16, 24, 16, 16),
        pool_after=(0, 1, 2, 3),
        fc_hidden=64,
        paper_intensity=15.1,
    ),
    NoScopeConfig(
        name="roundabout",
        conv_channels=(64, 48, 64, 48),
        pool_after=(0, 1, 2, 3),
        fc_hidden=64,
        paper_intensity=37.9,
    ),
    NoScopeConfig(
        name="taipei",
        conv_channels=(64, 64, 64, 64),
        pool_after=(0, 2, 3),
        fc_hidden=64,
        paper_intensity=51.9,
    ),
    NoScopeConfig(
        name="amsterdam",
        conv_channels=(64, 64, 56, 64),
        pool_after=(1, 2, 3),
        fc_hidden=64,
        paper_intensity=52.7,
    ),
)

_BY_NAME = {cfg.name: cfg for cfg in CONFIGS}


def build_noscope(name: str, *, batch: int = DEFAULT_BATCH) -> ModelGraph:
    """Build one specialized CNN by name (coral/roundabout/taipei/amsterdam)."""
    from ...errors import ModelZooError

    try:
        cfg = _BY_NAME[name.lower()]
    except KeyError:
        raise ModelZooError(
            f"unknown specialized CNN {name!r}; known: {sorted(_BY_NAME)}"
        ) from None

    g = GraphBuilder(cfg.name, batch=batch, channels=3, h=INPUT_HW, w=INPUT_HW)
    for idx, channels in enumerate(cfg.conv_channels):
        g.conv(channels, 3, padding=1, name=f"conv{idx}")
        if idx in cfg.pool_after:
            g.pool(2, 2)
    if cfg.fc_hidden is not None:
        g.linear(cfg.fc_hidden, name="fc0")
    g.linear(2, name="fc_out")  # binary classification
    return g.build(input_desc=f"3x{INPUT_HW}x{INPUT_HW}")


def coral(*, batch: int = DEFAULT_BATCH) -> ModelGraph:
    """The Coral specialized CNN."""
    return build_noscope("coral", batch=batch)


def roundabout(*, batch: int = DEFAULT_BATCH) -> ModelGraph:
    """The Roundabout specialized CNN."""
    return build_noscope("roundabout", batch=batch)


def taipei(*, batch: int = DEFAULT_BATCH) -> ModelGraph:
    """The Taipei specialized CNN."""
    return build_noscope("taipei", batch=batch)


def amsterdam(*, batch: int = DEFAULT_BATCH) -> ModelGraph:
    """The Amsterdam specialized CNN."""
    return build_noscope("amsterdam", batch=batch)
