"""ResNet-family architectures: ResNet-50, Wide-ResNet-50-2, ResNeXt-50.

Layer structure follows torchvision's Bottleneck ResNet v1: a 7x7/2 stem
convolution, 3x3/2 max pool, four stages of bottleneck blocks
(3, 4, 6, 3 blocks) with the stride-2 placed on each stage's first
block's 3x3 convolution, and a final 1000-way fully-connected layer.

* **ResNet-50**: bottleneck widths 64/128/256/512.
* **Wide-ResNet-50-2**: bottleneck widths doubled (128/256/512/1024),
  same stage output channels.
* **ResNeXt-50 (32x4d)**: bottleneck widths 128/256/512/1024 with
  32-way grouped 3x3 convolutions — which the paper (footnote 3)
  replaces with non-grouped convolutions, making its GEMM shapes
  identical to Wide-ResNet-50-2's.  That is why Fig. 4/8 report the
  same aggregate intensity (220.8) for both.
"""

from __future__ import annotations

from ..graph import GraphBuilder, ModelGraph

#: (blocks per stage, stage output channels) shared by the family.
_STAGES = ((3, 256), (4, 512), (6, 1024), (3, 2048))


def _build_resnet(
    name: str,
    *,
    widths: tuple[int, int, int, int],
    batch: int,
    h: int,
    w: int,
    num_classes: int = 1000,
) -> ModelGraph:
    g = GraphBuilder(name, batch=batch, channels=3, h=h, w=w)
    g.conv(64, 7, stride=2, padding=3, name="conv1")
    g.pool(3, 2, padding=1)

    for stage_idx, ((blocks, c_out), width) in enumerate(zip(_STAGES, widths), start=1):
        for block_idx in range(blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 1) else 1
            prefix = f"layer{stage_idx}.{block_idx}"
            c_in = g.channels
            h_in, w_in = g.h, g.w
            # conv1 1x1 reduce (spatial unchanged).
            g.conv(width, 1, name=f"{prefix}.conv1")
            # conv2 3x3 (carries the stage's stride).
            g.conv(width, 3, stride=stride, padding=1, name=f"{prefix}.conv2")
            # conv3 1x1 expand.
            g.conv(c_out, 1, name=f"{prefix}.conv3")
            # Projection shortcut on the first block of each stage.
            if block_idx == 0:
                h_save, w_save, c_save = g.h, g.w, g.channels
                g.h, g.w, g.channels = h_in, w_in, c_in
                g.conv(c_out, 1, stride=stride, name=f"{prefix}.downsample")
                g.h, g.w, g.channels = h_save, w_save, c_save

    g.adaptive_pool(1, 1)
    g.linear(num_classes, name="fc")
    return g.build(input_desc=f"3x{h}x{w}")


def resnet50(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """ResNet-50 lowered to its linear-layer GEMMs."""
    return _build_resnet("resnet50", widths=(64, 128, 256, 512), batch=batch, h=h, w=w)


def wide_resnet50_2(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """Wide-ResNet-50-2 (doubled bottleneck widths)."""
    return _build_resnet(
        "wide_resnet50_2", widths=(128, 256, 512, 1024), batch=batch, h=h, w=w
    )


def resnext50_32x4d(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """ResNeXt-50 with grouped convs replaced by non-grouped (paper fn. 3)."""
    return _build_resnet(
        "resnext50_32x4d", widths=(128, 256, 512, 1024), batch=batch, h=h, w=w
    )
