"""AlexNet (torchvision variant).

Five convolutions with 3x3/2 max pools after conv1, conv2 and conv5,
an adaptive 6x6 average pool, and three fully-connected layers
(9216 -> 4096 -> 4096 -> 1000).
"""

from __future__ import annotations

from ..graph import GraphBuilder, ModelGraph


def alexnet(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """AlexNet lowered to its linear-layer GEMMs."""
    g = GraphBuilder("alexnet", batch=batch, channels=3, h=h, w=w)
    g.conv(64, 11, stride=4, padding=2, name="features.0")
    g.pool(3, 2)
    g.conv(192, 5, padding=2, name="features.3")
    g.pool(3, 2)
    g.conv(384, 3, padding=1, name="features.6")
    g.conv(256, 3, padding=1, name="features.8")
    g.conv(256, 3, padding=1, name="features.10")
    g.pool(3, 2)
    g.adaptive_pool(6, 6)
    g.linear(4096, name="classifier.1")
    g.linear(4096, name="classifier.4")
    g.linear(1000, name="classifier.6")
    return g.build(input_desc=f"3x{h}x{w}")
