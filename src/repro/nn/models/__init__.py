"""Model zoo: the fourteen networks of the paper's evaluation.

Eight torchvision CNNs (§6.2 "General-purpose CNNs"), the two DLRM
MLPs ("Recommendation models"), and four NoScope-style specialized CNNs
("Specialized CNNs").  All are re-derived by shape propagation; see each
module for the architecture provenance.
"""

from .registry import build_model, list_models
from .runnable import build_runnable, runnable_input_shape, runnable_models

__all__ = [
    "build_model",
    "list_models",
    "build_runnable",
    "runnable_input_shape",
    "runnable_models",
]
