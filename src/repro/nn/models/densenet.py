"""DenseNet-161 (torchvision).

A 7x7/2 stem to 96 channels, 3x3/2 max pool, four dense blocks of
(6, 12, 36, 24) layers with growth rate 48 and bottleneck size 4 —
each dense layer is a 1x1 convolution to ``4*growth`` channels followed
by a 3x3 convolution to ``growth`` channels, its output concatenated
onto the block's running feature map — with 1x1 + 2x2/2-avg-pool
transitions halving channels between blocks, and a final 2208 -> 1000
fully-connected classifier.
"""

from __future__ import annotations

from ..graph import GraphBuilder, ModelGraph

_GROWTH = 48
_BN_SIZE = 4
_BLOCK_CONFIG = (6, 12, 36, 24)
_INIT_FEATURES = 96


def densenet161(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """DenseNet-161 lowered to its linear-layer GEMMs."""
    g = GraphBuilder("densenet161", batch=batch, channels=3, h=h, w=w)
    g.conv(_INIT_FEATURES, 7, stride=2, padding=3, name="features.conv0")
    g.pool(3, 2, padding=1)

    channels = _INIT_FEATURES
    for block_idx, num_layers in enumerate(_BLOCK_CONFIG, start=1):
        for layer_idx in range(1, num_layers + 1):
            name = f"denseblock{block_idx}.denselayer{layer_idx}"
            g.set_channels(channels)
            g.conv(_BN_SIZE * _GROWTH, 1, name=f"{name}.conv1")
            g.conv(_GROWTH, 3, padding=1, name=f"{name}.conv2")
            channels += _GROWTH
        g.set_channels(channels)
        if block_idx < len(_BLOCK_CONFIG):
            channels //= 2
            g.conv(channels, 1, name=f"transition{block_idx}.conv")
            g.pool(2, 2)

    g.adaptive_pool(1, 1)
    g.set_channels(channels)
    g.linear(1000, name="classifier")
    return g.build(input_desc=f"3x{h}x{w}")
