"""VGG-16 (torchvision configuration "D").

Thirteen 3x3 convolutions in five blocks separated by 2x2/2 max pools,
then an adaptive 7x7 average pool feeding three fully-connected layers
(25088 -> 4096 -> 4096 -> 1000).
"""

from __future__ import annotations

from ..graph import GraphBuilder, ModelGraph

_CFG_D: tuple[object, ...] = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)


def vgg16(*, batch: int = 1, h: int = 1080, w: int = 1920) -> ModelGraph:
    """VGG-16 lowered to its linear-layer GEMMs."""
    g = GraphBuilder("vgg16", batch=batch, channels=3, h=h, w=w)
    conv_idx = 0
    for item in _CFG_D:
        if item == "M":
            g.pool(2, 2)
        else:
            g.conv(int(item), 3, padding=1, name=f"features.conv{conv_idx}")
            conv_idx += 1
    g.adaptive_pool(7, 7)
    g.linear(4096, name="classifier.0")
    g.linear(4096, name="classifier.3")
    g.linear(1000, name="classifier.6")
    return g.build(input_desc=f"3x{h}x{w}")
