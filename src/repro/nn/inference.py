"""Numeric protected inference for small sequential models.

Runs a model layer by layer, executing every linear layer through an
ABFT scheme (per-layer assignable, as intensity-guided ABFT requires),
with optional fault injection into chosen layers.  Nonlinear operations
(activations, pools) are executed directly — the paper replicates them,
which is cheap and out of scope for the GEMM-focused overhead study.

This engine is used by the examples and the fault-injection tests; the
shape-only benchmarks never execute numerics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..abft.base import ExecutionOutcome, PreparedCache, PreparedWeights, Scheme
from ..abft.none import NoProtection
from ..config import DetectionConstants
from ..gemm.tiles import TileConfig
from ..errors import ModelZooError, ShapeError
from ..faults.model import FaultSpec
from ..faults.recovery import RecoveryPolicy, attempt_recovery
from ..gemm.im2col import conv_weights_to_gemm, im2col
from .layers import Conv2dSpec, LinearSpec, pool_output_shape


class _Op:
    """Base class for runnable ops (internal)."""

    is_linear = False

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError


class ReLU(_Op):
    """Rectified linear activation, applied in FP16."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, np.float16(0.0)).astype(np.float16)


class Flatten(_Op):
    """Flatten NCHW activations to (batch, features)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"Flatten expects NCHW input, got {x.ndim}-D")
        return x.reshape(x.shape[0], -1)


class MaxPool2d(_Op):
    """Max pooling with floor semantics."""

    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"MaxPool2d expects NCHW input, got {x.ndim}-D")
        b, c, h, w = x.shape
        ho, wo = pool_output_shape(h, w, kernel=self.kernel, stride=self.stride)
        sb, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(b, c, ho, wo, self.kernel, self.kernel),
            strides=(sb, sc, sh * self.stride, sw * self.stride, sh, sw),
            writeable=False,
        )
        return windows.max(axis=(4, 5)).astype(np.float16)


class GlobalAvgPool(_Op):
    """Adaptive average pool to 1x1 (keeps NCHW rank)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"GlobalAvgPool expects NCHW input, got {x.ndim}-D")
        return x.mean(axis=(2, 3), keepdims=True, dtype=np.float32).astype(np.float16)


class Conv2d(_Op):
    """Convolution executed as an im2col GEMM through an ABFT scheme."""

    is_linear = True

    def __init__(self, spec: Conv2dSpec, weights: np.ndarray, *, name: str = "conv") -> None:
        if spec.groups != 1:
            raise ModelZooError(
                f"{name}: numeric inference supports non-grouped convs only "
                f"(the paper's substitution, footnote 3)"
            )
        expected = (spec.out_channels, spec.in_channels, spec.kernel, spec.kernel)
        if weights.shape != expected:
            raise ShapeError(f"{name}: weights must be {expected}, got {weights.shape}")
        self.spec = spec
        self.name = name
        self.weights = weights.astype(np.float16)
        self.b_matrix = conv_weights_to_gemm(self.weights)

    def lower(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, tuple[int, int, int]]:
        """im2col the input; returns (A, B, (batch, Ho, Wo))."""
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expects NCHW input, got {x.ndim}-D")
        ho, wo = self.spec.output_hw(x.shape[2], x.shape[3])
        a = im2col(
            x,
            kernel=(self.spec.kernel, self.spec.kernel),
            stride=(self.spec.stride, self.spec.stride),
            padding=(self.spec.padding, self.spec.padding),
        )
        return a.astype(np.float16), self.b_matrix, (x.shape[0], ho, wo)

    def reshape_output(self, c: np.ndarray, dims: tuple[int, int, int]) -> np.ndarray:
        """GEMM output rows back to NCHW."""
        batch, ho, wo = dims
        return c.reshape(batch, ho, wo, self.spec.out_channels).transpose(0, 3, 1, 2)


class Linear(_Op):
    """Fully-connected layer executed as a GEMM through an ABFT scheme."""

    is_linear = True

    def __init__(self, spec: LinearSpec, weights: np.ndarray, *, name: str = "linear") -> None:
        expected = (spec.in_features, spec.out_features)
        if weights.shape != expected:
            raise ShapeError(f"{name}: weights must be {expected}, got {weights.shape}")
        self.spec = spec
        self.name = name
        self.weights = weights.astype(np.float16)

    def lower(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, None]:
        """The GEMM view of this layer: ``(activations, weights, None)``.

        Every linear op exposes the same ``lower``/``reshape_output``
        pair so the inference and replay loops dispatch uniformly; a
        plain FC layer has no reshape context.
        """
        return x.astype(np.float16), self.weights, None

    def reshape_output(self, c: np.ndarray, ctx: None) -> np.ndarray:
        """GEMM output is already the layer output."""
        return c


@dataclass
class LayerOutcome:
    """Per-linear-layer record of one protected inference.

    ``retries``/``recovered``/``degraded`` describe what the pass's
    :class:`~repro.faults.RecoveryPolicy` (if any) did about a
    detection on this layer: how many re-executions ran, whether one
    came back clean (``outcome`` is then that clean retry, bit-identical
    to a fault-free execution), or whether the budget was exhausted and
    the detected output was propagated anyway.
    """

    name: str
    scheme: str
    outcome: ExecutionOutcome
    retries: int = 0
    recovered: bool = False
    degraded: bool = False

    @property
    def detected(self) -> bool:
        return self.outcome.detected


@dataclass
class InferenceResult:
    """Output of one protected forward pass."""

    output: np.ndarray
    layer_outcomes: list[LayerOutcome] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """True if any layer's ABFT check fired."""
        return any(rec.detected for rec in self.layer_outcomes)

    @property
    def recovered(self) -> bool:
        """True if any layer's detection was retried back to clean."""
        return any(rec.recovered for rec in self.layer_outcomes)

    @property
    def degraded(self) -> bool:
        """True if any layer exhausted its retry budget and propagated."""
        return any(rec.degraded for rec in self.layer_outcomes)

    @property
    def total_retries(self) -> int:
        """Recovery re-executions summed over all layers."""
        return sum(rec.retries for rec in self.layer_outcomes)


@dataclass(frozen=True)
class TraceStep:
    """One linear layer of a traced clean pass.

    Attributes
    ----------
    name, op_index:
        The layer's name and its position in the model's op list.
    a, b:
        The lowered GEMM operands (im2col'd activations for convs).
    tile:
        The tile configuration the layer's prepared state is pinned to.
    dims:
        The op's ``lower`` reshape context — conv dims ``(batch, Ho,
        Wo)``, an attention op's carried columns — fed back to its
        ``reshape_output``; None for plain Linear layers.
    outcome:
        The clean protected execution outcome.
    """

    name: str
    op_index: int
    a: np.ndarray
    b: np.ndarray
    tile: TileConfig
    dims: object | None
    outcome: ExecutionOutcome


@dataclass(frozen=True)
class InferenceTrace:
    """A clean forward pass with per-linear-layer GEMM state captured.

    Produced by :meth:`ProtectedInference.trace`; consumed by
    :class:`~repro.faults.PropagationCampaign`, which replays corrupted
    activations through the traced downstream layers.
    """

    x: np.ndarray
    output: np.ndarray
    result: InferenceResult
    steps: tuple[TraceStep, ...]

    def step(self, name: str) -> TraceStep:
        """The traced step of the named linear layer."""
        for step in self.steps:
            if step.name == name:
                return step
        raise ModelZooError(
            f"trace has no linear layer {name!r}; traced layers are "
            f"{[s.name for s in self.steps]}"
        )


class SequentialModel:
    """An ordered list of runnable ops with named linear layers."""

    def __init__(self, ops: Sequence[_Op], *, name: str = "model") -> None:
        if not ops:
            raise ModelZooError("SequentialModel needs at least one op")
        self.name = name
        self.ops = list(ops)

    @property
    def linear_names(self) -> list[str]:
        """Names of the linear (GEMM-backed) layers, in order."""
        return [op.name for op in self.ops if op.is_linear]  # type: ignore[attr-defined]

    @staticmethod
    def random_weights_conv(
        spec: Conv2dSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """He-style FP16 initialization for a conv layer."""
        fan_in = spec.in_channels * spec.kernel * spec.kernel
        scale = float(np.sqrt(2.0 / fan_in))
        shape = (spec.out_channels, spec.in_channels, spec.kernel, spec.kernel)
        return (rng.standard_normal(shape) * scale).astype(np.float16)

    @staticmethod
    def random_weights_linear(
        spec: LinearSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """He-style FP16 initialization for a linear layer."""
        scale = float(np.sqrt(2.0 / spec.in_features))
        shape = (spec.in_features, spec.out_features)
        return (rng.standard_normal(shape) * scale).astype(np.float16)


class ProtectedInference:
    """Run a :class:`SequentialModel` under per-layer ABFT protection.

    Parameters
    ----------
    model:
        The runnable model.
    schemes:
        Either a single scheme applied to every linear layer, or a
        mapping from linear-layer name to scheme (what intensity-guided
        ABFT produces); missing names fall back to ``default_scheme``.
        Every mapping key must name a linear layer of ``model`` —
        a typo'd key would otherwise leave a layer silently
        unprotected while the caller believes it is covered, so
        unknown names raise :class:`~repro.errors.ModelZooError`.
    cache:
        Optional shared :class:`~repro.abft.base.PreparedCache`.  When
        given, every linear layer's protected GEMM executes through
        the cache: repeated forward passes over identical activations
        reuse one prepared state per layer (the clean GEMM runs
        exactly once), and fault campaigns drawing from the *same*
        cache (:class:`repro.api.ProtectedSession` wires this up) hit
        the very entries the forward passes built.
    detection:
        Detection constants every layer's consistency check is
        evaluated under; ``None`` (default) resolves per layer to the
        layer scheme's :attr:`~repro.abft.Scheme.default_detection`,
        so FP16 and INT8 layers each get the tolerance matched to
        their pipeline.
    record_operands:
        Record each linear layer's lowered GEMM operands ``(a, b,
        tile)`` from the most recent *clean-equivalent* forward pass
        in :attr:`recorded_operands` — fault-free passes, and faulty
        passes whose every faulted layer was detected and recovered
        (the recovered output is bit-identical to clean); passes with
        undetected or unrecovered faults propagate corrupted
        activations downstream and are skipped — what
        ``ProtectedSession.campaign`` hands to a
        :class:`~repro.faults.FaultCampaign` so the campaign attacks
        exactly the GEMM the forward pass executed.

    Weights are constant across forward passes, so the engine caches a
    :class:`~repro.abft.base.PreparedWeights` per linear layer: the
    padded ``B`` and the weight-side checksum reductions are built on
    the first pass and reused bit-identically on every subsequent pass —
    the paper's §2.5 offline weight-checksum precomputation, applied
    engine-wide.  The state is m-independent, so one entry per layer
    serves every activation row count (batch size, spatial resolution);
    the first pass pins each layer's tile via its activation row count.
    """

    def __init__(
        self,
        model: SequentialModel,
        schemes: Scheme | Mapping[str, Scheme],
        *,
        default_scheme: Scheme | None = None,
        cache: PreparedCache | None = None,
        record_operands: bool = False,
        detection: DetectionConstants | None = None,
    ) -> None:
        self.model = model
        if isinstance(schemes, Scheme):
            self._scheme_map: Mapping[str, Scheme] = {
                name: schemes for name in model.linear_names
            }
        else:
            self._scheme_map = dict(schemes)
            unknown = set(self._scheme_map) - set(model.linear_names)
            if unknown:
                raise ModelZooError(
                    f"scheme assignment targets layers not in model "
                    f"{model.name!r}: {sorted(unknown)}; linear layers are "
                    f"{model.linear_names}"
                )
        self._default = default_scheme or NoProtection()
        self._weight_cache: dict[str, PreparedWeights] = {}
        self.detection = detection
        self.cache = cache
        self._record_operands = record_operands
        #: Per-layer ``(a, b, tile)`` of the most recent forward pass
        #: (populated only with ``record_operands=True``).
        self.recorded_operands: dict[
            str, tuple[np.ndarray, np.ndarray, TileConfig]
        ] = {}
        # Guards the engine's two pieces of cross-pass mutable state
        # (the weight cache and the operand record) so concurrent
        # forward passes through one engine stay safe: weight-side
        # state is prepared exactly once per layer, and each pass's
        # record commits as a unit.  Per-pass state (``staged``) is
        # already pass-local.
        self._lock = threading.Lock()

    def scheme_for(self, layer_name: str) -> Scheme:
        """The scheme protecting the named linear layer."""
        return self._scheme_map.get(layer_name, self._default)

    def _weights_for(self, name: str, scheme: Scheme, b: np.ndarray, m: int) -> PreparedWeights:
        """Cached weight-side state for one linear layer.

        Keyed by layer alone: the scheme per layer is fixed for the
        engine's lifetime, ``B`` never changes, and the weight-side
        state is m-independent, so one entry serves every forward pass
        regardless of input shape (conv ``m`` varies with batch and
        spatial dims).  The first pass pins the layer's tile via its
        activation row count; later passes at other row counts execute
        with that tile.
        """
        with self._lock:
            prepared = self._weight_cache.get(name)
            if prepared is None:
                # Prepare inside the critical section (mirroring
                # PreparedCache.get) so racing passes build the state
                # exactly once — the amortization contracts count on
                # it — and every cache touch stays under the lock
                # (RL002).
                prepared = scheme.prepare_weights(b, m=m)
                self._weight_cache[name] = prepared
        return prepared

    def _run_linear(
        self,
        name: str,
        a: np.ndarray,
        b: np.ndarray,
        faults: Sequence[FaultSpec],
        recovery: RecoveryPolicy | None,
        staged: dict[str, tuple[np.ndarray, np.ndarray, TileConfig]] | None,
    ) -> LayerOutcome:
        """One linear layer's protected GEMM, through the shared cache
        when the engine owns one (bit-identical either way — the
        prepared state is fault-invariant), plus the recovery retry
        loop when a policy applies.  Retries re-enter the same cached
        prepared state, so a recovery costs one re-reduction, not a
        re-prepared GEMM."""
        scheme = self.scheme_for(name)
        weights = self._weights_for(name, scheme, b, a.shape[0])
        if staged is not None:
            staged[name] = (a, b, weights.tile)

        def execute(specs: Sequence[FaultSpec]) -> ExecutionOutcome:
            if self.cache is not None:
                prepared = self.cache.get(scheme, a, b, weights=weights)
                return prepared.inject(specs, detection=self.detection)
            return scheme.execute(
                a, b, faults=specs, weights=weights, detection=self.detection
            )

        attempt = attempt_recovery(
            execute, execute(faults), faults, recovery,
            context=f"layer {name!r}",
        )
        return LayerOutcome(
            name=name,
            scheme=attempt.outcome.scheme,
            outcome=attempt.outcome,
            retries=attempt.retries,
            recovered=attempt.recovered,
            degraded=attempt.degraded,
        )

    @staticmethod
    def _clean_equivalent(
        result: InferenceResult, faults: Mapping[str, Sequence[FaultSpec]]
    ) -> bool:
        """Whether a pass's recorded operands describe clean GEMMs.

        True when every layer that had faults injected ended
        detected-and-recovered (its propagated output is bit-identical
        to a fault-free execution, so every downstream activation —
        hence every recorded ``A`` operand — is the clean one) and no
        layer degraded.  A fault-free pass is trivially clean.
        """
        return all(
            (rec.recovered or not faults.get(rec.name)) and not rec.degraded
            for rec in result.layer_outcomes
        )

    def run(
        self,
        x: np.ndarray,
        *,
        faults: Mapping[str, Sequence[FaultSpec]] | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> InferenceResult:
        """Forward pass with optional fault injection and recovery.

        Parameters
        ----------
        x:
            Input activations (NCHW for conv models, (batch, features)
            for MLPs).
        faults:
            Mapping from linear-layer name to fault specs injected into
            that layer's GEMM.
        recovery:
            Optional :class:`~repro.faults.RecoveryPolicy`: each
            layer's detection triggers bounded re-execution of that
            layer alone (transient retries run fault-free, sticky ones
            re-inject), then either raises or flags-and-propagates per
            the policy.  Per-layer results land on
            :class:`LayerOutcome`; :attr:`InferenceResult.recovered` /
            ``degraded`` / ``total_retries`` aggregate them.
        """
        faults = dict(faults or {})
        unknown = set(faults) - set(self.model.linear_names)
        if unknown:
            raise ModelZooError(f"fault targets not in model: {sorted(unknown)}")

        # Operands are staged during the pass and committed only if the
        # pass ends *clean-equivalent*: fault-free, or every faulted
        # layer detected-and-recovered (the recovered output is
        # bit-identical to clean, so every staged activation is the
        # clean one).  Undetected or degraded faults leave
        # `recorded_operands` describing the last clean-equivalent pass.
        staged: dict[str, tuple[np.ndarray, np.ndarray, TileConfig]] | None = (
            {} if self._record_operands else None
        )
        result = InferenceResult(output=np.asarray(x, dtype=np.float16))
        activation = result.output
        for op in self.model.ops:
            if op.is_linear:
                a, b, dims = op.lower(activation)
                rec = self._run_linear(
                    op.name, a, b, faults.get(op.name, ()), recovery, staged
                )
                result.layer_outcomes.append(rec)
                activation = op.reshape_output(rec.outcome.c, dims)
            else:
                activation = op.forward(activation)
        result.output = activation
        if staged is not None and self._clean_equivalent(result, faults):
            # Commit the whole pass as a unit so a concurrent reader
            # (or a racing pass) never observes a half-updated record.
            with self._lock:
                self.recorded_operands.update(staged)
        return result

    def trace(self, x: np.ndarray) -> "InferenceTrace":
        """Clean forward pass capturing every linear layer's GEMM view.

        Runs the model fault-free (through the shared cache when the
        engine owns one) and records, per linear layer, the lowered
        operands, the pinned tile, the conv reshape dims, and the
        clean execution outcome — the downstream state a
        :class:`~repro.faults.PropagationCampaign` replays corrupted
        activations through.  Does not touch
        :attr:`recorded_operands`.
        """
        result = InferenceResult(output=np.asarray(x, dtype=np.float16))
        activation = result.output
        steps: list[TraceStep] = []
        staged: dict[str, tuple[np.ndarray, np.ndarray, TileConfig]] = {}
        for idx, op in enumerate(self.model.ops):
            if not op.is_linear:
                activation = op.forward(activation)
                continue
            a, b, dims = op.lower(activation)
            rec = self._run_linear(op.name, a, b, (), None, staged)
            result.layer_outcomes.append(rec)
            steps.append(
                TraceStep(
                    name=op.name,
                    op_index=idx,
                    a=a,
                    b=b,
                    tile=staged[op.name][2],
                    dims=dims,
                    outcome=rec.outcome,
                )
            )
            activation = op.reshape_output(rec.outcome.c, dims)
        result.output = activation
        return InferenceTrace(
            x=np.asarray(x, dtype=np.float16),
            output=activation,
            result=result,
            steps=tuple(steps),
        )
