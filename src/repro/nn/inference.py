"""Numeric protected inference for small sequential models.

Runs a model layer by layer, executing every linear layer through an
ABFT scheme (per-layer assignable, as intensity-guided ABFT requires),
with optional fault injection into chosen layers.  Nonlinear operations
(activations, pools) are executed directly — the paper replicates them,
which is cheap and out of scope for the GEMM-focused overhead study.

This engine is used by the examples and the fault-injection tests; the
shape-only benchmarks never execute numerics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..abft.base import ExecutionOutcome, PreparedCache, PreparedWeights, Scheme
from ..abft.none import NoProtection
from ..config import DEFAULT_DETECTION, DetectionConstants
from ..gemm.tiles import TileConfig
from ..errors import ModelZooError, ShapeError
from ..faults.model import FaultSpec
from ..gemm.im2col import conv_weights_to_gemm, im2col
from .layers import Conv2dSpec, LinearSpec, pool_output_shape


class _Op:
    """Base class for runnable ops (internal)."""

    is_linear = False

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError


class ReLU(_Op):
    """Rectified linear activation, applied in FP16."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, np.float16(0.0)).astype(np.float16)


class Flatten(_Op):
    """Flatten NCHW activations to (batch, features)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"Flatten expects NCHW input, got {x.ndim}-D")
        return x.reshape(x.shape[0], -1)


class MaxPool2d(_Op):
    """Max pooling with floor semantics."""

    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"MaxPool2d expects NCHW input, got {x.ndim}-D")
        b, c, h, w = x.shape
        ho, wo = pool_output_shape(h, w, kernel=self.kernel, stride=self.stride)
        sb, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(b, c, ho, wo, self.kernel, self.kernel),
            strides=(sb, sc, sh * self.stride, sw * self.stride, sh, sw),
            writeable=False,
        )
        return windows.max(axis=(4, 5)).astype(np.float16)


class GlobalAvgPool(_Op):
    """Adaptive average pool to 1x1 (keeps NCHW rank)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"GlobalAvgPool expects NCHW input, got {x.ndim}-D")
        return x.mean(axis=(2, 3), keepdims=True, dtype=np.float32).astype(np.float16)


class Conv2d(_Op):
    """Convolution executed as an im2col GEMM through an ABFT scheme."""

    is_linear = True

    def __init__(self, spec: Conv2dSpec, weights: np.ndarray, *, name: str = "conv") -> None:
        if spec.groups != 1:
            raise ModelZooError(
                f"{name}: numeric inference supports non-grouped convs only "
                f"(the paper's substitution, footnote 3)"
            )
        expected = (spec.out_channels, spec.in_channels, spec.kernel, spec.kernel)
        if weights.shape != expected:
            raise ShapeError(f"{name}: weights must be {expected}, got {weights.shape}")
        self.spec = spec
        self.name = name
        self.weights = weights.astype(np.float16)
        self.b_matrix = conv_weights_to_gemm(self.weights)

    def lower(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, tuple[int, int, int]]:
        """im2col the input; returns (A, B, (batch, Ho, Wo))."""
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expects NCHW input, got {x.ndim}-D")
        ho, wo = self.spec.output_hw(x.shape[2], x.shape[3])
        a = im2col(
            x,
            kernel=(self.spec.kernel, self.spec.kernel),
            stride=(self.spec.stride, self.spec.stride),
            padding=(self.spec.padding, self.spec.padding),
        )
        return a.astype(np.float16), self.b_matrix, (x.shape[0], ho, wo)

    def reshape_output(self, c: np.ndarray, dims: tuple[int, int, int]) -> np.ndarray:
        """GEMM output rows back to NCHW."""
        batch, ho, wo = dims
        return c.reshape(batch, ho, wo, self.spec.out_channels).transpose(0, 3, 1, 2)


class Linear(_Op):
    """Fully-connected layer executed as a GEMM through an ABFT scheme."""

    is_linear = True

    def __init__(self, spec: LinearSpec, weights: np.ndarray, *, name: str = "linear") -> None:
        expected = (spec.in_features, spec.out_features)
        if weights.shape != expected:
            raise ShapeError(f"{name}: weights must be {expected}, got {weights.shape}")
        self.spec = spec
        self.name = name
        self.weights = weights.astype(np.float16)


@dataclass
class LayerOutcome:
    """Per-linear-layer record of one protected inference."""

    name: str
    scheme: str
    outcome: ExecutionOutcome

    @property
    def detected(self) -> bool:
        return self.outcome.detected


@dataclass
class InferenceResult:
    """Output of one protected forward pass."""

    output: np.ndarray
    layer_outcomes: list[LayerOutcome] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """True if any layer's ABFT check fired."""
        return any(rec.detected for rec in self.layer_outcomes)


class SequentialModel:
    """An ordered list of runnable ops with named linear layers."""

    def __init__(self, ops: Sequence[_Op], *, name: str = "model") -> None:
        if not ops:
            raise ModelZooError("SequentialModel needs at least one op")
        self.name = name
        self.ops = list(ops)

    @property
    def linear_names(self) -> list[str]:
        """Names of the linear (GEMM-backed) layers, in order."""
        return [op.name for op in self.ops if op.is_linear]  # type: ignore[attr-defined]

    @staticmethod
    def random_weights_conv(
        spec: Conv2dSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """He-style FP16 initialization for a conv layer."""
        fan_in = spec.in_channels * spec.kernel * spec.kernel
        scale = float(np.sqrt(2.0 / fan_in))
        shape = (spec.out_channels, spec.in_channels, spec.kernel, spec.kernel)
        return (rng.standard_normal(shape) * scale).astype(np.float16)

    @staticmethod
    def random_weights_linear(
        spec: LinearSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """He-style FP16 initialization for a linear layer."""
        scale = float(np.sqrt(2.0 / spec.in_features))
        shape = (spec.in_features, spec.out_features)
        return (rng.standard_normal(shape) * scale).astype(np.float16)


class ProtectedInference:
    """Run a :class:`SequentialModel` under per-layer ABFT protection.

    Parameters
    ----------
    model:
        The runnable model.
    schemes:
        Either a single scheme applied to every linear layer, or a
        mapping from linear-layer name to scheme (what intensity-guided
        ABFT produces); missing names fall back to ``default_scheme``.
        Every mapping key must name a linear layer of ``model`` —
        a typo'd key would otherwise leave a layer silently
        unprotected while the caller believes it is covered, so
        unknown names raise :class:`~repro.errors.ModelZooError`.
    cache:
        Optional shared :class:`~repro.abft.base.PreparedCache`.  When
        given, every linear layer's protected GEMM executes through
        the cache: repeated forward passes over identical activations
        reuse one prepared state per layer (the clean GEMM runs
        exactly once), and fault campaigns drawing from the *same*
        cache (:class:`repro.api.ProtectedSession` wires this up) hit
        the very entries the forward passes built.
    detection:
        Detection constants every layer's consistency check is
        evaluated under.
    record_operands:
        Record each linear layer's lowered GEMM operands ``(a, b,
        tile)`` from the most recent *fault-free* forward pass in
        :attr:`recorded_operands` (faulty passes propagate corrupted
        activations downstream and are skipped) — what
        ``ProtectedSession.campaign`` hands to a
        :class:`~repro.faults.FaultCampaign` so the campaign attacks
        exactly the GEMM the forward pass executed.

    Weights are constant across forward passes, so the engine caches a
    :class:`~repro.abft.base.PreparedWeights` per linear layer: the
    padded ``B`` and the weight-side checksum reductions are built on
    the first pass and reused bit-identically on every subsequent pass —
    the paper's §2.5 offline weight-checksum precomputation, applied
    engine-wide.  The state is m-independent, so one entry per layer
    serves every activation row count (batch size, spatial resolution);
    the first pass pins each layer's tile via its activation row count.
    """

    def __init__(
        self,
        model: SequentialModel,
        schemes: Scheme | Mapping[str, Scheme],
        *,
        default_scheme: Scheme | None = None,
        cache: PreparedCache | None = None,
        record_operands: bool = False,
        detection: DetectionConstants = DEFAULT_DETECTION,
    ) -> None:
        self.model = model
        if isinstance(schemes, Scheme):
            self._scheme_map: Mapping[str, Scheme] = {
                name: schemes for name in model.linear_names
            }
        else:
            self._scheme_map = dict(schemes)
            unknown = set(self._scheme_map) - set(model.linear_names)
            if unknown:
                raise ModelZooError(
                    f"scheme assignment targets layers not in model "
                    f"{model.name!r}: {sorted(unknown)}; linear layers are "
                    f"{model.linear_names}"
                )
        self._default = default_scheme or NoProtection()
        self._weight_cache: dict[str, PreparedWeights] = {}
        self.detection = detection
        self.cache = cache
        self._record_operands = record_operands
        #: Per-layer ``(a, b, tile)`` of the most recent forward pass
        #: (populated only with ``record_operands=True``).
        self.recorded_operands: dict[
            str, tuple[np.ndarray, np.ndarray, TileConfig]
        ] = {}

    def scheme_for(self, layer_name: str) -> Scheme:
        """The scheme protecting the named linear layer."""
        return self._scheme_map.get(layer_name, self._default)

    def _weights_for(self, name: str, scheme: Scheme, b: np.ndarray, m: int) -> PreparedWeights:
        """Cached weight-side state for one linear layer.

        Keyed by layer alone: the scheme per layer is fixed for the
        engine's lifetime, ``B`` never changes, and the weight-side
        state is m-independent, so one entry serves every forward pass
        regardless of input shape (conv ``m`` varies with batch and
        spatial dims).  The first pass pins the layer's tile via its
        activation row count; later passes at other row counts execute
        with that tile.
        """
        prepared = self._weight_cache.get(name)
        if prepared is None:
            prepared = scheme.prepare_weights(b, m=m)
            self._weight_cache[name] = prepared
        return prepared

    def _execute_linear(
        self,
        name: str,
        a: np.ndarray,
        b: np.ndarray,
        faults: Sequence[FaultSpec],
        *,
        record: bool,
    ) -> ExecutionOutcome:
        """One linear layer's protected GEMM, through the shared cache
        when the engine owns one (bit-identical either way — the
        prepared state is fault-invariant)."""
        scheme = self.scheme_for(name)
        weights = self._weights_for(name, scheme, b, a.shape[0])
        if record:
            self.recorded_operands[name] = (a, b, weights.tile)
        if self.cache is not None:
            prepared = self.cache.get(scheme, a, b, weights=weights)
            return prepared.inject(faults, detection=self.detection)
        return scheme.execute(
            a, b, faults=faults, weights=weights, detection=self.detection
        )

    def run(
        self,
        x: np.ndarray,
        *,
        faults: Mapping[str, Sequence[FaultSpec]] | None = None,
    ) -> InferenceResult:
        """Forward pass with optional per-layer fault injection.

        Parameters
        ----------
        x:
            Input activations (NCHW for conv models, (batch, features)
            for MLPs).
        faults:
            Mapping from linear-layer name to fault specs injected into
            that layer's GEMM.
        """
        faults = dict(faults or {})
        unknown = set(faults) - set(self.model.linear_names)
        if unknown:
            raise ModelZooError(f"fault targets not in model: {sorted(unknown)}")

        # Injected faults are detected, not corrected, so downstream
        # layers of a faulty pass see corrupted activations — record
        # only clean passes, or `recorded_operands` would describe
        # GEMMs the deployment never executes cleanly.
        record = self._record_operands and not any(faults.values())
        result = InferenceResult(output=np.asarray(x, dtype=np.float16))
        activation = result.output
        for op in self.model.ops:
            if isinstance(op, Conv2d):
                a, b, dims = op.lower(activation)
                outcome = self._execute_linear(
                    op.name, a, b, faults.get(op.name, ()), record=record
                )
                result.layer_outcomes.append(
                    LayerOutcome(
                        name=op.name, scheme=outcome.scheme, outcome=outcome
                    )
                )
                activation = op.reshape_output(outcome.c, dims)
            elif isinstance(op, Linear):
                a = activation.astype(np.float16)
                outcome = self._execute_linear(
                    op.name, a, op.weights, faults.get(op.name, ()), record=record
                )
                result.layer_outcomes.append(
                    LayerOutcome(
                        name=op.name, scheme=outcome.scheme, outcome=outcome
                    )
                )
                activation = outcome.c
            else:
                activation = op.forward(activation)
        result.output = activation
        return result
