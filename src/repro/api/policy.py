"""Scheme policies: model + device → per-layer deployment plan.

A *policy* is the pluggable decision rule of the deployment API: given
a shape-level model (:class:`~repro.nn.ModelGraph`) and a target device
(:class:`~repro.gpu.GPUSpec`), produce a :class:`~repro.api.plan.
DeploymentPlan`.  Three implementations cover the paper and the common
escape hatches:

* :class:`IntensityGuidedPolicy` — the paper's headline contribution,
  wrapping :class:`repro.core.IntensityGuidedABFT` (profile the
  candidates per layer, deploy the cheapest);
* :class:`FixedPolicy` — one scheme token everywhere (the paper's
  uniform baselines, still priced by the latency model);
* :class:`CallablePolicy` — any user function mapping ``(model, spec)``
  to a layer → token assignment (or a full plan), validated against
  the model's layers.

:func:`as_policy` normalizes what user-facing entry points accept:
policy objects pass through, strings become policies (``"guided"``,
``"fixed:global"``, or a bare scheme token), callables are wrapped.
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol, Sequence, runtime_checkable

from ..abft import scheme_from_token, split_dtype_token
from ..config import DEFAULT_CONSTANTS, ModelConstants
from ..core.intensity_guided import (
    DEFAULT_CANDIDATES,
    IntensityGuidedABFT,
    ModelSelection,
)
from ..core.profiler import PredeploymentProfiler
from ..errors import ConfigurationError
from ..gpu.specs import GPUSpec
from ..nn.graph import ModelGraph
from .plan import DeploymentPlan, LayerPlan

#: What a user callable may return: a finished plan, or layer → token.
PolicyResult = "DeploymentPlan | Mapping[str, str]"


@runtime_checkable
class SchemePolicy(Protocol):
    """The policy contract: assign a scheme to every linear layer."""

    #: Human-readable policy identifier, stamped into produced plans.
    name: str

    def assign(self, model: ModelGraph, spec: GPUSpec) -> DeploymentPlan:
        """Produce the deployment plan for ``model`` on ``spec``."""
        ...  # pragma: no cover - protocol


class IntensityGuidedPolicy:
    """The paper's policy: per-layer cheapest-scheme selection (§5.3).

    Wraps :class:`repro.core.IntensityGuidedABFT`; the produced plan
    freezes both the winning token per layer and every candidate's
    modeled time, so uniform-baseline overheads stay reportable from
    the serialized plan alone.

    ``dtype="int8"`` arbitrates over the quantized pipeline instead:
    candidates are profiled on the device's INT8 throughput with
    one-byte operands, and the winning tokens carry ``@int8`` so the
    plan deploys quantized executors.
    """

    name = "guided"

    def __init__(
        self,
        *,
        candidates: Sequence[str] = DEFAULT_CANDIDATES,
        constants: ModelConstants = DEFAULT_CONSTANTS,
        dtype: str = "fp16",
    ) -> None:
        self.candidates = tuple(candidates)
        self.constants = constants
        self.dtype = dtype
        if dtype != "fp16":
            self.name = f"guided@{dtype}"
        # One IntensityGuidedABFT (hence one profiler cache) per device:
        # assigning many models through one policy dedupes identical
        # layer shapes across all of them, like the drivers always did.
        self._guided: dict[GPUSpec, IntensityGuidedABFT] = {}

    def _guided_for(self, spec: GPUSpec) -> IntensityGuidedABFT:
        guided = self._guided.get(spec)
        if guided is None:
            guided = IntensityGuidedABFT(
                spec,
                candidates=self.candidates,
                constants=self.constants,
                dtype=self.dtype,
            )
            self._guided[spec] = guided
        return guided

    def select(self, model: ModelGraph, spec: GPUSpec) -> ModelSelection:
        """The underlying profiler selection (analytic-side callers)."""
        return self._guided_for(spec).select_for_model(model)

    def assign(self, model: ModelGraph, spec: GPUSpec) -> DeploymentPlan:
        return DeploymentPlan.from_selection(
            self.select(model, spec), graph=model, policy=self.name
        )


class FixedPolicy:
    """Deploy one scheme token on every linear layer.

    The uniform baselines of the paper's figures — still run through
    the pre-deployment profiler so the plan carries predicted
    overheads (the profiler also prices the unprotected baseline).
    """

    def __init__(
        self,
        token: str,
        *,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> None:
        self.token = token
        self.constants = constants
        self.name = f"fixed:{token}"
        # Fail on a bad token at policy construction, not at assign time.
        scheme_from_token(token)
        self._dtype = split_dtype_token(token)[1]
        self._profilers: dict[GPUSpec, PredeploymentProfiler] = {}

    def _profiler_for(self, spec: GPUSpec) -> PredeploymentProfiler:
        profiler = self._profilers.get(spec)
        if profiler is None:
            # An ``@int8`` token prices against the device's INT8 pipe
            # with one-byte operands, mirroring IntensityGuidedABFT.
            constants = self.constants
            if self._dtype == "int8":
                constants = constants.with_overrides(fp16_bytes=1)
            profiler = PredeploymentProfiler(
                spec.for_dtype(self._dtype),
                schemes=[scheme_from_token(self.token)],
                constants=constants,
            )
            self._profilers[spec] = profiler
        return profiler

    def assign(self, model: ModelGraph, spec: GPUSpec) -> DeploymentPlan:
        scheme = scheme_from_token(self.token)
        profiler = self._profiler_for(spec)
        layers = []
        for layer in model:
            entries = profiler.profile(layer.problem)
            layers.append(
                LayerPlan(
                    name=layer.name,
                    scheme=self.token,
                    m=layer.problem.m,
                    n=layer.problem.n,
                    k=layer.problem.k,
                    kind=layer.kind,
                    intensity=layer.problem.arithmetic_intensity(padded=True),
                    baseline_s=entries["none"].time_s,
                    scheme_times_s={self.token: entries[scheme.name].time_s},
                )
            )
        return DeploymentPlan(
            model=model.name,
            device=spec.name,
            layers=tuple(layers),
            batch=model.batch,
            input_desc=model.input_desc,
            policy=self.name,
        )


class CallablePolicy:
    """Adapt a user function into a :class:`SchemePolicy`.

    The function receives ``(model, spec)`` and returns either a
    finished :class:`DeploymentPlan` (used as-is) or a mapping from
    linear-layer name to scheme token.  Mappings must cover *exactly*
    the model's layers — a missing layer would deploy unprotected
    while the user believes it is covered, so both missing and unknown
    names raise :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self,
        fn: Callable[[ModelGraph, GPUSpec], "PolicyResult"],
        *,
        name: str | None = None,
    ) -> None:
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "callable")

    def assign(self, model: ModelGraph, spec: GPUSpec) -> DeploymentPlan:
        result = self.fn(model, spec)
        if isinstance(result, DeploymentPlan):
            return result
        if not isinstance(result, Mapping):
            raise ConfigurationError(
                f"policy callable {self.name!r} must return a "
                f"DeploymentPlan or a layer->token mapping, got "
                f"{type(result).__name__}"
            )
        layer_names = [layer.name for layer in model]
        missing = set(layer_names) - set(result)
        unknown = set(result) - set(layer_names)
        if missing or unknown:
            raise ConfigurationError(
                f"policy callable {self.name!r} assignment does not match "
                f"model {model.name!r}: missing {sorted(missing)}, "
                f"unknown {sorted(unknown)}"
            )
        layers = tuple(
            LayerPlan(
                name=layer.name,
                scheme=result[layer.name],
                m=layer.problem.m,
                n=layer.problem.n,
                k=layer.problem.k,
                kind=layer.kind,
                intensity=layer.problem.arithmetic_intensity(padded=True),
            )
            for layer in model
        )
        return DeploymentPlan(
            model=model.name,
            device=spec.name,
            layers=layers,
            batch=model.batch,
            input_desc=model.input_desc,
            policy=self.name,
        )


def as_policy(policy: "SchemePolicy | str | Callable") -> SchemePolicy:
    """Normalize a policy argument into a :class:`SchemePolicy`.

    * a policy object (anything with ``assign``) passes through;
    * ``"guided"`` (or ``"guided@int8"``) → :class:`IntensityGuidedPolicy`;
    * ``"fixed:TOKEN"`` or a bare scheme token → :class:`FixedPolicy`;
    * any other callable → :class:`CallablePolicy`.
    """
    if isinstance(policy, str):
        base, dtype = split_dtype_token(policy)
        if base == IntensityGuidedPolicy.name:
            return IntensityGuidedPolicy(dtype=dtype)
        token = policy.removeprefix("fixed:")
        return FixedPolicy(token)
    if hasattr(policy, "assign"):
        return policy
    if callable(policy):
        return CallablePolicy(policy)
    raise ConfigurationError(
        f"cannot interpret {policy!r} as a scheme policy; pass a policy "
        f"object, 'guided', 'fixed:TOKEN', a scheme token, or a callable"
    )
