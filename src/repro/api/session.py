"""Protected sessions: a deployed model as one executable object.

:class:`ProtectedSession` is the numeric half of the deployment API.
Given a :class:`~repro.api.plan.DeploymentPlan` it instantiates the
plan's schemes from the registry, owns one shared
:class:`~repro.abft.base.PreparedCache`, and exposes the two things a
deployment does — protected forward passes (:meth:`ProtectedSession.run`)
and fault campaigns against any linear layer
(:meth:`ProtectedSession.campaign`) — with all fault-invariant work
(padding, tile selection, the clean GEMM, operand checksums) executed
exactly once per layer across everything the session runs.

Two realizations of the deployed model are supported:

* **Numeric** (``model=`` a :class:`~repro.nn.SequentialModel` whose
  linear-layer names match the plan): forward passes run real
  activation flow through a :class:`~repro.nn.ProtectedInference`
  sharing the session cache, and campaigns attack exactly the GEMM
  operands the last forward pass executed.
* **Layer-GEMM** (no ``model``): each planned layer's GEMM is realized
  with seeded synthetic FP16 operands of the planned shape — the
  paper's view of a NN as its sequence of linear-layer GEMMs.  Forward
  passes execute every layer's protected GEMM in order; campaigns
  attack the same synthesized operands.  This is what makes a plan
  deserialized from JSON runnable with nothing else on hand.

:func:`deploy` is the three-line entry point: model name + device →
policy → session.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..abft.base import PreparedCache
from ..config import DEFAULT_DETECTION, DetectionConstants
from ..errors import ConfigurationError
from ..faults.campaign import FaultCampaign
from ..faults.model import FaultSpec
from ..gemm.tiles import TileConfig
from ..gpu.specs import GPUSpec, get_gpu
from ..nn.graph import ModelGraph
from ..nn.inference import (
    InferenceResult,
    LayerOutcome,
    ProtectedInference,
    SequentialModel,
)
from ..nn.models import build_model
from .plan import DeploymentPlan
from .policy import SchemePolicy, as_policy


class ProtectedSession:
    """A deployed model: plan + schemes + one shared prepared cache.

    Parameters
    ----------
    plan:
        The deployment plan (from a policy, or deserialized JSON).
    model:
        Optional numeric realization.  Its linear-layer names must
        match the plan's layers exactly; without it the session runs
        the layer-GEMM realization (see module docstring).
    seed:
        Seed for the synthesized layer operands of the layer-GEMM
        realization (deterministic per layer, independent of call
        order).
    cache:
        Share a :class:`~repro.abft.base.PreparedCache` across
        sessions (e.g. device sweeps over one model); by default the
        session owns a private one, LRU-bounded to a few entries per
        layer so a numeric session fed a stream of distinct inputs
        (each a fresh activation digest, hence a fresh entry holding
        padded operands and a clean FP32 accumulator) recycles memory
        instead of growing without bound.  Pass an unbounded
        ``PreparedCache()`` explicitly to pin everything.
    detection:
        Detection constants for forward passes and campaign defaults.
    """

    def __init__(
        self,
        plan: DeploymentPlan,
        *,
        model: SequentialModel | None = None,
        seed: int = 0,
        cache: PreparedCache | None = None,
        detection: DetectionConstants = DEFAULT_DETECTION,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.detection = detection
        if cache is None:
            cache = PreparedCache(maxsize=max(8, 4 * len(plan.layers)))
        self.cache = cache
        self.schemes = plan.build_schemes()
        self.model = model
        self.engine: ProtectedInference | None = None
        if model is not None:
            plan.validate_layer_names(model.linear_names)
            self.engine = ProtectedInference(
                model,
                self.schemes,
                cache=self.cache,
                record_operands=True,
                detection=detection,
            )
        self._synthesized: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    @property
    def device(self) -> str:
        """The plan's target device label."""
        return self.plan.device

    def scheme_for(self, layer: str):
        """The scheme instance deployed on the named layer."""
        try:
            return self.schemes[layer]
        except KeyError:
            raise ConfigurationError(
                f"session for {self.plan.model!r} has no layer {layer!r}; "
                f"layers are {self.plan.layer_names}"
            ) from None

    # ------------------------------------------------------------------
    def _synthesized_operands(
        self, layer: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Seeded FP16 operands of the planned shape for one layer.

        Deterministic for a given (session seed, layer): every run and
        campaign over the session sees bit-identical operands — which
        is what lets the shared cache collapse their clean GEMMs into
        one execution.
        """
        cached = self._synthesized.get(layer)
        if cached is not None:
            return cached
        entry = self.plan.layer(layer)
        index = self.plan.layer_names.index(layer)
        rng = np.random.default_rng([self.seed, index])
        a = (rng.standard_normal((entry.m, entry.k)) * 0.5).astype(np.float16)
        b = (rng.standard_normal((entry.k, entry.n)) * 0.5).astype(np.float16)
        self._synthesized[layer] = (a, b)
        return a, b

    def layer_operands(
        self, layer: str
    ) -> tuple[np.ndarray, np.ndarray, TileConfig | None]:
        """The GEMM operands ``(a, b, tile)`` campaigns attack.

        Numeric sessions return the operands (and pinned tile) of the
        named layer's most recent forward pass; run one first.  The
        layer-GEMM realization returns the synthesized operands (tile
        ``None`` — the campaign resolves the default).
        """
        entry = self.plan.layer(layer)  # validates the name
        if self.engine is not None:
            recorded = self.engine.recorded_operands.get(layer)
            if recorded is None:
                raise ConfigurationError(
                    f"no recorded operands for layer {entry.name!r}: run a "
                    f"forward pass first so the campaign attacks the GEMM "
                    f"the deployment actually executes"
                )
            return recorded
        a, b = self._synthesized_operands(layer)
        return a, b, None

    # ------------------------------------------------------------------
    def run(
        self,
        x: np.ndarray | None = None,
        *,
        faults: Mapping[str, Sequence[FaultSpec]] | None = None,
    ) -> InferenceResult:
        """One protected pass over the deployed model.

        Numeric sessions require the input activations ``x`` and run
        real inference; the layer-GEMM realization takes no input and
        executes every planned layer's protected GEMM in order (the
        result's ``output`` is the final layer's logical output).
        ``faults`` maps linear-layer names to fault specs injected
        into that layer's GEMM, on either realization.
        """
        if self.engine is not None:
            if x is None:
                raise ConfigurationError(
                    "this session wraps a numeric model; run(x) needs "
                    "input activations"
                )
            return self.engine.run(x, faults=faults)
        if x is not None:
            raise ConfigurationError(
                "this session runs the layer-GEMM realization (no numeric "
                "model was attached); run() takes no input activations"
            )
        faults = dict(faults or {})
        unknown = set(faults) - set(self.plan.layer_names)
        if unknown:
            raise ConfigurationError(
                f"fault targets not in plan: {sorted(unknown)}"
            )
        result = InferenceResult(output=np.empty(0, dtype=np.float16))
        for entry in self.plan:
            a, b = self._synthesized_operands(entry.name)
            scheme = self.schemes[entry.name]
            prepared = self.cache.get(scheme, a, b)
            outcome = prepared.inject(
                faults.get(entry.name, ()), detection=self.detection
            )
            result.layer_outcomes.append(
                LayerOutcome(
                    name=entry.name, scheme=outcome.scheme, outcome=outcome
                )
            )
            result.output = outcome.c
        return result

    # ------------------------------------------------------------------
    def campaign(
        self,
        layer: str | None = None,
        *,
        seed: int = 0,
        significance_factor: float | None = None,
        batch_size: int | None = None,
        sparse: bool | None = None,
        detection: DetectionConstants | None = None,
    ) -> FaultCampaign:
        """A prepared :class:`~repro.faults.FaultCampaign` on one layer.

        The campaign draws its prepared state from the session cache,
        so it shares the layer's clean GEMM with every forward pass
        (and every other campaign on that layer) the session runs —
        whole-model fault studies pay the expensive half once, total.
        ``layer`` may be omitted for single-layer plans; campaign
        parameters are forwarded to :class:`~repro.faults.
        FaultCampaign`.
        """
        if layer is None:
            if len(self.plan) != 1:
                raise ConfigurationError(
                    f"plan for {self.plan.model!r} has "
                    f"{len(self.plan)} layers; pass layer= one of "
                    f"{self.plan.layer_names}"
                )
            layer = self.plan.layer_names[0]
        a, b, tile = self.layer_operands(layer)
        # None means "FaultCampaign's own default" — never restate a
        # default here, or the hand-wired parity contract drifts.
        extra = {}
        if significance_factor is not None:
            extra["significance_factor"] = significance_factor
        return FaultCampaign(
            self.scheme_for(layer),
            a,
            b,
            tile=tile,
            detection=detection if detection is not None else self.detection,
            seed=seed,
            batch_size=batch_size,
            sparse=sparse,
            cache=self.cache,
            **extra,
        )


def deploy(
    model: "str | ModelGraph",
    device: "str | GPUSpec" = "T4",
    *,
    policy: "SchemePolicy | str" = "guided",
    batch: int | None = None,
    h: int = 1080,
    w: int = 1920,
    runnable: SequentialModel | None = None,
    seed: int = 0,
    cache: PreparedCache | None = None,
    detection: DetectionConstants = DEFAULT_DETECTION,
) -> ProtectedSession:
    """Model + device + policy → a running protected session.

    The end-to-end workflow of the paper in one call: build (or take)
    the shape-level model, run the policy on the target device, and
    wrap the resulting plan in a :class:`ProtectedSession`.

    Parameters
    ----------
    model:
        A model-zoo name (``repro.list_models()``) or a prebuilt
        :class:`~repro.nn.ModelGraph`.
    device:
        Device name (``repro.list_gpus()``) or spec.
    policy:
        Anything :func:`~repro.api.policy.as_policy` accepts; default
        is the paper's intensity-guided selection.
    batch, h, w:
        Model-zoo build arguments (ignored for a prebuilt graph).
    runnable:
        Optional numeric :class:`~repro.nn.SequentialModel` realization
        whose linear-layer names match the graph's.
    seed, cache, detection:
        Forwarded to :class:`ProtectedSession`.
    """
    spec = get_gpu(device) if isinstance(device, str) else device
    graph = (
        build_model(model, batch=batch, h=h, w=w)
        if isinstance(model, str)
        else model
    )
    plan = as_policy(policy).assign(graph, spec)
    return ProtectedSession(
        plan, model=runnable, seed=seed, cache=cache, detection=detection
    )
