"""Protected sessions: a deployed model as one executable object.

:class:`ProtectedSession` is the numeric half of the deployment API.
Given a :class:`~repro.api.plan.DeploymentPlan` it instantiates the
plan's schemes from the registry, owns one shared
:class:`~repro.abft.base.PreparedCache`, and exposes the two things a
deployment does — protected forward passes (:meth:`ProtectedSession.run`)
and fault campaigns against any linear layer
(:meth:`ProtectedSession.campaign`) — with all fault-invariant work
(padding, tile selection, the clean GEMM, operand checksums) executed
exactly once per layer across everything the session runs.

Two realizations of the deployed model are supported:

* **Numeric** (``model=`` a :class:`~repro.nn.SequentialModel` whose
  linear-layer names match the plan): forward passes run real
  activation flow through a :class:`~repro.nn.ProtectedInference`
  sharing the session cache, and campaigns attack exactly the GEMM
  operands the last forward pass executed.
* **Layer-GEMM** (no ``model``): each planned layer's GEMM is realized
  with seeded synthetic FP16 operands of the planned shape — the
  paper's view of a NN as its sequence of linear-layer GEMMs.  Forward
  passes execute every layer's protected GEMM in order; campaigns
  attack the same synthesized operands.  This is what makes a plan
  deserialized from JSON runnable with nothing else on hand.

:func:`deploy` is the three-line entry point: model name + device →
policy → session.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

import numpy as np

from ..abft.base import PreparedCache
from ..config import DetectionConstants
from ..errors import ConfigurationError
from ..faults.campaign import FaultCampaign
from ..faults.model import FaultSpec
from ..faults.options import CampaignOptions, resolve_option
from ..faults.propagation import PropagationCampaign
from ..faults.recovery import RecoveryPolicy, attempt_recovery
from ..gemm.tiles import TileConfig
from ..gpu.specs import GPUSpec, get_gpu
from ..nn.graph import ModelGraph
from ..nn.inference import (
    InferenceResult,
    LayerOutcome,
    ProtectedInference,
    SequentialModel,
)
from ..nn.models import build_model
from .plan import DeploymentPlan
from .policy import SchemePolicy, as_policy


class ProtectedSession:
    """A deployed model: plan + schemes + one shared prepared cache.

    Parameters
    ----------
    plan:
        The deployment plan (from a policy, or deserialized JSON).
    model:
        Optional numeric realization.  Its linear-layer names must
        match the plan's layers exactly; without it the session runs
        the layer-GEMM realization (see module docstring).
    seed:
        Seed for the synthesized layer operands of the layer-GEMM
        realization (deterministic per layer, independent of call
        order).
    cache:
        Share a :class:`~repro.abft.base.PreparedCache` across
        sessions (e.g. device sweeps over one model); by default the
        session owns a private one, LRU-bounded to a few entries per
        layer so a numeric session fed a stream of distinct inputs
        (each a fresh activation digest, hence a fresh entry holding
        padded operands and a clean FP32 accumulator) recycles memory
        instead of growing without bound.  Pass an unbounded
        ``PreparedCache()`` explicitly to pin everything.
    detection:
        Detection constants for forward passes and campaign defaults;
        ``None`` (default) resolves per layer to the deployed scheme's
        :attr:`~repro.abft.Scheme.default_detection` — FP16 layers get
        the rounding-noise tolerance, INT8 layers the exact-integer
        half-ULP threshold.
    recovery:
        Optional :class:`~repro.faults.RecoveryPolicy` applied by
        default to every :meth:`run` (both realizations) and inherited
        by :meth:`propagation_campaign`: a detected layer is re-executed
        within the policy's retry budget, then the pass degrades per
        the policy.  ``None`` (default) keeps the detect-and-report
        behavior.
    """

    def __init__(
        self,
        plan: DeploymentPlan,
        *,
        model: SequentialModel | None = None,
        seed: int = 0,
        cache: PreparedCache | None = None,
        detection: DetectionConstants | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.detection = detection
        self.recovery = recovery
        if cache is None:
            cache = PreparedCache(maxsize=max(8, 4 * len(plan.layers)))
        self.cache = cache
        self.schemes = plan.build_schemes()
        self.model = model
        self.engine: ProtectedInference | None = None
        if model is not None:
            plan.validate_layer_names(model.linear_names)
            self.engine = ProtectedInference(
                model,
                self.schemes,
                cache=self.cache,
                record_operands=True,
                detection=detection,
            )
        self._synthesized: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # Guards the synthesized-operand memo: concurrent campaigns and
        # layer-GEMM passes may race to realize one layer, and each
        # must observe the same (deterministically seeded) arrays.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def device(self) -> str:
        """The plan's target device label."""
        return self.plan.device

    def scheme_for(self, layer: str):
        """The scheme instance deployed on the named layer."""
        try:
            return self.schemes[layer]
        except KeyError:
            raise ConfigurationError(
                f"session for {self.plan.model!r} has no layer {layer!r}; "
                f"layers are {self.plan.layer_names}"
            ) from None

    # ------------------------------------------------------------------
    def _synthesized_operands(
        self, layer: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Seeded FP16 operands of the planned shape for one layer.

        Deterministic for a given (session seed, layer): every run and
        campaign over the session sees bit-identical operands — which
        is what lets the shared cache collapse their clean GEMMs into
        one execution.
        """
        entry = self.plan.layer(layer)
        index = self.plan.layer_names.index(layer)
        with self._lock:
            # Synthesis runs inside the critical section so racing
            # callers share one set of buffers and the memo is only
            # ever touched under the lock (RL002).  The draw is cheap
            # relative to the clean GEMM it feeds, so serializing it
            # costs nothing measurable.
            cached = self._synthesized.get(layer)
            if cached is not None:
                return cached
            rng = np.random.default_rng([self.seed, index])
            a = (rng.standard_normal((entry.m, entry.k)) * 0.5).astype(np.float16)
            b = (rng.standard_normal((entry.k, entry.n)) * 0.5).astype(np.float16)
            self._synthesized[layer] = (a, b)
            return a, b

    def layer_operands(
        self, layer: str
    ) -> tuple[np.ndarray, np.ndarray, TileConfig | None]:
        """The GEMM operands ``(a, b, tile)`` campaigns attack.

        Numeric sessions return the operands (and pinned tile) of the
        named layer's most recent forward pass; run one first.  The
        layer-GEMM realization returns the synthesized operands (tile
        ``None`` — the campaign resolves the default).
        """
        entry = self.plan.layer(layer)  # validates the name
        if self.engine is not None:
            recorded = self.engine.recorded_operands.get(layer)
            if recorded is None:
                raise ConfigurationError(
                    f"no recorded operands for layer {entry.name!r}: run a "
                    f"forward pass first so the campaign attacks the GEMM "
                    f"the deployment actually executes"
                )
            return recorded
        a, b = self._synthesized_operands(layer)
        return a, b, None

    # ------------------------------------------------------------------
    def run(
        self,
        x: np.ndarray | None = None,
        *,
        faults: Mapping[str, Sequence[FaultSpec]] | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> InferenceResult:
        """One protected pass over the deployed model.

        Numeric sessions require the input activations ``x`` and run
        real inference; the layer-GEMM realization takes no input and
        executes every planned layer's protected GEMM in order (the
        result's ``output`` is the final layer's logical output).
        ``faults`` maps linear-layer names to fault specs injected
        into that layer's GEMM, on either realization.  ``recovery``
        overrides the session's default policy for this pass (pass a
        policy to enable, or rely on the session-level one); detected
        layers are then retried within the policy's budget, with
        per-layer results on the returned ``layer_outcomes``.
        """
        policy = recovery if recovery is not None else self.recovery
        if self.engine is not None:
            if x is None:
                raise ConfigurationError(
                    "this session wraps a numeric model; run(x) needs "
                    "input activations"
                )
            return self.engine.run(x, faults=faults, recovery=policy)
        if x is not None:
            raise ConfigurationError(
                "this session runs the layer-GEMM realization (no numeric "
                "model was attached); run() takes no input activations"
            )
        faults = dict(faults or {})
        unknown = set(faults) - set(self.plan.layer_names)
        if unknown:
            raise ConfigurationError(
                f"fault targets not in plan: {sorted(unknown)}"
            )
        result = InferenceResult(output=np.empty(0, dtype=np.float16))
        for entry in self.plan:
            a, b = self._synthesized_operands(entry.name)
            scheme = self.schemes[entry.name]
            prepared = self.cache.get(scheme, a, b)
            layer_faults = tuple(faults.get(entry.name, ()))
            attempt = attempt_recovery(
                lambda specs: prepared.inject(specs, detection=self.detection),
                prepared.inject(layer_faults, detection=self.detection),
                layer_faults,
                policy,
                context=f"layer {entry.name!r}",
            )
            result.layer_outcomes.append(
                LayerOutcome(
                    name=entry.name,
                    scheme=attempt.outcome.scheme,
                    outcome=attempt.outcome,
                    retries=attempt.retries,
                    recovered=attempt.recovered,
                    degraded=attempt.degraded,
                )
            )
            result.output = attempt.outcome.c
        return result

    # ------------------------------------------------------------------
    def campaign(
        self,
        layer: str | None = None,
        *,
        seed: int | None = None,
        significance_factor: float | None = None,
        batch_size: int | None = None,
        sparse: bool | None = None,
        options: CampaignOptions | None = None,
    ) -> FaultCampaign:
        """A prepared :class:`~repro.faults.FaultCampaign` on one layer.

        The campaign draws its prepared state from the session cache,
        so it shares the layer's clean GEMM with every forward pass
        (and every other campaign on that layer) the session runs —
        whole-model fault studies pay the expensive half once, total.
        ``layer`` may be omitted for single-layer plans; campaign
        parameters — individually, or bundled in ``options=``
        (:class:`~repro.faults.CampaignOptions`) — are forwarded to
        :class:`~repro.faults.FaultCampaign`
        (``options=CampaignOptions(workers=N)`` makes every run of the
        returned campaign shard across ``N`` worker processes by
        default).  ``detection`` / ``workers`` are options-only fields
        (their keyword aliases were removed after one deprecated
        release); the campaign always uses the session's shared cache.

        Example
        -------
        >>> import repro
        >>> session = repro.deploy("mlp_bottom", "T4", batch=32)
        >>> campaign = session.campaign(layer="fc1", seed=1)
        >>> result = campaign.run_batch(40)
        >>> result.n_trials
        40
        >>> 0.0 <= result.coverage <= 1.0
        True
        """
        owner = "ProtectedSession.campaign"
        detection = options.detection if options is not None else None
        workers = options.workers if options is not None else None
        seed = resolve_option(options, owner, "seed", seed)
        significance_factor = resolve_option(
            options, owner, "significance_factor", significance_factor
        )
        batch_size = resolve_option(options, owner, "batch_size", batch_size)
        sparse = resolve_option(options, owner, "sparse", sparse)
        if options is not None and options.cache is not None:
            if options.cache is not self.cache:
                raise ConfigurationError(
                    "session campaigns always use the session's shared "
                    "cache; options.cache is a different cache"
                )
        if layer is None:
            if len(self.plan) != 1:
                raise ConfigurationError(
                    f"plan for {self.plan.model!r} has "
                    f"{len(self.plan)} layers; pass layer= one of "
                    f"{self.plan.layer_names}"
                )
            layer = self.plan.layer_names[0]
        a, b, tile = self.layer_operands(layer)
        # None means "FaultCampaign's own default" — never restate a
        # default here, or the hand-wired parity contract drifts.
        return FaultCampaign(
            self.scheme_for(layer),
            a,
            b,
            tile=tile,
            options=CampaignOptions(
                detection=(
                    detection if detection is not None else self.detection
                ),
                seed=seed,
                significance_factor=significance_factor,
                batch_size=batch_size,
                sparse=sparse,
                cache=self.cache,
                workers=workers,
            ),
        )

    def propagation_campaign(
        self,
        layer: str | None = None,
        *,
        x: np.ndarray,
        seed: int | None = None,
        recovery: RecoveryPolicy | None = None,
        output_rtol: float | None = None,
        output_atol: float | None = None,
        batch_size: int | None = None,
        verify_recovery: bool = True,
        options: CampaignOptions | None = None,
    ) -> PropagationCampaign:
        """An end-to-end :class:`~repro.faults.PropagationCampaign`.

        Injects into the named layer's GEMM and carries the corrupted
        activations to the model output, classifying every trial as
        masked / detected / benign-alarm / undetected-SDC against the
        ABFT verdict — with optional detection-triggered recovery
        (``recovery`` defaults to the session's policy).  Requires the
        numeric realization (``model=`` at construction): propagation
        is meaningless without real activation flow.  The campaign's
        clean pass, the struck layer's injections, and the downstream
        replays all draw from the session's shared cache.

        ``layer`` may be omitted for single-layer plans; ``x`` is the
        model input the campaign propagates over;
        ``options=CampaignOptions(workers=N)`` makes every run of the
        returned campaign shard across ``N`` worker processes by
        default (:mod:`repro.faults.parallel`).  Campaign knobs are
        bundled in ``options=`` (:class:`~repro.faults.
        CampaignOptions`); ``workers`` is options-only (its keyword
        alias was removed after one deprecated release).
        """
        owner = "ProtectedSession.propagation_campaign"
        workers = options.workers if options is not None else None
        seed = resolve_option(options, owner, "seed", seed)
        batch_size = resolve_option(options, owner, "batch_size", batch_size)
        if self.engine is None:
            raise ConfigurationError(
                "propagation campaigns need the numeric realization: "
                "construct the session with model= (a SequentialModel "
                "whose linear-layer names match the plan)"
            )
        if layer is None:
            if len(self.plan) != 1:
                raise ConfigurationError(
                    f"plan for {self.plan.model!r} has "
                    f"{len(self.plan)} layers; pass layer= one of "
                    f"{self.plan.layer_names}"
                )
            layer = self.plan.layer_names[0]
        self.plan.layer(layer)  # validates the name against the plan
        extra = {}
        if output_rtol is not None:
            extra["output_rtol"] = output_rtol
        if output_atol is not None:
            extra["output_atol"] = output_atol
        return PropagationCampaign(
            self.engine,
            layer,
            x,
            recovery=recovery if recovery is not None else self.recovery,
            verify_recovery=verify_recovery,
            options=CampaignOptions(
                seed=seed,
                batch_size=batch_size,
                workers=workers,
                significance_factor=(
                    options.significance_factor if options else None
                ),
                sparse=options.sparse if options else None,
            ),
            **extra,
        )


def deploy(
    model: "str | ModelGraph",
    device: "str | GPUSpec" = "T4",
    *,
    policy: "SchemePolicy | str" = "guided",
    batch: int | None = None,
    h: int = 1080,
    w: int = 1920,
    runnable: SequentialModel | None = None,
    seed: int = 0,
    cache: PreparedCache | None = None,
    detection: DetectionConstants | None = None,
    recovery: RecoveryPolicy | None = None,
) -> ProtectedSession:
    """Model + device + policy → a running protected session.

    The end-to-end workflow of the paper in one call: build (or take)
    the shape-level model, run the policy on the target device, and
    wrap the resulting plan in a :class:`ProtectedSession`.

    Parameters
    ----------
    model:
        A model-zoo name (``repro.list_models()``) or a prebuilt
        :class:`~repro.nn.ModelGraph`.
    device:
        Device name (``repro.list_gpus()``) or spec.
    policy:
        Anything :func:`~repro.api.policy.as_policy` accepts; default
        is the paper's intensity-guided selection.
    batch, h, w:
        Model-zoo build arguments (ignored for a prebuilt graph).
    runnable:
        Optional numeric :class:`~repro.nn.SequentialModel` realization
        whose linear-layer names match the graph's.
    seed, cache, detection, recovery:
        Forwarded to :class:`ProtectedSession`.

    Examples
    --------
    >>> import repro
    >>> session = repro.deploy("mlp_bottom", "T4", batch=32)
    >>> session.plan.layer("fc1").scheme
    'thread_onesided'
    >>> session.plan.guided_overhead_percent <= (
    ...     session.plan.scheme_overhead_percent("global"))
    True
    """
    spec = get_gpu(device) if isinstance(device, str) else device
    graph = (
        build_model(model, batch=batch, h=h, w=w)
        if isinstance(model, str)
        else model
    )
    plan = as_policy(policy).assign(graph, spec)
    return ProtectedSession(
        plan, model=runnable, seed=seed, cache=cache, detection=detection,
        recovery=recovery,
    )
