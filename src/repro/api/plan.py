"""Serializable deployment plans: layer → scheme token + predicted cost.

A :class:`DeploymentPlan` is the artifact a :class:`~repro.api.policy.
SchemePolicy` produces and a :class:`~repro.api.session.ProtectedSession`
consumes: for every linear layer of a model, the ABFT scheme token to
deploy (see :func:`repro.abft.scheme_from_token`) plus the latency
model's predicted per-layer times, so whole-model overheads remain
computable after the analytic machinery is gone.  Plans serialize to a
stable JSON schema (``to_json``/``from_json``) and also load the
``repro select --json`` output (the :func:`repro.utils.serde.
model_selection_to_dict` schema), so a plan exported on one machine is
a runnable deployment input on another.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from ..abft import Scheme, scheme_from_token
from ..core.overhead import overhead_percent
from ..errors import ConfigurationError, PlanError
from ..gemm.problem import GemmProblem
from ..utils import Table

if TYPE_CHECKING:  # pragma: no cover
    from ..core.intensity_guided import ModelSelection
    from ..nn.graph import ModelGraph

#: Schema tag written into every serialized plan.
PLAN_SCHEMA = "repro.deployment-plan/v1"

#: Explicit schema version written into every serialized plan.  Version
#: 1 is the historical pair of accepted-silently shapes (``to_dict``
#: output without a version field, and the ``repro select --json``
#: export); version 2 is identical except that it *declares* itself.
#: Payloads without the field default-migrate to version 1.
PLAN_SCHEMA_VERSION = 2

#: Versions :meth:`DeploymentPlan.from_dict` knows how to read.
_KNOWN_SCHEMA_VERSIONS = frozenset({1, PLAN_SCHEMA_VERSION})


def _check_schema_version(data: Mapping[str, Any]) -> int:
    """Resolve a payload's declared schema version, or raise cleanly.

    Missing field → version 1 (the historical schemas, which never
    declared themselves).  Declared-but-unknown → :class:`PlanError`,
    so a plan written by a newer build fails with a version message
    rather than a misleading missing-field error.
    """
    try:
        version = data.get("schema_version", 1)
    except AttributeError:
        raise ConfigurationError(
            f"not a deployment plan: expected a JSON object, "
            f"got {type(data).__name__}"
        ) from None
    if not isinstance(version, int) or version not in _KNOWN_SCHEMA_VERSIONS:
        known = sorted(_KNOWN_SCHEMA_VERSIONS)
        raise PlanError(
            f"deployment plan declares schema_version {version!r}, but "
            f"this build only reads versions {known}; re-export the plan "
            f"or upgrade repro"
        )
    return version


@dataclass(frozen=True)
class LayerPlan:
    """One linear layer's deployment decision.

    Attributes
    ----------
    name:
        Linear-layer name within the model.
    scheme:
        Scheme token to deploy on this layer (registry name plus any
        constructor argument, e.g. ``"global_multi:2"``).
    m, n, k:
        The layer's GEMM dimensions.
    kind:
        ``"conv"`` / ``"linear"`` provenance, when known.
    intensity:
        Padded arithmetic intensity of the GEMM, when known.
    baseline_s:
        Modeled unprotected execution time (latency model).
    scheme_times_s:
        Modeled execution time per candidate scheme token — what the
        policy arbitrated between; keys are scheme tokens.
    """

    name: str
    scheme: str
    m: int
    n: int
    k: int
    kind: str | None = None
    intensity: float | None = None
    baseline_s: float | None = None
    scheme_times_s: Mapping[str, float] = field(default_factory=dict)

    @property
    def problem(self) -> GemmProblem:
        """The layer's GEMM."""
        return GemmProblem(self.m, self.n, self.k)

    @property
    def chosen_time_s(self) -> float:
        """Modeled time under the deployed scheme."""
        return self._time_for(self.scheme)

    def _time_for(self, token: str) -> float:
        try:
            return self.scheme_times_s[token]
        except KeyError:
            raise ConfigurationError(
                f"layer {self.name!r} carries no modeled time for scheme "
                f"{token!r}; have {sorted(self.scheme_times_s)}"
            ) from None

    def overhead_percent(self, token: str | None = None) -> float:
        """Predicted overhead of one candidate (default: the chosen one)."""
        if self.baseline_s is None:
            raise ConfigurationError(
                f"layer {self.name!r} carries no baseline time; the plan "
                f"was built without latency predictions"
            )
        return overhead_percent(
            self._time_for(token or self.scheme), self.baseline_s
        )


@dataclass(frozen=True)
class DeploymentPlan:
    """A whole model's per-layer scheme assignment plus predicted cost.

    The serializable contract between the analytic half of the paper
    (policy selection on a device) and the numeric half (protected
    sessions, fault campaigns): everything a deployment needs, nothing
    tied to live profiler state.
    """

    model: str
    device: str
    layers: tuple[LayerPlan, ...]
    batch: int | None = None
    input_desc: str | None = None
    policy: str | None = None

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError(
                f"deployment plan for {self.model!r} has no layers"
            )
        seen: set[str] = set()
        for layer in self.layers:
            if layer.name in seen:
                raise ConfigurationError(
                    f"deployment plan for {self.model!r} assigns layer "
                    f"{layer.name!r} twice"
                )
            seen.add(layer.name)
            # Tokens are validated eagerly so a hand-edited plan fails
            # at load time, not at first execution.
            scheme_from_token(layer.scheme)

    # -- structure ------------------------------------------------------
    def __iter__(self) -> Iterator[LayerPlan]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def layer_names(self) -> list[str]:
        """Planned layer names, in execution order."""
        return [layer.name for layer in self.layers]

    def layer(self, name: str) -> LayerPlan:
        """The named layer's plan entry."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise ConfigurationError(
            f"plan for {self.model!r} has no layer {name!r}; "
            f"layers are {self.layer_names}"
        )

    def assignment(self) -> dict[str, str]:
        """Layer name → scheme token, in execution order."""
        return {layer.name: layer.scheme for layer in self.layers}

    def build_schemes(self) -> dict[str, Scheme]:
        """Instantiate the plan's schemes, one shared instance per token.

        Layers deploying the same token share one :class:`Scheme`
        instance, so prepared state cached under its
        :attr:`~repro.abft.base.Scheme.cache_token` is shared wherever
        operands coincide.
        """
        by_token: dict[str, Scheme] = {}
        return {
            layer.name: by_token.setdefault(
                layer.scheme, scheme_from_token(layer.scheme)
            )
            for layer in self.layers
        }

    @property
    def selection_counts(self) -> dict[str, int]:
        """How many layers deploy each scheme token."""
        counts: dict[str, int] = {}
        for layer in self.layers:
            counts[layer.scheme] = counts.get(layer.scheme, 0) + 1
        return counts

    # -- predicted whole-model cost (mirrors ModelSelection) ------------
    @property
    def has_predictions(self) -> bool:
        """Whether every layer carries modeled times."""
        return all(
            layer.baseline_s is not None and layer.scheme_times_s
            for layer in self.layers
        )

    def _require_predictions(self) -> None:
        if not self.has_predictions:
            raise ConfigurationError(
                f"plan for {self.model!r} carries no latency predictions "
                f"(policy {self.policy!r}); overheads are unavailable"
            )

    @property
    def baseline_s(self) -> float:
        """Predicted unprotected execution time of the whole model."""
        self._require_predictions()
        return sum(layer.baseline_s for layer in self.layers)  # type: ignore[misc]

    def scheme_total_s(self, token: str) -> float:
        """Predicted total time under one uniform scheme."""
        self._require_predictions()
        return sum(layer._time_for(token) for layer in self.layers)

    @property
    def guided_total_s(self) -> float:
        """Predicted total time under the plan's per-layer assignment."""
        self._require_predictions()
        return sum(layer.chosen_time_s for layer in self.layers)

    def scheme_overhead_percent(self, token: str) -> float:
        """Predicted whole-model overhead of one uniform scheme."""
        return overhead_percent(self.scheme_total_s(token), self.baseline_s)

    @property
    def guided_overhead_percent(self) -> float:
        """Predicted whole-model overhead of the plan's assignment."""
        return overhead_percent(self.guided_total_s, self.baseline_s)

    # -- validation -----------------------------------------------------
    def validate_layer_names(self, names: Iterable[str]) -> None:
        """Require the plan to cover exactly the given linear layers."""
        names = list(names)
        missing = set(names) - set(self.layer_names)
        extra = set(self.layer_names) - set(names)
        if missing or extra:
            raise ConfigurationError(
                f"plan for {self.model!r} does not match the model's "
                f"linear layers: missing {sorted(missing)}, "
                f"unknown {sorted(extra)}"
            )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Stable dictionary schema of the plan."""
        return {
            "schema": PLAN_SCHEMA,
            "schema_version": PLAN_SCHEMA_VERSION,
            "model": self.model,
            "device": self.device,
            "batch": self.batch,
            "input_desc": self.input_desc,
            "policy": self.policy,
            "layers": [
                {
                    "layer": layer.name,
                    "kind": layer.kind,
                    "gemm": {"m": layer.m, "n": layer.n, "k": layer.k},
                    "arithmetic_intensity": layer.intensity,
                    "scheme": layer.scheme,
                    "baseline_s": layer.baseline_s,
                    "scheme_times_s": dict(layer.scheme_times_s),
                }
                for layer in self.layers
            ],
        }

    def to_json(self, *, indent: int = 2) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeploymentPlan":
        """Load a plan from its dict schema *or* a selection export.

        Accepts both :meth:`to_dict` output and the
        ``repro select --json`` schema
        (:func:`~repro.utils.serde.model_selection_to_dict`, whose
        layers carry ``chosen`` instead of ``scheme``), so the CLI's
        analytic export is directly loadable as deployment input.

        Payloads declare themselves via ``schema_version``; historical
        payloads without the field default-migrate to version 1 (the
        same two accepted shapes).  A payload declaring a version this
        build does not know raises :class:`~repro.errors.PlanError`
        instead of being half-parsed.
        """
        _check_schema_version(data)
        try:
            model = data["model"]
            device = data["device"]
            raw_layers = data["layers"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"not a deployment plan: missing field {exc}"
            ) from None
        layers = []
        for entry in raw_layers:
            try:
                gemm = entry["gemm"]
                layers.append(
                    LayerPlan(
                        name=entry["layer"],
                        scheme=entry.get("scheme") or entry["chosen"],
                        m=int(gemm["m"]),
                        n=int(gemm["n"]),
                        k=int(gemm["k"]),
                        kind=entry.get("kind"),
                        intensity=entry.get("arithmetic_intensity"),
                        baseline_s=entry.get("baseline_s"),
                        scheme_times_s=dict(entry.get("scheme_times_s", {})),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed plan layer entry {entry!r}: {exc}"
                ) from None
        return cls(
            model=model,
            device=device,
            layers=tuple(layers),
            batch=data.get("batch"),
            input_desc=data.get("input_desc"),
            policy=data.get("policy") or (
                "guided" if "guided" in data else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "DeploymentPlan":
        """Load a plan from :meth:`to_json` or ``repro select --json``."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_selection(
        cls,
        selection: "ModelSelection",
        *,
        graph: "ModelGraph | None" = None,
        policy: str | None = None,
    ) -> "DeploymentPlan":
        """Freeze a profiler selection into a deployment plan.

        ``graph``, when given, contributes the metadata a
        :class:`~repro.core.ModelSelection` does not carry (layer
        kinds, batch, input description).
        """
        kinds: dict[str, str] = {}
        if graph is not None:
            kinds = {layer.name: layer.kind for layer in graph}
        layers = tuple(
            LayerPlan(
                name=sel.layer_name,
                scheme=sel.chosen,
                m=sel.problem.m,
                n=sel.problem.n,
                k=sel.problem.k,
                kind=kinds.get(sel.layer_name),
                intensity=sel.intensity,
                baseline_s=sel.baseline_s,
                scheme_times_s=dict(sel.scheme_times_s),
            )
            for sel in selection.layers
        )
        return cls(
            model=selection.model_name,
            device=selection.device,
            layers=layers,
            batch=graph.batch if graph is not None else None,
            input_desc=graph.input_desc if graph is not None else None,
            policy=policy,
        )

    def with_device(self, device: str) -> "DeploymentPlan":
        """The same assignment restamped for another device label."""
        return replace(self, device=device)


def layer_plan_table(
    plan: DeploymentPlan,
    *,
    title: str | None = None,
    max_rows: int | None = None,
) -> Table:
    """Render a plan's per-layer assignment as an ASCII table."""
    columns = ["layer", "M", "N", "K", "AI", "scheme"]
    with_overhead = plan.has_predictions
    if with_overhead:
        columns.append("overhead (%)")
    table = Table(
        columns,
        title=title or (
            f"{plan.model} on {plan.device}: deployment plan"
            + (f" (policy {plan.policy})" if plan.policy else "")
        ),
    )
    rows = plan.layers[:max_rows] if max_rows else plan.layers
    for layer in rows:
        row: list[object] = [
            layer.name,
            layer.m,
            layer.n,
            layer.k,
            layer.intensity if layer.intensity is not None else "-",
            layer.scheme,
        ]
        if with_overhead:
            row.append(layer.overhead_percent())
        table.add_row(row)
    return table
