"""Deployment API: policy-driven protected sessions, end to end.

The paper's headline contribution is *end-to-end*: pick an ABFT scheme
per layer from the roofline/latency model, then run protected
inference — and fault campaigns — under that assignment.  This package
is the glue that composes the repo's analytic half (``repro.core``,
``repro.roofline``) with its numeric half (``repro.abft``,
``repro.nn``, ``repro.faults``) into one deployment workflow:

>>> import repro
>>> session = repro.deploy("mlp_bottom", "T4", batch=64)
>>> result = session.campaign(layer="fc1", seed=7).run_batch(100)
>>> result.coverage
1.0

* :mod:`~repro.api.policy` — :class:`SchemePolicy` implementations
  mapping a model + device to a per-layer scheme assignment;
* :mod:`~repro.api.plan` — the serializable :class:`DeploymentPlan`
  (``repro deploy --json`` output ⇄ runnable input);
* :mod:`~repro.api.session` — the :class:`ProtectedSession` facade and
  the :func:`deploy` entry point.

See DESIGN.md §2 for the architecture.
"""

from .plan import DeploymentPlan, LayerPlan, layer_plan_table
from .policy import (
    CallablePolicy,
    FixedPolicy,
    IntensityGuidedPolicy,
    SchemePolicy,
    as_policy,
)
from .session import ProtectedSession, deploy

__all__ = [
    "SchemePolicy",
    "IntensityGuidedPolicy",
    "FixedPolicy",
    "CallablePolicy",
    "as_policy",
    "DeploymentPlan",
    "LayerPlan",
    "layer_plan_table",
    "ProtectedSession",
    "deploy",
]
