"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with one ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid model constant, device spec, or tile configuration."""


class PlanError(ConfigurationError):
    """A serialized deployment plan declares a schema this build can't read.

    Raised by :meth:`repro.api.DeploymentPlan.from_dict` when a payload
    carries an unknown ``schema_version``.  Subclasses
    :class:`ConfigurationError` so existing plan-loading error handling
    keeps working unchanged.
    """


class ShapeError(ReproError):
    """A matrix/tensor shape is inconsistent with the requested operation."""


class TilingError(ReproError):
    """A tile configuration cannot legally decompose the given problem."""


class OccupancyError(ReproError):
    """A kernel configuration cannot be scheduled on the device at all.

    Raised when a single threadblock exceeds a per-SM hardware limit
    (registers, shared memory, or threads), meaning occupancy is zero.
    """


class FaultInjectionError(ReproError):
    """A fault site does not exist in the execution being instrumented."""


class CampaignError(ReproError):
    """A sharded campaign run failed as a whole.

    Raised by the multiprocess campaign engine
    (:mod:`repro.faults.parallel`) when a worker dies or raises
    mid-shard: the pool is torn down, shared-memory segments are
    released, and the underlying worker exception (when one surfaced)
    is chained as ``__cause__`` — callers never observe a hang or a
    partial merge.
    """


class DetectionError(ReproError):
    """An ABFT consistency check could not be evaluated."""


class ProfilingError(ReproError):
    """The pre-deployment profiler was given nothing it can rank."""


class ModelZooError(ReproError):
    """An unknown model name or an architecture that fails shape propagation."""


class RecoveryError(ReproError):
    """A detected fault persisted through the recovery retry budget.

    Raised only under a :class:`~repro.faults.RecoveryPolicy` whose
    ``on_exhausted`` mode is ``"raise"``; the ``"flag-and-propagate"``
    mode records the exhaustion on the layer outcome instead.
    """
