"""ABFT schemes: global, thread-level (one/two-sided), replication.

Every scheme implements the :class:`~repro.abft.base.Scheme` interface:

* ``plan`` — the scheme's resource footprint (kernels with extra
  Tensor-Core FLOPs, ALU ops, bytes, registers, launches) used by the
  latency model to price execution-time overhead;
* ``execute`` — numeric protected GEMM over real data, applying injected
  faults and evaluating the scheme's consistency checks.

Numeric execution is backed by the prepared-execution engine:
``scheme.prepare(a, b)`` does the fault-invariant work once and the
returned :class:`~repro.abft.base.PreparedExecution` runs whole
batches of fault trials per NumPy dispatch (``inject_batch``, with
``inject`` as the single-trial wrapper); ``scheme.prepare_weights(b,
m=...)`` additionally caches the m-independent weight-side state
across activations of any row count.
"""

from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedCache,
    PreparedExecution,
    PreparedWeights,
    Scheme,
    SchemePlan,
)
from .detection import CheckVerdict, compare_checksums, compare_checksums_batch
from .none import NoProtection
from .global_abft import GlobalABFT
from .thread_onesided import ThreadLevelOneSided
from .thread_twosided import ThreadLevelTwoSided
from .replication import ReplicationSingleAccumulator, ReplicationTraditional
from .multi_fault import MultiChecksumGlobalABFT

_SCHEME_CLASSES = (
    NoProtection,
    GlobalABFT,
    ThreadLevelOneSided,
    ThreadLevelTwoSided,
    ReplicationTraditional,
    ReplicationSingleAccumulator,
)


def get_scheme(name: str) -> Scheme:
    """Instantiate a scheme by its registry name."""
    from ..errors import ConfigurationError

    table = {cls.name: cls for cls in _SCHEME_CLASSES}
    try:
        return table[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown ABFT scheme {name!r}; known: {sorted(table)}"
        ) from None


def list_schemes() -> list[str]:
    """Registry names of all concrete schemes."""
    return sorted(cls.name for cls in _SCHEME_CLASSES)


def scheme_from_token(token: str) -> Scheme:
    """Instantiate a scheme from its deployment token.

    A token is the registry name, optionally followed by ``:`` and the
    scheme's constructor argument — the serialized form deployment
    plans and the CLI use, e.g. ``"global"``, ``"thread_onesided"``,
    ``"global_multi:4"`` (four independent checksums).  The single
    place that turns scheme *names* into scheme *instances*: the policy
    layer, the CLI, and the experiment drivers all route through it.
    """
    from ..errors import ConfigurationError

    name, sep, arg = token.partition(":")
    if name == MultiChecksumGlobalABFT.name:
        if not sep:
            return MultiChecksumGlobalABFT()
        try:
            checksums = int(arg)
        except ValueError:
            raise ConfigurationError(
                f"malformed scheme token {token!r}: {name!r} takes an "
                f"integer checksum count, e.g. '{name}:2'"
            ) from None
        return MultiChecksumGlobalABFT(checksums)
    if name not in set(list_schemes()):
        # The token namespace is the registry plus global_multi;
        # get_scheme's error would omit the latter and steer a typo'd
        # user away from the scheme they meant.
        raise ConfigurationError(
            f"unknown ABFT scheme {name!r}; known: "
            f"{sorted([*list_schemes(), MultiChecksumGlobalABFT.name])}"
        )
    if sep:
        raise ConfigurationError(
            f"malformed scheme token {token!r}: scheme {name!r} takes no "
            f"constructor argument"
        )
    return get_scheme(name)


def scheme_token(scheme: Scheme) -> str:
    """The deployment token that round-trips ``scheme``.

    Inverse of :func:`scheme_from_token`: folds constructor arguments
    that change the scheme's prepared state (the same ones
    :attr:`Scheme.cache_token` commits to) into the serialized name.
    """
    if isinstance(scheme, MultiChecksumGlobalABFT):
        return f"{scheme.name}:{scheme.num_checksums}"
    return scheme.name


__all__ = [
    "Scheme",
    "SchemePlan",
    "PlannedKernel",
    "ExecutionOutcome",
    "PreparedCache",
    "PreparedExecution",
    "PreparedWeights",
    "CheckVerdict",
    "compare_checksums",
    "compare_checksums_batch",
    "NoProtection",
    "GlobalABFT",
    "ThreadLevelOneSided",
    "ThreadLevelTwoSided",
    "ReplicationTraditional",
    "ReplicationSingleAccumulator",
    "MultiChecksumGlobalABFT",
    "get_scheme",
    "list_schemes",
    "scheme_from_token",
    "scheme_token",
]
