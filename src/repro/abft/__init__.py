"""ABFT schemes: global, thread-level (one/two-sided), replication.

Every scheme implements the :class:`~repro.abft.base.Scheme` interface:

* ``plan`` — the scheme's resource footprint (kernels with extra
  Tensor-Core FLOPs, ALU ops, bytes, registers, launches) used by the
  latency model to price execution-time overhead;
* ``execute`` — numeric protected GEMM over real data, applying injected
  faults and evaluating the scheme's consistency checks.

Numeric execution is backed by the prepared-execution engine:
``scheme.prepare(a, b)`` does the fault-invariant work once and the
returned :class:`~repro.abft.base.PreparedExecution` runs whole
batches of fault trials per NumPy dispatch (``inject_batch``, with
``inject`` as the single-trial wrapper); ``scheme.prepare_weights(b,
m=...)`` additionally caches the m-independent weight-side state
across activations of any row count.
"""

from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedCache,
    PreparedExecution,
    PreparedWeights,
    Scheme,
    SchemePlan,
)
from .detection import CheckVerdict, compare_checksums, compare_checksums_batch
from .none import NoProtection
from .global_abft import GlobalABFT
from .thread_onesided import ThreadLevelOneSided
from .thread_twosided import ThreadLevelTwoSided
from .replication import ReplicationSingleAccumulator, ReplicationTraditional
from .multi_fault import MultiChecksumGlobalABFT

_SCHEME_CLASSES = (
    NoProtection,
    GlobalABFT,
    ThreadLevelOneSided,
    ThreadLevelTwoSided,
    ReplicationTraditional,
    ReplicationSingleAccumulator,
)


def get_scheme(name: str, *, dtype: str = "fp16") -> Scheme:
    """Instantiate a scheme by its registry name (on either pipeline)."""
    from ..errors import ConfigurationError

    table = {cls.name: cls for cls in _SCHEME_CLASSES}
    try:
        cls = table[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown ABFT scheme {name!r}; known: {sorted(table)}"
        ) from None
    return cls(dtype=dtype)


def split_dtype_token(token: str) -> tuple[str, str]:
    """Split a deployment token into ``(scheme_part, dtype)``.

    The ``@dtype`` suffix selects the numeric pipeline:
    ``"global@int8"`` is global ABFT over the INT8 quantized executor;
    no suffix means FP16.

    Examples
    --------
    >>> from repro.abft import split_dtype_token
    >>> split_dtype_token("global_multi:2@int8")
    ('global_multi:2', 'int8')
    >>> split_dtype_token("thread_onesided")
    ('thread_onesided', 'fp16')
    """
    from ..errors import ConfigurationError

    base, sep, dtype = token.partition("@")
    if not sep:
        return token, "fp16"
    if dtype not in ("fp16", "int8"):
        raise ConfigurationError(
            f"malformed scheme token {token!r}: unknown dtype {dtype!r} "
            f"(expected fp16|int8)"
        )
    return base, dtype


def list_schemes() -> list[str]:
    """Registry names of all concrete schemes."""
    return sorted(cls.name for cls in _SCHEME_CLASSES)


def scheme_from_token(token: str) -> Scheme:
    """Instantiate a scheme from its deployment token.

    A token is the registry name, optionally followed by ``:`` and the
    scheme's constructor argument, optionally followed by ``@`` and the
    pipeline dtype — the serialized form deployment plans and the CLI
    use, e.g. ``"global"``, ``"thread_onesided@int8"``,
    ``"global_multi:4"`` (four independent checksums).  The single
    place that turns scheme *names* into scheme *instances*: the policy
    layer, the CLI, and the experiment drivers all route through it.

    Examples
    --------
    >>> from repro.abft import scheme_from_token
    >>> scheme_from_token("global@int8").dtype
    'int8'
    >>> scheme_from_token("global_multi:3").num_checksums
    3
    """
    from ..errors import ConfigurationError

    base, dtype = split_dtype_token(token)
    name, sep, arg = base.partition(":")
    if name == MultiChecksumGlobalABFT.name:
        if not sep:
            return MultiChecksumGlobalABFT(dtype=dtype)
        try:
            checksums = int(arg)
        except ValueError:
            raise ConfigurationError(
                f"malformed scheme token {token!r}: {name!r} takes an "
                f"integer checksum count, e.g. '{name}:2'"
            ) from None
        return MultiChecksumGlobalABFT(checksums, dtype=dtype)
    if name not in set(list_schemes()):
        # The token namespace is the registry plus global_multi;
        # get_scheme's error would omit the latter and steer a typo'd
        # user away from the scheme they meant.
        raise ConfigurationError(
            f"unknown ABFT scheme {name!r}; known: "
            f"{sorted([*list_schemes(), MultiChecksumGlobalABFT.name])}"
        )
    if sep:
        raise ConfigurationError(
            f"malformed scheme token {token!r}: scheme {name!r} takes no "
            f"constructor argument"
        )
    return get_scheme(name, dtype=dtype)


def scheme_token(scheme: Scheme) -> str:
    """The deployment token that round-trips ``scheme``.

    Inverse of :func:`scheme_from_token`: folds constructor arguments
    that change the scheme's prepared state (the same ones
    :attr:`Scheme.cache_token` commits to) into the serialized name,
    including the ``@int8`` pipeline suffix.
    """
    if isinstance(scheme, MultiChecksumGlobalABFT):
        base = f"{scheme.name}:{scheme.num_checksums}"
    else:
        base = scheme.name
    if scheme.dtype != "fp16":
        return f"{base}@{scheme.dtype}"
    return base


__all__ = [
    "Scheme",
    "SchemePlan",
    "PlannedKernel",
    "ExecutionOutcome",
    "PreparedCache",
    "PreparedExecution",
    "PreparedWeights",
    "CheckVerdict",
    "compare_checksums",
    "compare_checksums_batch",
    "NoProtection",
    "GlobalABFT",
    "ThreadLevelOneSided",
    "ThreadLevelTwoSided",
    "ReplicationTraditional",
    "ReplicationSingleAccumulator",
    "MultiChecksumGlobalABFT",
    "get_scheme",
    "list_schemes",
    "scheme_from_token",
    "scheme_token",
    "split_dtype_token",
]
