"""Thread-level replication baselines (paper §4).

Two variants the paper explored before settling on ABFT:

* **Traditional replication**: every MMA is executed twice and the two
  accumulator sets compared element by element.  Doubling the ``Mt*Nt``
  output registers per thread wrecks occupancy, which serializes memory
  latency — the paper found "significant slowdowns" from exactly this.
* **Replicated MMA, single accumulation**: the redundant MMAs all
  accumulate into a *single* set of four registers whose final sum must
  equal the sum of the original ``Mt*Nt`` accumulators.  Occupancy is
  preserved, but the doubled Tensor-Core work still costs heavily on
  compute-bound layers (Fig. 12's replication spike beyond size 512).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import DEFAULT_CONSTANTS, DetectionConstants, ModelConstants
from ..faults.injector import (
    FaultSites,
    apply_fault_to_accumulator,
    corrupted_value,
)
from ..faults.model import FaultSpec
from ..gemm.counters import mainloop_cost
from ..gemm.executor import TiledGemm
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig
from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedExecution,
    Scheme,
    SchemePlan,
)
from .checksums import (
    splice_thread_tile_sums,
    thread_tile_struck_sums,
    thread_tile_sums,
    thread_tile_sums_batch,
)
from .detection import compare_checksums_batch


class ReplicationTraditional(Scheme):
    """Duplicate MMAs into a second full accumulator set; compare all.

    No sparse re-reduction path: the check *is* an elementwise compare
    of the full output against the replica — there is no output-side
    reduction whose slices a fault could localize to.
    """

    name = "replication_traditional"

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        cost = mainloop_cost(problem, tile, constants)
        # Mt*Nt/2 extra MMAs per step: Tensor-Core work doubles.
        extra_tc = cost.tc_flops
        # Final element-wise compare of the two accumulator sets.
        final_check_alu = cost.threads_total * (tile.mt * tile.nt)
        kernel = PlannedKernel(
            label="mainloop+replication",
            work=cost.to_kernel_work(
                extra_tc_flops=extra_tc,
                extra_alu_ops=final_check_alu,
                # The second accumulator set: the occupancy killer.
                extra_registers=tile.mt * tile.nt,
                constants=constants,
            ),
            time_multiplier=1.0 + constants.thread_abft_fixed_fraction,
        )
        return SchemePlan(self.name, problem, tile, (kernel,))

    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        # The replica runs the identical MMA sequence on the identical
        # fragments, so absent faults it reproduces the accumulator
        # exactly; checksum-path faults corrupt the replica instead.
        struck = [
            (i, specs)
            for i, faults in enumerate(faults_batch)
            if (specs := self._checksum_faults(faults))
        ]
        replicas = prepared.c_clean[None]
        if struck:
            replicas = np.broadcast_to(
                prepared.c_clean, c_batch.shape
            ).copy()
            for i, specs in struck:
                for spec in specs:
                    apply_fault_to_accumulator(replicas[i], spec)

        # Identical operation orders on both sides: tolerance only needs
        # to cover non-associativity-free comparison, i.e. none — but we
        # keep the standard machinery with a magnitude bound from |C|.
        magnitudes = np.maximum(np.abs(replicas), np.abs(c_batch))
        verdicts = compare_checksums_batch(
            replicas,
            c_batch,
            n_terms=1,
            magnitudes=magnitudes,
            constants=detection,
        )
        return self._outcome_batch(prepared, c_batch, verdicts, faults_batch)


class ReplicationSingleAccumulator(Scheme):
    """Duplicate MMAs into one 4-register accumulator; compare sums."""

    name = "replication_single"
    supports_sparse = True

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        cost = mainloop_cost(problem, tile, constants)
        extra_tc = cost.tc_flops
        # Final check: sum Mt*Nt original registers + 4 replica
        # registers, one compare.
        final_check_alu = cost.threads_total * (tile.mt * tile.nt + 4 + 1)
        kernel = PlannedKernel(
            label="mainloop+replication",
            work=cost.to_kernel_work(
                extra_tc_flops=extra_tc,
                extra_alu_ops=final_check_alu,
                extra_registers=4,
                constants=constants,
            ),
            time_multiplier=1.0 + constants.thread_abft_fixed_fraction,
        )
        return SchemePlan(self.name, problem, tile, (kernel,))

    def _prepare_state(
        self,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        weight_state: None,
    ) -> tuple[np.ndarray, np.ndarray]:
        # The replica's 4-register sum equals the clean per-tile sum;
        # both it and the |C| magnitude bound are fault-invariant.
        replica_sums = thread_tile_sums(executor, c_clean).astype(np.float64)
        view = executor.thread_tile_view(np.abs(c_clean))
        magnitudes = view.sum(axis=(1, 3), dtype=np.float64)
        return replica_sums, magnitudes

    def _references_batch(
        self,
        prepared: PreparedExecution,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> np.ndarray:
        """Per-trial replica sums; checksum-path faults corrupt the replica."""
        executor = prepared.executor
        chosen = prepared.tile
        clean_sums, _ = prepared.state
        struck = [
            (i, specs)
            for i, faults in enumerate(faults_batch)
            if (specs := self._checksum_faults(faults))
        ]
        replica_sums = clean_sums[None]
        if struck:
            replica_sums = np.broadcast_to(
                clean_sums, (len(faults_batch), *clean_sums.shape)
            ).copy()
            for i, specs in struck:
                for spec in specs:
                    tile_row = min(spec.row // chosen.mt, executor.m_tiles - 1)
                    tile_col = min(spec.col // chosen.nt, executor.n_tiles - 1)
                    replica_sums[i, tile_row, tile_col] = corrupted_value(
                        float(replica_sums[i, tile_row, tile_col]), spec
                    )
        return replica_sums

    def _verdicts(
        self,
        prepared: PreparedExecution,
        replica_sums: np.ndarray,
        original_sums: np.ndarray,
        detection: DetectionConstants,
    ):
        chosen = prepared.tile
        _, magnitudes = prepared.state
        return compare_checksums_batch(
            replica_sums,
            original_sums,
            n_terms=chosen.mt * chosen.nt,
            magnitudes=magnitudes,
            constants=detection,
        )

    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        original_sums = thread_tile_sums_batch(prepared.executor, c_batch)
        verdicts = self._walk_verdicts(
            prepared, original_sums, faults_batch, detection
        )
        return self._outcome_batch(prepared, c_batch, verdicts, faults_batch)

    # -- sparse re-reduction hooks -------------------------------------
    def _clean_output_reductions(self, prepared: PreparedExecution) -> np.ndarray:
        return thread_tile_sums(prepared.executor, prepared.c_clean)

    def _clean_comparison_inputs(self, prepared: PreparedExecution):
        chosen = prepared.tile
        clean_sums, magnitudes = prepared.state
        return (
            clean_sums,
            prepared.clean_reductions,
            chosen.mt * chosen.nt,
            magnitudes,
        )

    def _struck_checks(self, prepared: PreparedExecution, sites: FaultSites):
        return thread_tile_struck_sums(
            prepared.executor, prepared.c_clean, sites
        )

    def _sparse_output_reduction(
        self, prepared: PreparedExecution, sites: FaultSites
    ) -> np.ndarray:
        return splice_thread_tile_sums(
            prepared.executor, prepared.clean_reductions, prepared.c_clean, sites
        )
