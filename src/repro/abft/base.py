"""Scheme interface shared by all redundant-execution approaches.

A scheme answers two questions:

* ``plan`` — *what would it cost?*  Returns the kernels the scheme
  launches with their resource demands, which ``repro.gpu.timing``
  prices on a device.  This is the path every benchmark uses.
* ``execute`` — *does it actually detect faults?*  Runs the protected
  GEMM numerically on real data (optionally with injected faults) and
  evaluates the scheme's consistency checks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..config import (
    DEFAULT_CONSTANTS,
    DEFAULT_DETECTION,
    DetectionConstants,
    ModelConstants,
)
from ..errors import ShapeError
from ..faults.model import FaultPath, FaultSpec
from ..gemm.executor import TiledGemm
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig, select_tile
from ..gpu.specs import GPUSpec
from ..gpu.timing import KernelWork, time_kernel
from .detection import CheckVerdict


@dataclass(frozen=True)
class PlannedKernel:
    """One kernel launch in a scheme's execution plan.

    Attributes
    ----------
    label:
        Human-readable role, e.g. ``"mainloop"`` or ``"abft-check"``.
    work:
        Resource demands for the latency model.
    visible_fraction:
        Fraction of this kernel's time that lands on the layer's
        critical path.  Global ABFT's check kernel overlaps the next
        layer (paper §2.5 step 5), so only part of it is visible.
    time_multiplier:
        Small fixed relative cost not captured by the counters (e.g.
        thread-level ABFT's final per-thread check serialization).
    """

    label: str
    work: KernelWork
    visible_fraction: float = 1.0
    time_multiplier: float = 1.0


@dataclass(frozen=True)
class SchemePlan:
    """All kernels a scheme launches to execute one protected GEMM."""

    scheme: str
    problem: GemmProblem
    tile: TileConfig
    kernels: tuple[PlannedKernel, ...]

    def modeled_time(
        self,
        spec: GPUSpec,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> float:
        """Visible execution time of the whole plan on ``spec``, seconds."""
        total = 0.0
        for kernel in self.kernels:
            timing = time_kernel(spec, kernel.work, constants)
            total += timing.total_s * kernel.visible_fraction * kernel.time_multiplier
        return total

    def kernel_timings(
        self,
        spec: GPUSpec,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> dict[str, float]:
        """Visible time per kernel label (diagnostics)."""
        out: dict[str, float] = {}
        for kernel in self.kernels:
            timing = time_kernel(spec, kernel.work, constants)
            out[kernel.label] = (
                timing.total_s * kernel.visible_fraction * kernel.time_multiplier
            )
        return out


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of numerically executing a protected GEMM.

    Attributes
    ----------
    scheme:
        Scheme registry name.
    c:
        Logical ``M x N`` output quantized to FP16 (what the next layer
        consumes).
    c_accumulator:
        Padded FP32 accumulator grid after fault application.
    verdict:
        Consistency-check outcome (None for the unprotected scheme).
    injected:
        The fault specs that were applied.
    """

    scheme: str
    c: np.ndarray
    c_accumulator: np.ndarray
    verdict: CheckVerdict | None
    injected: tuple[FaultSpec, ...] = ()

    @property
    def detected(self) -> bool:
        """True if the scheme's checks flagged an inconsistency."""
        return bool(self.verdict is not None and self.verdict.detected)


class Scheme(abc.ABC):
    """Abstract redundant-execution scheme."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether the scheme performs any checking at all.
    protects: bool = True

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        """Resource plan for one protected GEMM under this scheme."""

    @abc.abstractmethod
    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        faults: Sequence[FaultSpec] = (),
        detection: DetectionConstants = DEFAULT_DETECTION,
    ) -> ExecutionOutcome:
        """Numerically execute the protected GEMM with optional faults."""

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _setup(
        a: np.ndarray, b: np.ndarray, tile: TileConfig | None
    ) -> tuple[GemmProblem, TileConfig, TiledGemm, np.ndarray, np.ndarray, np.ndarray]:
        """Validate operands, pick a tile, execute the clean GEMM."""
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError("operands must be 2-D matrices")
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
        problem = GemmProblem(a.shape[0], b.shape[1], a.shape[1])
        chosen = tile if tile is not None else select_tile(problem)
        executor = TiledGemm(problem, chosen)
        a_pad = executor.pad_a(a)
        b_pad = executor.pad_b(b)
        c_clean = executor.multiply(a_pad, b_pad)
        return problem, chosen, executor, a_pad, b_pad, c_clean

    @staticmethod
    def _apply_original_faults(
        c_clean: np.ndarray, faults: Iterable[FaultSpec]
    ) -> np.ndarray:
        """Copy of the accumulator with original-path faults applied."""
        from ..faults.injector import apply_fault_to_accumulator

        c_faulty = c_clean.copy()
        for spec in faults:
            if spec.path is FaultPath.ORIGINAL:
                apply_fault_to_accumulator(c_faulty, spec)
        return c_faulty

    @staticmethod
    def _checksum_faults(faults: Iterable[FaultSpec]) -> list[FaultSpec]:
        return [f for f in faults if f.path is FaultPath.CHECKSUM]

    @staticmethod
    def _to_fp16(values: np.ndarray) -> np.ndarray:
        """Quantize the epilogue output to FP16 storage.

        Faults can push accumulator values past the FP16 range; the
        resulting inf is the value the hardware would store, so the
        overflow is expected rather than a numerical error.
        """
        with np.errstate(over="ignore"):
            return values.astype(np.float16)
