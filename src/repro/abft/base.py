"""Scheme interface shared by all redundant-execution approaches.

A scheme answers two questions:

* ``plan`` — *what would it cost?*  Returns the kernels the scheme
  launches with their resource demands, which ``repro.gpu.timing``
  prices on a device.  This is the path every benchmark uses.
* ``execute`` — *does it actually detect faults?*  Runs the protected
  GEMM numerically on real data (optionally with injected faults) and
  evaluates the scheme's consistency checks.

Numeric execution is split into a **prepared-execution engine**: all
fault-invariant work (operand padding, tile selection, the clean FP32
GEMM, operand-side checksum/magnitude reductions) lives in a
:class:`PreparedExecution` built once by :meth:`Scheme.prepare`, and
each fault trial only pays the injection half — a copy of the
accumulator, the output-side re-reduction, and the verdict.

Injection itself is **batched**: :meth:`PreparedExecution.inject_batch`
stacks N trials' accumulators into one ``(N, m, n)`` array, applies all
faults with vectorized fancy indexing, re-reduces the output side of
every trial in single NumPy calls, and renders all verdicts at once.
:meth:`PreparedExecution.inject` is the ``N == 1`` wrapper and
``execute`` a thin ``prepare(...).inject(...)`` wrapper, so one-shot
callers are untouched while campaigns run hundreds of trials per NumPy
dispatch.  Because both paths share one set of batch-aware reducers
(and NumPy applies the identical core reduction per stacked slice),
``inject_batch`` is bit-identical to sequential ``inject`` calls.

On top of the dense batch sits **sparse re-reduction** (DESIGN.md
§1.3): a single-element fault perturbs exactly one reduction slice —
one row partial for the global schemes, one row/tile sum for the
thread-level ones — so schemes that declare :attr:`Scheme.
supports_sparse` derive each trial's struck slices from its fault
coordinates (:func:`repro.faults.injector.faulted_site_values`), fully
recompute *only those slices* in the dense composition order, and
splice them into broadcast copies of the clean check arrays.  The
stacked accumulator is never materialized on this path — outcomes
build theirs lazily on first access — yet every verdict and every
accumulator element is bit-identical to the dense batch, because each
slice is recomputed by the identical core reduction on identically
laid-out data.

One level further, :class:`PreparedWeights` carries just the
weight-side state (padded ``B`` + weight checksums), which is constant
across inference requests (paper §2.5), m-independent given the tile,
and therefore reusable across *different* activations — including
activation batches of different row counts.
"""

from __future__ import annotations

import abc
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..config import (
    DEFAULT_CONSTANTS,
    DEFAULT_DETECTION,
    INT8_DETECTION,
    DetectionConstants,
    ModelConstants,
)
from ..errors import ConfigurationError, ShapeError
from ..faults.injector import (
    FaultSites,
    apply_fault_to_accumulator,
    faulted_site_values,
    subset_sites,
)
from ..faults.model import FaultPath, FaultSpec
from ..gemm.executor import TiledGemm, executor_for
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig, select_tile
from ..gpu.specs import GPUSpec
from ..gpu.timing import KernelWork, time_kernel
from .detection import (
    CheckVerdict,
    compare_checksums_sparse,
    prepare_clean_comparison,
)


@dataclass(frozen=True)
class PlannedKernel:
    """One kernel launch in a scheme's execution plan.

    Attributes
    ----------
    label:
        Human-readable role, e.g. ``"mainloop"`` or ``"abft-check"``.
    work:
        Resource demands for the latency model.
    visible_fraction:
        Fraction of this kernel's time that lands on the layer's
        critical path.  Global ABFT's check kernel overlaps the next
        layer (paper §2.5 step 5), so only part of it is visible.
    time_multiplier:
        Small fixed relative cost not captured by the counters (e.g.
        thread-level ABFT's final per-thread check serialization).
    """

    label: str
    work: KernelWork
    visible_fraction: float = 1.0
    time_multiplier: float = 1.0


@dataclass(frozen=True)
class SchemePlan:
    """All kernels a scheme launches to execute one protected GEMM."""

    scheme: str
    problem: GemmProblem
    tile: TileConfig
    kernels: tuple[PlannedKernel, ...]

    def modeled_time(
        self,
        spec: GPUSpec,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> float:
        """Visible execution time of the whole plan on ``spec``, seconds."""
        total = 0.0
        for kernel in self.kernels:
            timing = time_kernel(spec, kernel.work, constants)
            total += timing.total_s * kernel.visible_fraction * kernel.time_multiplier
        return total

    def kernel_timings(
        self,
        spec: GPUSpec,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> dict[str, float]:
        """Visible time per kernel label (diagnostics)."""
        out: dict[str, float] = {}
        for kernel in self.kernels:
            timing = time_kernel(spec, kernel.work, constants)
            out[kernel.label] = (
                timing.total_s * kernel.visible_fraction * kernel.time_multiplier
            )
        return out


class ExecutionOutcome:
    """Result of numerically executing a protected GEMM.

    Attributes
    ----------
    scheme:
        Scheme registry name.
    c:
        Logical ``M x N`` output in the FP16 domain (what the next layer
        consumes), lowered by the executor's epilogue — a plain FP16
        downcast on the FP16 pipeline, the dequantizing rescale on the
        INT8 one.  Computed lazily from the accumulator on first
        access: fault campaigns read only verdicts and accumulators, so
        batched trials skip the epilogue entirely.
    c_accumulator:
        Padded accumulator grid after fault application (FP32 on the
        FP16 pipeline, INT32 on the quantized one).  Sparse
        re-reduction never materializes per-trial accumulators, so
        outcomes it produces build this lazily on first access (clean
        copy plus the scalar fault applications — bit-identical to the
        dense batch's slice); campaigns that read only verdicts and
        fault sites never pay for it.
    verdict:
        Consistency-check outcome (None for the unprotected scheme).
    injected:
        The fault specs that were applied.
    """

    __slots__ = (
        "scheme",
        "verdict",
        "injected",
        "_crop",
        "_c",
        "_acc",
        "_acc_factory",
        "_epilogue",
    )

    def __init__(
        self,
        scheme: str,
        c_accumulator: np.ndarray | None,
        verdict: CheckVerdict | None,
        injected: tuple[FaultSpec, ...] = (),
        *,
        crop: tuple[int, int] | None = None,
        acc_factory: Callable[[], np.ndarray] | None = None,
        epilogue: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        if c_accumulator is None and acc_factory is None:
            raise ConfigurationError(
                "ExecutionOutcome needs an accumulator or a factory for one"
            )
        self.scheme = scheme
        self._acc = c_accumulator
        self._acc_factory = acc_factory
        self.verdict = verdict
        self.injected = tuple(injected)
        # Reading the shape materializes a factory-only accumulator, so
        # lazy producers always pass an explicit crop.
        self._crop = crop if crop is not None else self.c_accumulator.shape
        self._c: np.ndarray | None = None
        self._epilogue = epilogue

    @property
    def c_accumulator(self) -> np.ndarray:
        if self._acc is None:
            self._acc = self._acc_factory()
        return self._acc

    @property
    def c(self) -> np.ndarray:
        m, n = self._crop
        if self._c is None:
            lower = self._epilogue if self._epilogue is not None else Scheme._to_fp16
            self._c = lower(self.c_accumulator[:m, :n])
        return self._c

    @property
    def detected(self) -> bool:
        """True if the scheme's checks flagged an inconsistency."""
        return bool(self.verdict is not None and self.verdict.detected)

    def __repr__(self) -> str:
        return (
            f"ExecutionOutcome(scheme={self.scheme!r}, detected={self.detected}, "
            f"injected={self.injected!r})"
        )


@dataclass(frozen=True)
class PreparedWeights:
    """Weight-side fault-invariant state, reusable across activations.

    Built once per (scheme, ``B``, tile) by
    :meth:`Scheme.prepare_weights`; :meth:`Scheme.prepare` consumes it to
    skip ``B``-padding and weight-side checksum reductions when the same
    weights multiply many activations (repeated NN forward passes,
    device sweeps).  Results are bit-identical to uncached preparation.

    The state is **m-independent**: padding of ``B`` and every
    weight-side reduction depend only on ``(k, n)`` and the tile, so one
    entry serves activations of *any* row count.  The flip side is that
    the tile — normally selected per ``m`` — is pinned at build time:
    consuming the state at a different ``m`` executes with the pinned
    tile rather than the one ``select_tile`` would pick fresh.

    Like any prepared plan, the state *stands in* for ``B``: consumers
    validate geometry but deliberately never re-read the ``b`` operand
    (that is the work being amortized), so passing a different
    same-shape matrix — or mutating ``B`` after preparation — yields
    silently stale results.  Rebuild the state when weights change.

    Attributes
    ----------
    scheme:
        Registry name of the scheme the state was built for.
    k, n:
        Logical weight-matrix shape the padded ``B`` commits to.
    tile:
        The tile configuration the padding and reductions commit to.
    b_pad:
        Zero-padded weight matrix in the pipeline's storage dtype (FP16,
        or quantized INT8 for int8 schemes).
    weight_state:
        Scheme-specific checksum arrays (e.g.
        :class:`~repro.abft.checksums.GlobalWeightChecksums`), or None
        for schemes without weight-side reductions.
    b_scale:
        Per-tensor quantization scale of ``b_pad`` (int8 pipelines
        only) — the executor consuming the state needs it to dequantize
        the epilogue, since ``b`` itself is never re-read.
    dtype:
        Pipeline dtype the state was built under; consuming it from a
        scheme of a different dtype is a configuration error (the
        padded bytes are not interchangeable).
    """

    scheme: str
    k: int
    n: int
    tile: TileConfig
    b_pad: np.ndarray
    weight_state: Any = None
    b_scale: float | None = None
    dtype: str = "fp16"


class PreparedExecution:
    """All fault-invariant state of one protected GEMM.

    Owns the padded operands, the chosen tile, the clean FP32
    accumulator, and the scheme's checksum/magnitude arrays.
    :meth:`inject_batch` applies N trials' faults to a stacked *copy* of
    the accumulator, re-reduces the output side of all trials in single
    NumPy calls, and renders all verdicts — it never re-runs the GEMM or
    the operand-side reductions, so a campaign of N trials pays the
    expensive half exactly once and the Python dispatch overhead once
    per batch instead of once per trial.

    Schemes with :attr:`Scheme.supports_sparse` additionally get
    **sparse re-reduction**: :attr:`clean_reductions` caches the clean
    output-side check arrays (built lazily, once), and sparse batches
    recompute only the reduction slices each trial's faults actually
    struck — see the module docstring and DESIGN.md §1.3.
    """

    __slots__ = (
        "scheme",
        "problem",
        "tile",
        "executor",
        "a_pad",
        "b_pad",
        "c_clean",
        "state",
        "_clean_reductions",
        "_clean_comparisons",
        "_lazy_lock",
    )

    def __init__(
        self,
        scheme: "Scheme",
        problem: GemmProblem,
        tile: TileConfig,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        state: Any,
    ) -> None:
        self.scheme = scheme
        self.problem = problem
        self.tile = tile
        self.executor = executor
        self.a_pad = a_pad
        self.b_pad = b_pad
        self.c_clean = c_clean
        self.state = state
        self._clean_reductions: Any = None
        self._clean_comparisons: dict[DetectionConstants, Any] = {}
        # Prepared state is shared across campaigns and threads (via
        # PreparedCache); the lazily built sparse-path state below must
        # build exactly once even under racing readers.  Reentrant:
        # building the comparison state reads clean_reductions through
        # the scheme hook while the lock is held.
        self._lazy_lock = threading.RLock()

    def __getstate__(self) -> dict:
        """Slot state minus the (unpicklable) lock, for shard export."""
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_lazy_lock"
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._lazy_lock = threading.RLock()

    @property
    def clean_reductions(self) -> Any:
        """Clean output-side check arrays for sparse splicing.

        Scheme-specific (row partials, row sums, or tile sums of the
        *clean* accumulator), built by the scheme's
        :meth:`Scheme._clean_output_reductions` hook on first sparse
        batch and cached for the lifetime of the prepared state.
        Thread-safe: racing readers build it exactly once.
        """
        if self._clean_reductions is None:  # repro: ignore[RL002] double-checked fast path
            with self._lazy_lock:
                if self._clean_reductions is None:
                    self._clean_reductions = (
                        self.scheme._clean_output_reductions(self)
                    )
        return self._clean_reductions  # repro: ignore[RL002] GIL-atomic read after publication

    def clean_comparison(self, detection: "DetectionConstants | None"):
        """Fault-invariant comparison state for sparse verdicts.

        The scheme's clean checksum-vs-output comparison
        (:class:`repro.abft.detection.CleanComparison`), built once per
        detection-constants value and cached — the other half of what
        sparse batches splice against.  ``None`` resolves to the
        scheme's pipeline default, the same rule ``inject`` applies.
        Thread-safe: racing readers build each per-constants entry
        exactly once.
        """
        if detection is None:
            detection = self.scheme.default_detection
        cached = self._clean_comparisons.get(detection)  # repro: ignore[RL002] fast path
        if cached is None:
            with self._lazy_lock:
                cached = self._clean_comparisons.get(detection)
                if cached is None:
                    lhs, rhs, n_terms, magnitudes = (
                        self.scheme._clean_comparison_inputs(self)
                    )
                    cached = prepare_clean_comparison(
                        lhs, rhs, n_terms=n_terms, magnitudes=magnitudes,
                        constants=detection,
                    )
                    self._clean_comparisons[detection] = cached
        return cached

    def inject(
        self,
        faults: Sequence[FaultSpec] = (),
        *,
        detection: DetectionConstants | None = None,
    ) -> ExecutionOutcome:
        """One fault trial against the prepared state.

        Bit-identical to ``scheme.execute(a, b, faults=...)`` with the
        same tile, at a fraction of the cost.  Repeated calls are
        independent: each gets a fresh accumulator copy.  ``detection``
        defaults (``None``) to the scheme's
        :attr:`~Scheme.default_detection` — the FP16 rounding-noise
        tolerance or the INT8 exact half-ULP policy.
        """
        return self.inject_batch((faults,), detection=detection)[0]

    def inject_batch(
        self,
        specs_batch: Sequence[Sequence[FaultSpec]],
        *,
        detection: DetectionConstants | None = None,
        out: np.ndarray | None = None,
        sparse: bool | None = None,
        sites: FaultSites | None = None,
    ) -> list[ExecutionOutcome]:
        """N independent fault trials against the prepared state at once.

        ``specs_batch[i]`` holds trial ``i``'s fault specs (empty for a
        clean trial).  On the dense path all trials' accumulators are
        stacked into one ``(N, m_full, n_full)`` array, faults land via
        vectorized fancy indexing, the output side is re-reduced for
        every trial in single NumPy calls, and all verdicts render at
        once — bit-identical, element for element, to N sequential
        :meth:`inject` calls with the same specs.

        ``sparse`` selects the re-reduction path: ``None`` (default)
        uses sparse re-reduction whenever the scheme supports it,
        ``False`` forces the dense batch, ``True`` demands sparse and
        raises :class:`~repro.errors.ConfigurationError` for schemes
        without a sparse path.  The sparse path recomputes only the
        reduction slices each trial's faults struck and never
        materializes the stacked accumulator (outcomes build theirs
        lazily on first ``c_accumulator`` access), but is — by the
        recompute-in-order contract, pinned by the hypothesis suite in
        ``tests/properties/test_sparse_reduction.py`` — bit-identical
        to the dense path.

        Dense memory scales with ``N * m_full * n_full`` FP32 values
        (plus the float64 reduction intermediates); callers running
        very large campaigns should chunk —
        :meth:`repro.faults.FaultCampaign.run` does.  ``out``, if
        given, is used as the dense stacked accumulator storage (shape
        ``(N, m_full, n_full)`` float32), letting such callers reuse
        one scratch buffer across chunks instead of faulting in fresh
        pages per call; the returned outcomes' ``c_accumulator`` arrays
        are then views into ``out`` and are invalidated when the buffer
        is next reused.  Sparse batches ignore ``out``.

        ``sites``, if given, must be the
        :func:`~repro.faults.injector.faulted_site_values` map of
        exactly ``specs_batch`` — callers that already derived it (the
        campaign runner shares one map between injection and record
        classification) pass it to skip the recomputation.  Only the
        sparse path consumes it.
        """
        faults_batch = [tuple(faults) for faults in specs_batch]
        if not faults_batch:
            return []
        if detection is None:
            detection = self.scheme.default_detection
        use_sparse = self.scheme.supports_sparse if sparse is None else sparse
        if use_sparse:
            if not self.scheme.supports_sparse:
                raise ConfigurationError(
                    f"scheme {self.scheme.name!r} has no sparse "
                    f"re-reduction path; call with sparse=False or None"
                )
            if sites is None:
                sites = faulted_site_values(self.c_clean, faults_batch)
            elif sites.n_trials != len(faults_batch):
                raise ConfigurationError(
                    f"precomputed sites cover {sites.n_trials} trials, "
                    f"batch has {len(faults_batch)}"
                )
            return self.scheme._finish_batch_sparse(
                self, sites, faults_batch, detection
            )
        c_batch = Scheme._apply_original_faults_batch(
            self.c_clean, faults_batch, out=out
        )
        return self.scheme._finish_batch(self, c_batch, faults_batch, detection)


class PreparedCache:
    """Cross-campaign cache of :class:`PreparedExecution` states.

    Parameter sweeps — several :class:`~repro.faults.FaultCampaign`
    instances over one problem, varying significance factors, detection
    constants, or per-trial fault counts — repeat the *identical*
    fault-invariant work per campaign: padding, tile selection, the
    clean GEMM, and the operand-side reductions depend only on
    ``(scheme, a, b, tile)``.  This cache keys prepared states by
    exactly that tuple — the scheme's :attr:`Scheme.cache_token`, a
    content digest of each operand, and the *resolved* tile (an
    explicit override and the tile ``select_tile`` would pick
    deduplicate to one entry) — so a sweep of N campaigns runs the
    expensive half exactly once, asserted in tests via
    ``EXECUTION_STATS``.  Lazily built sparse-path state
    (:attr:`PreparedExecution.clean_reductions`, the per-constants
    ``CleanComparison``) lives on the shared entry too, so later
    campaigns skip even that.

    Entries stand in for their operands exactly like any prepared plan:
    the digest is taken at :meth:`get` time, so *mutating* an operand
    array after a hit was cached is safe (the new content digests
    differently) — but the cached state must not be mutated by
    consumers, which no engine path does.

    The cache is thread-safe: an internal lock serializes :meth:`get`
    (including the miss-path ``prepare``, so racing getters of one key
    still run the clean GEMM exactly once), :meth:`clear`, and
    ``len``.  Campaigns on separate threads may therefore share one
    cache; the returned :class:`PreparedExecution` is read-only by
    contract and needs no further guarding.

    Parameters
    ----------
    maxsize:
        Optional LRU bound on the number of cached states (each holds
        padded operands plus the clean accumulator).  ``None`` —
        the default — keeps every entry, which is right for sweeps
        over a handful of problems.

    Example
    -------
    >>> import numpy as np
    >>> from repro.abft import GlobalABFT, PreparedCache
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((32, 16)).astype(np.float16)
    >>> b = rng.standard_normal((16, 8)).astype(np.float16)
    >>> cache = PreparedCache()
    >>> first = cache.get(GlobalABFT(), a, b)
    >>> cache.get(GlobalABFT(), a, b) is first  # same content: one entry
    True
    >>> len(cache)
    1
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ConfigurationError(
                f"maxsize must be positive or None, got {maxsize}"
            )
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, PreparedExecution] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _digest(arr: np.ndarray) -> bytes:
        """Content digest of one operand (dtype, shape, and bytes)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
        return h.digest()

    def key_for(
        self,
        scheme: "Scheme",
        a: np.ndarray,
        b: np.ndarray,
        tile: TileConfig | None = None,
        *,
        weights: PreparedWeights | None = None,
    ) -> tuple:
        """The cache key ``(scheme, a, b, tile)`` resolves to.

        ``weights``, when given, pins the tile exactly like
        :meth:`Scheme.prepare` would, so a miss prepared through the
        weight-side state and a plain hit resolve to the same entry.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if tile is None and weights is not None:
            tile = weights.tile
        if tile is None and a.ndim == 2 and b.ndim == 2 and a.shape[1] == b.shape[0]:
            tile = select_tile(GemmProblem(a.shape[0], b.shape[1], a.shape[1]))
        return (scheme.cache_token, self._digest(a), self._digest(b), tile)

    def get(
        self,
        scheme: "Scheme",
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        weights: PreparedWeights | None = None,
    ) -> PreparedExecution:
        """The shared prepared state for ``(scheme, a, b, tile)``.

        A hit returns the cached :class:`PreparedExecution` (prepared
        by an equivalent scheme on identical operand contents — the
        state is fault-invariant, so results are bit-identical to a
        private ``scheme.prepare``); a miss prepares, caches, and
        returns.  Malformed operands raise ``prepare``'s own errors.
        ``weights`` (from :meth:`Scheme.prepare_weights`, built from
        the same ``b``) lets a miss skip the weight-side padding and
        reductions, exactly like passing it to ``prepare`` — engines
        that amortize the weight side across activations keep that
        amortization on cache misses.
        """
        key = self.key_for(scheme, a, b, tile, weights=weights)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            self.misses += 1
            # prepare() runs inside the critical section deliberately:
            # concurrent getters of one key must not each pay (or
            # stat-count) the clean GEMM — the exactly-once contract
            # holds under threads just as it does sequentially.
            prepared = scheme.prepare(a, b, tile=tile, weights=weights)
            self._entries[key] = prepared
            if self.maxsize is not None and len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return prepared

    def clear(self) -> None:
        """Drop every cached state (hit/miss counters keep counting)."""
        with self._lock:
            self._entries.clear()


class Scheme(abc.ABC):
    """Abstract redundant-execution scheme.

    Every scheme executes on one of two numeric pipelines, chosen by the
    ``dtype`` constructor keyword: ``"fp16"`` (FP16 operands, FP32
    accumulation — the paper's configuration) or ``"int8"`` (per-tensor
    symmetric quantization, INT8 operands, exact INT32 accumulation,
    checksum reductions over the quantized domain).  All prepared
    /batched/sparse machinery is dtype-generic; the pipeline only
    changes the executor, the accumulator dtype, and the default
    detection constants.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether the scheme performs any checking at all.
    protects: bool = True

    #: Whether the scheme implements sparse re-reduction — a
    #: slice-decomposable output check whose struck slices can be
    #: recomputed alone (:meth:`_finish_batch_sparse`).  Schemes whose
    #: check is elementwise over the full output (replication) or
    #: nonexistent (none) leave this False and always run dense.
    supports_sparse: bool = False

    def __init__(self, *, dtype: str = "fp16") -> None:
        if dtype not in ("fp16", "int8"):
            raise ConfigurationError(
                f"unknown scheme dtype {dtype!r} (expected fp16|int8)"
            )
        self.dtype = dtype

    @property
    def default_detection(self) -> DetectionConstants:
        """Detection constants matched to the scheme's numeric pipeline.

        The FP16 pipeline budgets for FP32 accumulation noise
        (:data:`~repro.config.DEFAULT_DETECTION`); the INT8 pipeline is
        exact, so its tolerance is the half-ULP
        :data:`~repro.config.INT8_DETECTION` — applying the FP16
        constants to integer magnitudes would silently inflate the
        tolerance by orders of magnitude, which is why every engine
        layer defaults to this property rather than a global constant.
        """
        return INT8_DETECTION if self.dtype == "int8" else DEFAULT_DETECTION

    @property
    def cache_token(self) -> Any:
        """Hashable identity under which prepared state may be shared.

        Two scheme instances with equal tokens must produce
        bit-identical prepared state for identical operands —
        :class:`PreparedCache` relies on this.  The registry name
        suffices for parameterless FP16 schemes; schemes whose
        constructor arguments change the prepared state (e.g.
        ``global_multi``'s checksum count, or the int8 pipeline's
        quantized operands) must fold them in.
        """
        return self.name if self.dtype == "fp16" else (self.name, self.dtype)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        """Resource plan for one protected GEMM under this scheme."""

    # ------------------------------------------------------------------
    # Prepared-execution engine
    # ------------------------------------------------------------------
    def prepare(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        weights: PreparedWeights | None = None,
    ) -> PreparedExecution:
        """Do all fault-invariant work for this operand pair once.

        Validates operands, picks a tile, pads, runs the clean FP32
        GEMM, and builds the scheme's checksum/magnitude arrays.  Pass
        ``weights`` (from :meth:`prepare_weights`) to additionally skip
        the ``B``-side padding and reductions — geometry is validated
        but ``b``'s *contents* are then taken from the prepared state,
        so the caller must pass the same matrix the state was built
        from (see :class:`PreparedWeights`).
        """
        problem, chosen, executor, a_pad, b_pad, c_clean = self._setup(
            a, b, tile, weights
        )
        state = self._prepare_state(
            executor, a_pad, b_pad, c_clean,
            weights.weight_state if weights is not None else None,
        )
        return PreparedExecution(
            self, problem, chosen, executor, a_pad, b_pad, c_clean, state
        )

    def prepare_weights(
        self,
        b: np.ndarray,
        *,
        m: int | None = None,
        tile: TileConfig | None = None,
    ) -> PreparedWeights:
        """Pad ``B`` and build weight-side checksums for reuse.

        The state is valid for *any* activation row count (padding and
        weight reductions are m-independent given the tile), but the
        tile must be pinned up front: pass either an explicit ``tile``
        or ``m`` — a representative activation row count fed to
        ``select_tile``.
        """
        if b.ndim != 2:
            raise ShapeError("weights must be a 2-D matrix")
        k, n = b.shape
        if tile is None:
            if m is None:
                raise ConfigurationError(
                    "prepare_weights needs a representative activation row "
                    "count m (for tile selection) or an explicit tile"
                )
            tile = select_tile(GemmProblem(m, n, k))
        # The executor is only used for geometry; any m works, so use a
        # minimal reference problem when no row count was given.
        executor = executor_for(
            GemmProblem(m if m is not None else tile.mt, n, k), tile, self.dtype
        )
        b_pad = executor.pad_b(b)
        return PreparedWeights(
            scheme=self.name,
            k=k,
            n=n,
            tile=tile,
            b_pad=b_pad,
            weight_state=self._prepare_weight_state(executor, b_pad),
            b_scale=executor.b_scale if self.dtype == "int8" else None,
            dtype=self.dtype,
        )

    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        faults: Sequence[FaultSpec] = (),
        detection: DetectionConstants | None = None,
        weights: PreparedWeights | None = None,
    ) -> ExecutionOutcome:
        """Numerically execute the protected GEMM with optional faults."""
        prepared = self.prepare(a, b, tile=tile, weights=weights)
        return prepared.inject(faults, detection=detection)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _prepare_weight_state(
        self, executor: TiledGemm, b_pad: np.ndarray
    ) -> Any:
        """Weight-side checksum state (override where the scheme has any)."""
        return None

    def _prepare_state(
        self,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        weight_state: Any,
    ) -> Any:
        """Fault-invariant checksum state (override where the scheme has any)."""
        return None

    def _finish(
        self,
        prepared: PreparedExecution,
        c_faulty: np.ndarray,
        faults: tuple[FaultSpec, ...],
        detection: DetectionConstants,
    ) -> ExecutionOutcome:
        """Single-trial wrapper over :meth:`_finish_batch` (``N == 1``)."""
        return self._finish_batch(prepared, c_faulty[None], (faults,), detection)[0]

    @abc.abstractmethod
    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        """Apply checksum-path faults, re-reduce the output side of all
        trials in batch-wide NumPy calls, render every verdict.  Must
        not mutate ``prepared`` (state is shared across trials);
        ``c_batch`` — one ``(m_full, n_full)`` slice per trial, original
        -path faults already applied — is the batch's own copy.  Slice
        ``i`` of the result must be bit-identical to an ``N == 1`` call
        on trial ``i`` alone (use elementwise ops and the batch-aware
        reducers in :mod:`repro.abft.checksums`, which guarantee it)."""

    def _clean_output_reductions(self, prepared: PreparedExecution) -> Any:
        """Clean output-side check arrays backing sparse splicing.

        Sparse-capable schemes return the reduction of the *clean*
        accumulator that the sparse engine splices struck slices into
        (cached on the prepared state by
        :attr:`PreparedExecution.clean_reductions`).
        """
        raise NotImplementedError(
            f"scheme {self.name!r} has no sparse re-reduction path"
        )

    def _clean_comparison_inputs(
        self, prepared: PreparedExecution
    ) -> tuple[np.ndarray, np.ndarray, int, Any]:
        """``(checksum_side, output_side, n_terms, magnitudes)`` of the
        clean comparison — the same four quantities the scheme's dense
        ``_verdicts`` feeds :func:`~repro.abft.detection.
        compare_checksums_batch`, evaluated on the clean state."""
        raise NotImplementedError(
            f"scheme {self.name!r} has no sparse re-reduction path"
        )

    def _struck_checks(
        self, prepared: PreparedExecution, sites: FaultSites
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(trials, checks, values)`` of every struck check.

        One entry per unique (trial, flat check index) pair in
        trial-major order, ``values`` holding the re-reduced output
        -side check value (the ``*_struck_*`` reducers in
        :mod:`repro.abft.checksums`)."""
        raise NotImplementedError(
            f"scheme {self.name!r} has no sparse re-reduction path"
        )

    def _sparse_output_reduction(
        self, prepared: PreparedExecution, sites: FaultSites
    ) -> np.ndarray:
        """Full per-trial output-side check arrays, spliced sparsely.

        The ``splice_*`` reducers in :mod:`repro.abft.checksums`: the
        dense-shaped arrays the engine's fallback needs for trials
        whose checksum side was corrupted."""
        raise NotImplementedError(
            f"scheme {self.name!r} has no sparse re-reduction path"
        )

    def _references_batch(
        self,
        prepared: PreparedExecution,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> np.ndarray:
        """Per-trial checksum-side values, checksum-path faults applied."""
        raise NotImplementedError(
            f"scheme {self.name!r} has no batched reference builder"
        )

    def _verdicts(
        self,
        prepared: PreparedExecution,
        references: np.ndarray,
        output_side: np.ndarray,
        detection: DetectionConstants,
    ) -> list[CheckVerdict]:
        """Dense verdicts for prepared references vs output reductions."""
        raise NotImplementedError(
            f"scheme {self.name!r} has no batched verdict renderer"
        )

    def _walk_verdicts(
        self,
        prepared: PreparedExecution,
        output_side: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[CheckVerdict]:
        """Dense verdict rendering through the ``CleanComparison`` walk.

        A single-site fault perturbs a handful of checks, so a dense
        trial's re-reduced check array differs from the clean one in
        only a few entries: one elementwise comparison finds them, and
        :func:`~repro.abft.detection.compare_checksums_sparse` renders
        each verdict from those entries plus the cached clean
        comparison — bit-identical, field for field, to the full
        batched comparison (pinned by the dense-walk equivalence test).
        Trials with checksum-path faults have no clean checksum side to
        reuse; they take the full comparison.
        """
        n = len(faults_batch)
        corrupted = [
            i for i, faults in enumerate(faults_batch)
            if self._checksum_faults(faults)
        ]
        clean = prepared.clean_comparison(detection)
        clean_out = np.asarray(
            self._clean_comparison_inputs(prepared)[1]
        ).reshape(1, -1)
        out = np.asarray(output_side)
        flat = out.reshape(n, -1)
        # NaN output entries always register as changed (NaN != NaN);
        # their residuals are re-rendered fresh, matching the dense
        # comparison's non-finite handling.
        with np.errstate(invalid="ignore"):
            trials_idx, checks_idx = np.nonzero(flat != clean_out)
        verdicts = compare_checksums_sparse(
            clean,
            trials_idx,
            checks_idx,
            flat[trials_idx, checks_idx],
            n_trials=n,
            skip=corrupted,
        )
        if corrupted:
            sub_faults = [faults_batch[i] for i in corrupted]
            references = self._references_batch(prepared, sub_faults)
            dense = self._verdicts(
                prepared, references, out[corrupted], detection
            )
            for i, verdict in zip(corrupted, dense):
                verdicts[i] = verdict
        return verdicts

    def _finish_batch_sparse(
        self,
        prepared: PreparedExecution,
        sites: FaultSites,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        """Sparse counterpart of :meth:`_finish_batch` (engine template).

        Never materializes per-trial accumulators or check arrays:
        struck checks are re-reduced alone (:meth:`_struck_checks`, in
        the dense composition order) and verdicts assembled against the
        cached clean comparison — field-for-field bit-identical to
        :meth:`_finish_batch`, pinned by the sparse-equivalence
        hypothesis suite.  Trials whose *checksum side* was corrupted
        (checksum-path faults) have no clean half to compare against;
        they fall back to the dense comparison on sparsely spliced
        check arrays (:meth:`_sparse_output_reduction`), still without
        touching an accumulator stack.
        """
        corrupted = [
            i for i, faults in enumerate(faults_batch)
            if self._checksum_faults(faults)
        ]
        trials, checks, values = self._struck_checks(prepared, sites)
        verdicts = compare_checksums_sparse(
            prepared.clean_comparison(detection),
            trials, checks, values,
            n_trials=len(faults_batch),
            skip=corrupted,
        )
        if corrupted:
            sub_sites = subset_sites(sites, corrupted)
            sub_faults = [faults_batch[i] for i in corrupted]
            references = self._references_batch(prepared, sub_faults)
            output_side = self._sparse_output_reduction(prepared, sub_sites)
            dense_verdicts = self._verdicts(
                prepared, references, output_side, detection
            )
            for i, verdict in zip(corrupted, dense_verdicts):
                verdicts[i] = verdict
        return self._outcome_batch_sparse(prepared, verdicts, faults_batch)

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    def _setup(
        self,
        a: np.ndarray,
        b: np.ndarray,
        tile: TileConfig | None,
        weights: PreparedWeights | None = None,
    ) -> tuple[GemmProblem, TileConfig, TiledGemm, np.ndarray, np.ndarray, np.ndarray]:
        """Validate operands, pick a tile, execute the clean GEMM."""
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError("operands must be 2-D matrices")
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
        problem = GemmProblem(a.shape[0], b.shape[1], a.shape[1])
        if weights is not None:
            if weights.scheme != self.name:
                raise ConfigurationError(
                    f"prepared weights were built for scheme "
                    f"{weights.scheme!r}, not {self.name!r}"
                )
            if weights.dtype != self.dtype:
                raise ConfigurationError(
                    f"prepared weights were built for dtype "
                    f"{weights.dtype!r}, not {self.dtype!r}"
                )
            if (weights.k, weights.n) != (problem.k, problem.n):
                raise ShapeError(
                    f"prepared weights commit to a {weights.k}x{weights.n} "
                    f"weight matrix, operands describe {problem}"
                )
            if tile is not None and tile != weights.tile:
                raise ConfigurationError(
                    f"prepared weights were built for tile {weights.tile}, "
                    f"got tile override {tile}"
                )
            chosen = weights.tile
            executor = executor_for(problem, chosen, self.dtype)
            if weights.b_scale is not None:
                # b is never re-read through prepared weights, so the
                # quantization scale must travel with the padded bytes.
                executor.b_scale = weights.b_scale
            b_pad = weights.b_pad
        else:
            chosen = tile if tile is not None else select_tile(problem)
            executor = executor_for(problem, chosen, self.dtype)
            b_pad = executor.pad_b(b)
        a_pad = executor.pad_a(a)
        c_clean = executor.multiply(a_pad, b_pad)
        return problem, chosen, executor, a_pad, b_pad, c_clean

    def _outcome_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        verdicts: Sequence[CheckVerdict | None],
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> list[ExecutionOutcome]:
        """Assemble the outcome records every ``_finish_batch`` returns.

        Per-trial ``c_accumulator`` values are views into the stacked
        batch array (trial slices are disjoint, so they stay
        independent); the FP16 ``c`` is quantized lazily per outcome.
        """
        crop = (prepared.problem.m, prepared.problem.n)
        return [
            ExecutionOutcome(
                scheme=self.name,
                c_accumulator=c_batch[i],
                verdict=verdicts[i],
                injected=faults_batch[i],
                crop=crop,
                epilogue=prepared.executor.epilogue,
            )
            for i in range(len(faults_batch))
        ]

    def _outcome_batch_sparse(
        self,
        prepared: PreparedExecution,
        verdicts: Sequence[CheckVerdict | None],
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> list[ExecutionOutcome]:
        """Outcome records for a sparse batch: lazy accumulators.

        No stacked accumulator exists on the sparse path, so each
        outcome carries a factory that materializes its padded grid on
        first access (clean copy + the trial's original-path faults in
        spec order — bit-identical to the dense batch's slice, pinned
        by the injector equivalence properties).
        """
        crop = (prepared.problem.m, prepared.problem.n)
        c_clean = prepared.c_clean
        return [
            ExecutionOutcome(
                scheme=self.name,
                c_accumulator=None,
                verdict=verdicts[i],
                injected=faults_batch[i],
                crop=crop,
                acc_factory=_accumulator_factory(c_clean, faults_batch[i]),
                epilogue=prepared.executor.epilogue,
            )
            for i in range(len(faults_batch))
        ]

    @staticmethod
    def _apply_original_faults_batch(
        c_clean: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stacked copies of the accumulator with original-path faults.

        One vectorized N-way copy (into ``out`` when provided), then one
        :func:`apply_fault_batch` call per ordering step: step ``j``
        applies the ``j``-th original-path fault of every trial that has
        one, preserving the sequential per-trial application order while
        keeping the common single-fault campaign at exactly one
        fancy-indexed call.
        """
        from ..faults.injector import apply_fault_batch

        shape = (len(faults_batch), *c_clean.shape)
        if out is None:
            c_batch = np.empty(shape, dtype=c_clean.dtype)
        else:
            if out.shape != shape or out.dtype != c_clean.dtype:
                raise ShapeError(
                    f"batch scratch must be {shape} {c_clean.dtype}, "
                    f"got {out.shape} {out.dtype}"
                )
            c_batch = out
        c_batch[:] = c_clean
        originals = [
            [s for s in faults if s.path is FaultPath.ORIGINAL]
            for faults in faults_batch
        ]
        for step in range(max((len(fs) for fs in originals), default=0)):
            trials = [i for i, fs in enumerate(originals) if len(fs) > step]
            apply_fault_batch(
                c_batch,
                np.asarray(trials, dtype=np.intp),
                [originals[i][step] for i in trials],
            )
        return c_batch

    @staticmethod
    def _checksum_faults(faults: Iterable[FaultSpec]) -> list[FaultSpec]:
        return [f for f in faults if f.path is FaultPath.CHECKSUM]

    @staticmethod
    def _to_fp16(values: np.ndarray) -> np.ndarray:
        """Quantize the epilogue output to FP16 storage.

        Faults can push accumulator values past the FP16 range; the
        resulting inf is the value the hardware would store, so the
        overflow is expected rather than a numerical error.
        """
        with np.errstate(over="ignore"):
            return values.astype(np.float16)


def _accumulator_factory(
    c_clean: np.ndarray, faults: tuple[FaultSpec, ...]
) -> Callable[[], np.ndarray]:
    """Deferred materialization of one sparse trial's faulted accumulator."""

    def materialize() -> np.ndarray:
        acc = c_clean.copy()
        for spec in faults:
            if spec.path is FaultPath.ORIGINAL:
                apply_fault_to_accumulator(acc, spec)
        return acc

    return materialize
