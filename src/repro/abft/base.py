"""Scheme interface shared by all redundant-execution approaches.

A scheme answers two questions:

* ``plan`` — *what would it cost?*  Returns the kernels the scheme
  launches with their resource demands, which ``repro.gpu.timing``
  prices on a device.  This is the path every benchmark uses.
* ``execute`` — *does it actually detect faults?*  Runs the protected
  GEMM numerically on real data (optionally with injected faults) and
  evaluates the scheme's consistency checks.

Numeric execution is split into a **prepared-execution engine**: all
fault-invariant work (operand padding, tile selection, the clean FP32
GEMM, operand-side checksum/magnitude reductions) lives in a
:class:`PreparedExecution` built once by :meth:`Scheme.prepare`, and
each fault trial only pays :meth:`PreparedExecution.inject` — a copy of
the accumulator, the output-side re-reduction, and the verdict.
``execute`` is a thin ``prepare(...).inject(...)`` wrapper, so one-shot
callers are untouched while campaigns and repeated inference amortize
the expensive half.  One level further, :class:`PreparedWeights` carries
just the weight-side state (padded ``B`` + weight checksums), which is
constant across inference requests (paper §2.5) and reusable across
*different* activations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..config import (
    DEFAULT_CONSTANTS,
    DEFAULT_DETECTION,
    DetectionConstants,
    ModelConstants,
)
from ..errors import ConfigurationError, ShapeError
from ..faults.model import FaultPath, FaultSpec
from ..gemm.executor import TiledGemm
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig, select_tile
from ..gpu.specs import GPUSpec
from ..gpu.timing import KernelWork, time_kernel
from .detection import CheckVerdict


@dataclass(frozen=True)
class PlannedKernel:
    """One kernel launch in a scheme's execution plan.

    Attributes
    ----------
    label:
        Human-readable role, e.g. ``"mainloop"`` or ``"abft-check"``.
    work:
        Resource demands for the latency model.
    visible_fraction:
        Fraction of this kernel's time that lands on the layer's
        critical path.  Global ABFT's check kernel overlaps the next
        layer (paper §2.5 step 5), so only part of it is visible.
    time_multiplier:
        Small fixed relative cost not captured by the counters (e.g.
        thread-level ABFT's final per-thread check serialization).
    """

    label: str
    work: KernelWork
    visible_fraction: float = 1.0
    time_multiplier: float = 1.0


@dataclass(frozen=True)
class SchemePlan:
    """All kernels a scheme launches to execute one protected GEMM."""

    scheme: str
    problem: GemmProblem
    tile: TileConfig
    kernels: tuple[PlannedKernel, ...]

    def modeled_time(
        self,
        spec: GPUSpec,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> float:
        """Visible execution time of the whole plan on ``spec``, seconds."""
        total = 0.0
        for kernel in self.kernels:
            timing = time_kernel(spec, kernel.work, constants)
            total += timing.total_s * kernel.visible_fraction * kernel.time_multiplier
        return total

    def kernel_timings(
        self,
        spec: GPUSpec,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> dict[str, float]:
        """Visible time per kernel label (diagnostics)."""
        out: dict[str, float] = {}
        for kernel in self.kernels:
            timing = time_kernel(spec, kernel.work, constants)
            out[kernel.label] = (
                timing.total_s * kernel.visible_fraction * kernel.time_multiplier
            )
        return out


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of numerically executing a protected GEMM.

    Attributes
    ----------
    scheme:
        Scheme registry name.
    c:
        Logical ``M x N`` output quantized to FP16 (what the next layer
        consumes).
    c_accumulator:
        Padded FP32 accumulator grid after fault application.
    verdict:
        Consistency-check outcome (None for the unprotected scheme).
    injected:
        The fault specs that were applied.
    """

    scheme: str
    c: np.ndarray
    c_accumulator: np.ndarray
    verdict: CheckVerdict | None
    injected: tuple[FaultSpec, ...] = ()

    @property
    def detected(self) -> bool:
        """True if the scheme's checks flagged an inconsistency."""
        return bool(self.verdict is not None and self.verdict.detected)


@dataclass(frozen=True)
class PreparedWeights:
    """Weight-side fault-invariant state, reusable across activations.

    Built once per (scheme, ``B``, problem, tile) by
    :meth:`Scheme.prepare_weights`; :meth:`Scheme.prepare` consumes it to
    skip ``B``-padding and weight-side checksum reductions when the same
    weights multiply many activations (repeated NN forward passes,
    device sweeps).  Results are bit-identical to uncached preparation.

    Like any prepared plan, the state *stands in* for ``B``: consumers
    validate geometry but deliberately never re-read the ``b`` operand
    (that is the work being amortized), so passing a different
    same-shape matrix — or mutating ``B`` after preparation — yields
    silently stale results.  Rebuild the state when weights change.

    Attributes
    ----------
    scheme:
        Registry name of the scheme the state was built for.
    problem, tile:
        The GEMM geometry the padded ``B`` commits to (``m`` included:
        tile selection depends on it).
    b_pad:
        Zero-padded FP16 weight matrix.
    weight_state:
        Scheme-specific checksum arrays (e.g.
        :class:`~repro.abft.checksums.GlobalWeightChecksums`), or None
        for schemes without weight-side reductions.
    """

    scheme: str
    problem: GemmProblem
    tile: TileConfig
    b_pad: np.ndarray
    weight_state: Any = None


class PreparedExecution:
    """All fault-invariant state of one protected GEMM.

    Owns the padded operands, the chosen tile, the clean FP32
    accumulator, and the scheme's checksum/magnitude arrays.
    :meth:`inject` applies faults to a *copy* of the accumulator,
    re-reduces the output side, and renders the verdict — it never
    re-runs the GEMM or the operand-side reductions, so a campaign of N
    trials pays the expensive half exactly once.
    """

    __slots__ = ("scheme", "problem", "tile", "executor", "a_pad", "b_pad",
                 "c_clean", "state")

    def __init__(
        self,
        scheme: "Scheme",
        problem: GemmProblem,
        tile: TileConfig,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        state: Any,
    ) -> None:
        self.scheme = scheme
        self.problem = problem
        self.tile = tile
        self.executor = executor
        self.a_pad = a_pad
        self.b_pad = b_pad
        self.c_clean = c_clean
        self.state = state

    def inject(
        self,
        faults: Sequence[FaultSpec] = (),
        *,
        detection: DetectionConstants = DEFAULT_DETECTION,
    ) -> ExecutionOutcome:
        """One fault trial against the prepared state.

        Bit-identical to ``scheme.execute(a, b, faults=...)`` with the
        same tile, at a fraction of the cost.  Repeated calls are
        independent: each gets a fresh accumulator copy.
        """
        c_faulty = Scheme._apply_original_faults(self.c_clean, faults)
        return self.scheme._finish(self, c_faulty, tuple(faults), detection)


class Scheme(abc.ABC):
    """Abstract redundant-execution scheme."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether the scheme performs any checking at all.
    protects: bool = True

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        """Resource plan for one protected GEMM under this scheme."""

    # ------------------------------------------------------------------
    # Prepared-execution engine
    # ------------------------------------------------------------------
    def prepare(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        weights: PreparedWeights | None = None,
    ) -> PreparedExecution:
        """Do all fault-invariant work for this operand pair once.

        Validates operands, picks a tile, pads, runs the clean FP32
        GEMM, and builds the scheme's checksum/magnitude arrays.  Pass
        ``weights`` (from :meth:`prepare_weights`) to additionally skip
        the ``B``-side padding and reductions — geometry is validated
        but ``b``'s *contents* are then taken from the prepared state,
        so the caller must pass the same matrix the state was built
        from (see :class:`PreparedWeights`).
        """
        problem, chosen, executor, a_pad, b_pad, c_clean = self._setup(
            a, b, tile, weights
        )
        state = self._prepare_state(
            executor, a_pad, b_pad, c_clean,
            weights.weight_state if weights is not None else None,
        )
        return PreparedExecution(
            self, problem, chosen, executor, a_pad, b_pad, c_clean, state
        )

    def prepare_weights(
        self,
        b: np.ndarray,
        *,
        m: int,
        tile: TileConfig | None = None,
    ) -> PreparedWeights:
        """Pad ``B`` and build weight-side checksums for reuse.

        ``m`` is the activation row count of the GEMMs the state will
        serve (tile selection and ``A``-side padding depend on it).
        """
        if b.ndim != 2:
            raise ShapeError("weights must be a 2-D matrix")
        problem = GemmProblem(m, b.shape[1], b.shape[0])
        chosen = tile if tile is not None else select_tile(problem)
        executor = TiledGemm(problem, chosen)
        b_pad = executor.pad_b(b)
        return PreparedWeights(
            scheme=self.name,
            problem=problem,
            tile=chosen,
            b_pad=b_pad,
            weight_state=self._prepare_weight_state(executor, b_pad),
        )

    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        faults: Sequence[FaultSpec] = (),
        detection: DetectionConstants = DEFAULT_DETECTION,
        weights: PreparedWeights | None = None,
    ) -> ExecutionOutcome:
        """Numerically execute the protected GEMM with optional faults."""
        prepared = self.prepare(a, b, tile=tile, weights=weights)
        return prepared.inject(faults, detection=detection)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _prepare_weight_state(
        self, executor: TiledGemm, b_pad: np.ndarray
    ) -> Any:
        """Weight-side checksum state (override where the scheme has any)."""
        return None

    def _prepare_state(
        self,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        weight_state: Any,
    ) -> Any:
        """Fault-invariant checksum state (override where the scheme has any)."""
        return None

    @abc.abstractmethod
    def _finish(
        self,
        prepared: PreparedExecution,
        c_faulty: np.ndarray,
        faults: tuple[FaultSpec, ...],
        detection: DetectionConstants,
    ) -> ExecutionOutcome:
        """Apply checksum-path faults, re-reduce the output side, render
        the verdict.  Must not mutate ``prepared`` (state is shared
        across trials); ``c_faulty`` is the trial's own copy."""

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    def _setup(
        self,
        a: np.ndarray,
        b: np.ndarray,
        tile: TileConfig | None,
        weights: PreparedWeights | None = None,
    ) -> tuple[GemmProblem, TileConfig, TiledGemm, np.ndarray, np.ndarray, np.ndarray]:
        """Validate operands, pick a tile, execute the clean GEMM."""
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError("operands must be 2-D matrices")
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
        problem = GemmProblem(a.shape[0], b.shape[1], a.shape[1])
        if weights is not None:
            if weights.scheme != self.name:
                raise ConfigurationError(
                    f"prepared weights were built for scheme "
                    f"{weights.scheme!r}, not {self.name!r}"
                )
            if (weights.problem.m, weights.problem.n, weights.problem.k) != (
                problem.m, problem.n, problem.k
            ):
                raise ShapeError(
                    f"prepared weights commit to {weights.problem}, "
                    f"operands describe {problem}"
                )
            if tile is not None and tile != weights.tile:
                raise ConfigurationError(
                    f"prepared weights were built for tile {weights.tile}, "
                    f"got tile override {tile}"
                )
            chosen = weights.tile
            executor = TiledGemm(problem, chosen)
            b_pad = weights.b_pad
        else:
            chosen = tile if tile is not None else select_tile(problem)
            executor = TiledGemm(problem, chosen)
            b_pad = executor.pad_b(b)
        a_pad = executor.pad_a(a)
        c_clean = executor.multiply(a_pad, b_pad)
        return problem, chosen, executor, a_pad, b_pad, c_clean

    def _outcome(
        self,
        prepared: PreparedExecution,
        c_faulty: np.ndarray,
        verdict: CheckVerdict | None,
        faults: tuple[FaultSpec, ...],
    ) -> ExecutionOutcome:
        """Assemble the outcome record every ``_finish`` returns."""
        return ExecutionOutcome(
            scheme=self.name,
            c=self._to_fp16(prepared.executor.crop(c_faulty)),
            c_accumulator=c_faulty,
            verdict=verdict,
            injected=faults,
        )

    @staticmethod
    def _apply_original_faults(
        c_clean: np.ndarray, faults: Iterable[FaultSpec]
    ) -> np.ndarray:
        """Copy of the accumulator with original-path faults applied."""
        from ..faults.injector import apply_fault_to_accumulator

        c_faulty = c_clean.copy()
        for spec in faults:
            if spec.path is FaultPath.ORIGINAL:
                apply_fault_to_accumulator(c_faulty, spec)
        return c_faulty

    @staticmethod
    def _checksum_faults(faults: Iterable[FaultSpec]) -> list[FaultSpec]:
        return [f for f in faults if f.path is FaultPath.CHECKSUM]

    @staticmethod
    def _to_fp16(values: np.ndarray) -> np.ndarray:
        """Quantize the epilogue output to FP16 storage.

        Faults can push accumulator values past the FP16 range; the
        resulting inf is the value the hardware would store, so the
        overflow is expected rather than a numerical error.
        """
        with np.errstate(over="ignore"):
            return values.astype(np.float16)
