"""Two-sided thread-level ABFT (paper §5.2.2, left side of Fig. 7).

Each thread generates checksums of *both* its ``At`` chunk (column
checksum, ``O(Mt)`` adds) and its ``Bt`` chunk (row checksum, ``O(Nt)``
adds) per K-step, then performs a *single* extra MMA over the checksums,
accumulating one scalar invariant: at the end, the ABFT scalar must
equal the sum of the thread's entire ``Mt x Nt`` output fragment.

This minimizes redundant Tensor-Core work (1 extra MMA vs the
mainloop's ``Mt*Nt/2`` per step) but maximizes CUDA-core checksum work
(``O(Mt+Nt)`` per step).  Because CUDA cores are *not* idle in
bandwidth-bound GEMMs (address math, loop bookkeeping), this trade is
usually worse than one-sided's (paper Table 1, Fig. 12) — reproducing
that comparison is the point of implementing this scheme.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import DEFAULT_CONSTANTS, DetectionConstants, ModelConstants
from ..faults.injector import FaultSites, apply_fault_to_accumulator
from ..faults.model import FaultSpec
from ..gemm.counters import mainloop_cost
from ..gemm.executor import TiledGemm
from ..gemm.problem import GemmProblem
from ..gemm.tiles import KSTEP, TileConfig
from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedExecution,
    Scheme,
    SchemePlan,
)
from .checksums import (
    TileWeightChecksums,
    TwoSidedChecksums,
    splice_thread_tile_sums,
    thread_tile_struck_sums,
    thread_tile_sums,
    thread_tile_sums_batch,
    tile_weight_checksums,
    two_sided_checksums,
)
from .detection import compare_checksums_batch


class ThreadLevelTwoSided(Scheme):
    """Per-thread two-sided ABFT fused into the GEMM mainloop."""

    name = "thread_twosided"
    supports_sparse = True

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        cost = mainloop_cost(problem, tile, constants)

        # One extra MMA per K-step versus Mt*Nt/2 mainloop MMAs.
        extra_tc = cost.tc_flops * 2.0 / (tile.mt * tile.nt)

        # O(Mt + Nt) checksum adds per K-step: column checksum of the
        # Mt x 2 At chunk (~2*Mt lane-adds) plus row checksum of the
        # 2 x Nt Bt chunk (~2*Nt lane-adds).
        mainloop_checksum_alu = (
            cost.threads_total * cost.ksteps * KSTEP * (tile.mt + tile.nt)
        )
        # Final per-thread check: sum the Mt x Nt fragment, one compare.
        final_check_alu = cost.threads_total * (tile.mt * tile.nt + 4)

        kernel = PlannedKernel(
            label="mainloop+thread-abft",
            work=cost.to_kernel_work(
                extra_tc_flops=extra_tc,
                extra_alu_ops=mainloop_checksum_alu + final_check_alu,
                extra_registers=4,
                constants=constants,
            ),
            time_multiplier=1.0 + constants.thread_abft_fixed_fraction,
        )
        return SchemePlan(self.name, problem, tile, (kernel,))

    def _prepare_weight_state(
        self, executor: TiledGemm, b_pad: np.ndarray
    ) -> TileWeightChecksums:
        return tile_weight_checksums(executor, b_pad)

    def _prepare_state(
        self,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        weight_state: TileWeightChecksums | None,
    ) -> TwoSidedChecksums:
        return two_sided_checksums(executor, a_pad, b_pad, weights=weight_state)

    def _references_batch(
        self,
        prepared: PreparedExecution,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> np.ndarray:
        """Per-trial ABFT references with checksum-path faults applied."""
        chks: TwoSidedChecksums = prepared.state
        executor = prepared.executor
        chosen = prepared.tile
        struck = [
            (i, specs)
            for i, faults in enumerate(faults_batch)
            if (specs := self._checksum_faults(faults))
        ]
        references = chks.reference[None]
        if struck:
            references = np.broadcast_to(
                chks.reference, (len(faults_batch), *chks.reference.shape)
            ).copy()
            for i, specs in struck:
                for spec in specs:
                    tile_row = min(spec.row // chosen.mt, executor.m_tiles - 1)
                    tile_col = min(spec.col // chosen.nt, executor.n_tiles - 1)
                    apply_fault_to_accumulator(
                        references[i],
                        type(spec)(
                            row=tile_row,
                            col=tile_col,
                            kind=spec.kind,
                            bit=spec.bit,
                            value=spec.value,
                            path=spec.path,
                        ),
                    )
        return references

    def _verdicts(
        self,
        prepared: PreparedExecution,
        references: np.ndarray,
        tile_sums: np.ndarray,
        detection: DetectionConstants,
    ):
        chks: TwoSidedChecksums = prepared.state
        chosen = prepared.tile
        return compare_checksums_batch(
            references,
            tile_sums,
            n_terms=prepared.executor.k_full * chosen.mt + chosen.mt * chosen.nt,
            magnitudes=chks.magnitude,
            constants=detection,
        )

    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        tile_sums = thread_tile_sums_batch(prepared.executor, c_batch)
        verdicts = self._walk_verdicts(prepared, tile_sums, faults_batch, detection)
        return self._outcome_batch(prepared, c_batch, verdicts, faults_batch)

    # -- sparse re-reduction hooks -------------------------------------
    def _clean_output_reductions(self, prepared: PreparedExecution) -> np.ndarray:
        return thread_tile_sums(prepared.executor, prepared.c_clean)

    def _clean_comparison_inputs(self, prepared: PreparedExecution):
        chks: TwoSidedChecksums = prepared.state
        chosen = prepared.tile
        return (
            chks.reference,
            prepared.clean_reductions,
            prepared.executor.k_full * chosen.mt + chosen.mt * chosen.nt,
            chks.magnitude,
        )

    def _struck_checks(self, prepared: PreparedExecution, sites: FaultSites):
        return thread_tile_struck_sums(
            prepared.executor, prepared.c_clean, sites
        )

    def _sparse_output_reduction(
        self, prepared: PreparedExecution, sites: FaultSites
    ) -> np.ndarray:
        return splice_thread_tile_sums(
            prepared.executor, prepared.clean_reductions, prepared.c_clean, sites
        )
