"""The unprotected baseline: plain GEMM, no redundant execution.

Every overhead number in the paper is relative to this scheme's
execution time (``T_o`` in §6.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import (
    DEFAULT_CONSTANTS,
    DEFAULT_DETECTION,
    DetectionConstants,
    ModelConstants,
)
from ..faults.model import FaultSpec
from ..gemm.counters import mainloop_cost
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig
from .base import ExecutionOutcome, PlannedKernel, Scheme, SchemePlan


class NoProtection(Scheme):
    """Plain GEMM with no fault detection."""

    name = "none"
    protects = False

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        cost = mainloop_cost(problem, tile, constants)
        kernel = PlannedKernel(
            label="mainloop",
            work=cost.to_kernel_work(constants=constants),
        )
        return SchemePlan(self.name, problem, tile, (kernel,))

    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tile: TileConfig | None = None,
        faults: Sequence[FaultSpec] = (),
        detection: DetectionConstants = DEFAULT_DETECTION,
    ) -> ExecutionOutcome:
        _, _, executor, _, _, c_clean = self._setup(a, b, tile)
        c_faulty = self._apply_original_faults(c_clean, faults)
        return ExecutionOutcome(
            scheme=self.name,
            c=self._to_fp16(executor.crop(c_faulty)),
            c_accumulator=c_faulty,
            verdict=None,
            injected=tuple(faults),
        )
