"""The unprotected baseline: plain GEMM, no redundant execution.

Every overhead number in the paper is relative to this scheme's
execution time (``T_o`` in §6.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import DEFAULT_CONSTANTS, DetectionConstants, ModelConstants
from ..faults.model import FaultSpec
from ..gemm.counters import mainloop_cost
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig
from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedExecution,
    Scheme,
    SchemePlan,
)


class NoProtection(Scheme):
    """Plain GEMM with no fault detection."""

    name = "none"
    protects = False

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        cost = mainloop_cost(problem, tile, constants)
        kernel = PlannedKernel(
            label="mainloop",
            work=cost.to_kernel_work(constants=constants),
        )
        return SchemePlan(self.name, problem, tile, (kernel,))

    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        return self._outcome_batch(
            prepared, c_batch, [None] * len(faults_batch), faults_batch
        )
