"""Tolerance-aware checksum comparison.

ABFT in floating point cannot demand bitwise equality: the checksum dot
product and the output summation accumulate the same terms in different
orders.  Comparisons therefore use the summation forward-error bound
from :class:`repro.config.DetectionConstants`: a mismatch is a fault
only if it exceeds the rounding noise that the reduction length and the
accumulated magnitude can explain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import DEFAULT_DETECTION, DetectionConstants
from ..errors import DetectionError


@dataclass(frozen=True)
class CheckVerdict:
    """Outcome of evaluating one family of ABFT checks.

    Attributes
    ----------
    detected:
        True if any individual check exceeded its tolerance.
    violations:
        Indices (into the flattened check array) of failed checks —
        thread-level schemes use these to localize the faulty region.
    max_residual:
        Largest ``|lhs - rhs|`` observed.
    tolerance:
        The largest tolerance applied (diagnostic).
    checks:
        Number of individual equality checks evaluated.
    """

    detected: bool
    violations: tuple[int, ...]
    max_residual: float
    tolerance: float
    checks: int


def compare_checksums(
    checksum_side: np.ndarray,
    output_side: np.ndarray,
    *,
    n_terms: int,
    magnitudes: np.ndarray | float,
    constants: DetectionConstants = DEFAULT_DETECTION,
) -> CheckVerdict:
    """Compare the redundant-path values against the output-path values.

    Parameters
    ----------
    checksum_side:
        Values produced by the redundant (checksum) computation.
    output_side:
        Values produced by summing the actual output.
    n_terms:
        Length of the longest accumulation feeding either side; scales
        the rounding-noise tolerance.
    magnitudes:
        Per-check accumulated-magnitude proxy (same shape as the check
        arrays, or a scalar bound).

    Notes
    -----
    Non-finite residuals (a fault flipped an exponent bit into inf/NaN)
    always count as detections.
    """
    lhs = np.asarray(checksum_side, dtype=np.float64)
    rhs = np.asarray(output_side, dtype=np.float64)
    if lhs.shape != rhs.shape:
        raise DetectionError(
            f"checksum comparison shape mismatch: {lhs.shape} vs {rhs.shape}"
        )
    mags = np.broadcast_to(np.asarray(magnitudes, dtype=np.float64), lhs.shape)

    # inf - inf (both sides blown up by faults) is a legitimate NaN
    # residual — non-finite always counts as detected below.
    with np.errstate(invalid="ignore"):
        residual = np.abs(lhs - rhs)
    n = max(int(n_terms), 2)
    gamma = (np.log2(n) + 1.0) * constants.fp32_unit_roundoff
    tol = np.maximum(constants.atol_floor, constants.rtol_slack * gamma * np.abs(mags))

    bad = ~np.isfinite(residual) | (residual > tol)
    violations = tuple(int(i) for i in np.flatnonzero(bad.ravel()))
    finite = residual[np.isfinite(residual)]
    max_residual = float(finite.max()) if finite.size else float("inf")
    if not np.all(np.isfinite(residual)):
        max_residual = float("inf")
    return CheckVerdict(
        detected=bool(bad.any()),
        violations=violations,
        max_residual=max_residual,
        tolerance=float(tol.max()) if tol.size else 0.0,
        checks=int(lhs.size),
    )


def compare_checksums_batch(
    checksum_side: np.ndarray,
    output_side: np.ndarray,
    *,
    n_terms: int,
    magnitudes: np.ndarray | float,
    constants: DetectionConstants = DEFAULT_DETECTION,
) -> list[CheckVerdict]:
    """Render one :class:`CheckVerdict` per trial of a stacked comparison.

    Axis 0 indexes independent trials; the remaining axes are per-trial
    check arrays.  Either side may carry a leading axis of 1 when its
    values are fault-invariant (it broadcasts across trials without
    copying), and ``magnitudes`` broadcasts against the per-trial check
    shape.

    Every operation is elementwise, so trial ``i`` of the result is
    independent of the batch size — the batched schemes rely on this to
    make ``inject_batch`` bit-identical to sequential ``inject`` calls
    (which route through this same function with ``N == 1``).  Note the
    working dtype follows the inputs (see below), so results can differ
    in the last bit from :func:`compare_checksums`, which always
    compares in float64; that scalar function remains the standalone
    reference API, not the engine's code path.
    """
    lhs = np.asarray(checksum_side)
    rhs = np.asarray(output_side)
    if lhs.ndim < 2 or rhs.ndim < 2 or lhs.shape[1:] != rhs.shape[1:]:
        raise DetectionError(
            f"batched checksum comparison shape mismatch: {lhs.shape} vs {rhs.shape}"
        )
    n = max(lhs.shape[0], rhs.shape[0])
    if lhs.shape[0] not in (1, n) or rhs.shape[0] not in (1, n):
        raise DetectionError(
            f"batched checksum comparison trial-axis mismatch: "
            f"{lhs.shape[0]} vs {rhs.shape[0]}"
        )
    tail = lhs.shape[1:]

    # One difference array is the only batch-sized temporary; inputs
    # cast on the fly inside the ufunc.  The working dtype follows the
    # inputs (thread-level reducers hand over FP32, matching their FP32
    # hardware accumulation; scalar checks arrive as float64), so the
    # memory-bound comparison never pays for precision the tolerance
    # model does not assume.
    dtype = np.result_type(lhs, rhs, np.float32)
    # inf - inf (both sides blown up by faults) is a legitimate NaN
    # residual — non-finite always counts as detected below.
    with np.errstate(invalid="ignore"):
        residual = np.subtract(lhs, rhs, dtype=dtype)
    np.abs(residual, out=residual)
    residual = np.broadcast_to(residual, (n, *tail)).reshape(n, -1)

    terms = max(int(n_terms), 2)
    gamma = (np.log2(terms) + 1.0) * constants.fp32_unit_roundoff
    mags = np.asarray(magnitudes, dtype=np.float64)
    tol = np.maximum(constants.atol_floor, constants.rtol_slack * gamma * np.abs(mags))
    if tol.ndim > len(tail):  # per-trial magnitudes (e.g. replication)
        tol_flat = np.broadcast_to(tol, (n, *tail)).reshape(n, -1)
        tolerance = (
            tol_flat.max(axis=1) if tol_flat.shape[1] else np.zeros(n)
        )
    else:  # fault-invariant magnitudes: one tolerance serves every trial
        tol_flat = np.broadcast_to(tol, tail).reshape(1, -1)
        tolerance = np.full(n, float(tol.max()) if tol.size else 0.0)

    checks = residual.shape[1]
    bad = residual > tol_flat
    bad |= ~np.isfinite(residual)
    detected = bad.any(axis=1)
    if checks:
        # max propagates both NaN and inf, so one reduction yields the
        # "inf when any residual is non-finite, max otherwise" contract.
        raw_max = residual.max(axis=1)
        max_residual = np.where(np.isfinite(raw_max), raw_max, np.inf)
    else:
        max_residual = np.full(n, np.inf)

    # One batch-wide nonzero replaces a per-trial scan: undetected
    # trials contribute no entries, and searchsorted locates each
    # detected trial's span in the sorted trial indices.
    violations_per_trial: list[tuple[int, ...]] = [()] * n
    detected_trials = np.flatnonzero(detected)
    if detected_trials.size:
        trial_idx, check_idx = np.nonzero(bad)
        starts = np.searchsorted(trial_idx, detected_trials, side="left")
        ends = np.searchsorted(trial_idx, detected_trials, side="right")
        for t, lo, hi in zip(detected_trials, starts, ends):
            violations_per_trial[int(t)] = tuple(
                int(j) for j in check_idx[lo:hi]
            )

    verdicts: list[CheckVerdict] = []
    for i in range(n):
        verdicts.append(
            CheckVerdict(
                detected=bool(detected[i]),
                violations=violations_per_trial[i],
                max_residual=float(max_residual[i]),
                tolerance=float(tolerance[i]),
                checks=checks,
            )
        )
    return verdicts


# ----------------------------------------------------------------------
# Sparse (slice-wise) comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CleanComparison:
    """Fault-invariant half of a checksum comparison, prepared once.

    Holds the clean check arrays' full comparison — per-check residuals,
    violation mask, tolerances — plus a descending residual ordering,
    so :func:`compare_checksums_sparse` can render a trial's verdict
    from *only its struck checks*: untouched checks keep their clean
    residuals, and the trial's ``max_residual`` is found by walking the
    precomputed order past the handful of struck indices instead of
    re-reducing the whole check array.  Valid only while the checksum
    side stays clean (checksum-path faults corrupt it; those trials
    take the dense comparison).

    Attributes
    ----------
    checksum_side:
        Flat clean checksum-side values (the comparison's lhs).
    residual:
        Flat clean ``|lhs - rhs|`` in the comparison working dtype.
    key:
        ``residual`` with non-finite entries mapped to ``+inf`` — the
        max-reduction key (``max`` must report inf whenever any
        residual is non-finite).
    order:
        Check indices sorted by descending ``key`` (ties stable).
    tol_flat:
        Per-check tolerances (fault-invariant magnitudes only).
    bad:
        Clean violation mask; ``violations``/``n_violations`` cache its
        nonzero indices and count.
    max_residual, tolerance, checks:
        The clean verdict's scalar fields.
    dtype:
        Working dtype of the dense comparison these checks would use.
    """

    checksum_side: np.ndarray
    residual: np.ndarray
    key: np.ndarray
    order: np.ndarray
    tol_flat: np.ndarray
    bad: np.ndarray
    violations: tuple[int, ...]
    n_violations: int
    max_residual: float
    tolerance: float
    checks: int
    dtype: np.dtype

    def clean_verdict(self) -> CheckVerdict:
        """The verdict of a trial whose checks are all untouched."""
        return CheckVerdict(
            detected=self.n_violations > 0,
            violations=self.violations if self.n_violations else (),
            max_residual=self.max_residual,
            tolerance=self.tolerance,
            checks=self.checks,
        )


def prepare_clean_comparison(
    checksum_side: np.ndarray,
    output_side: np.ndarray,
    *,
    n_terms: int,
    magnitudes: np.ndarray | float,
    constants: DetectionConstants = DEFAULT_DETECTION,
) -> CleanComparison:
    """Build the fault-invariant comparison state for one clean check set.

    Runs the same elementwise operations as
    :func:`compare_checksums_batch` on the (flattened) clean arrays and
    keeps every intermediate the sparse path needs.  ``magnitudes``
    must be fault-invariant (it is for every sparse-capable scheme);
    per-trial magnitudes would make the tolerance trial-dependent and
    have no clean half to prepare.
    """
    lhs = np.asarray(checksum_side).reshape(-1)
    rhs = np.asarray(output_side).reshape(-1)
    if lhs.shape != rhs.shape:
        raise DetectionError(
            f"checksum comparison shape mismatch: {lhs.shape} vs {rhs.shape}"
        )
    dtype = np.result_type(lhs, rhs, np.float32)
    with np.errstate(invalid="ignore"):
        residual = np.subtract(lhs, rhs, dtype=dtype)
    np.abs(residual, out=residual)

    terms = max(int(n_terms), 2)
    gamma = (np.log2(terms) + 1.0) * constants.fp32_unit_roundoff
    mags = np.asarray(magnitudes, dtype=np.float64)
    if mags.ndim > np.asarray(checksum_side).ndim:
        raise DetectionError(
            "prepare_clean_comparison needs fault-invariant magnitudes"
        )
    tol = np.maximum(constants.atol_floor, constants.rtol_slack * gamma * np.abs(mags))
    tol_flat = np.ascontiguousarray(
        np.broadcast_to(tol, np.asarray(output_side).shape).reshape(-1),
        dtype=np.float64,
    )

    finite = np.isfinite(residual)
    bad = residual > tol_flat
    bad |= ~finite
    key = np.where(finite, residual.astype(np.float64), np.inf)
    order = np.argsort(-key, kind="stable")
    violations = tuple(int(i) for i in np.flatnonzero(bad))
    checks = int(residual.size)
    if checks:
        raw_max = float(residual.max())
        max_residual = raw_max if np.isfinite(raw_max) else float("inf")
    else:
        max_residual = float("inf")
    return CleanComparison(
        checksum_side=lhs,
        residual=residual,
        key=key,
        order=order,
        tol_flat=tol_flat,
        bad=bad,
        violations=violations,
        n_violations=len(violations),
        max_residual=max_residual,
        tolerance=float(tol.max()) if tol.size else 0.0,
        checks=checks,
        dtype=dtype,
    )


def compare_checksums_sparse(
    clean: CleanComparison,
    trials: np.ndarray,
    checks: np.ndarray,
    values: np.ndarray,
    *,
    n_trials: int,
    skip: Sequence[int] = (),
) -> list[CheckVerdict | None]:
    """Verdicts from struck checks alone, against a clean comparison.

    ``(trials, checks, values)`` hold one entry per unique struck
    (trial, check) pair in trial-major order — a re-reduced output-side
    check value per struck slice.  Each listed trial's verdict combines
    its struck checks' fresh residuals with the clean comparison's
    untouched remainder (set arithmetic for ``detected``/``violations``,
    an order walk for ``max_residual``); unlisted trials get the clean
    verdict outright.  Bit-identical, field for field, to
    :func:`compare_checksums_batch` on the materialized check arrays —
    pinned by the sparse-equivalence hypothesis suite.

    Trials in ``skip`` (their checksum side was corrupted, so the clean
    half does not apply) are left as ``None`` for the caller to fill
    via the dense comparison.
    """
    with np.errstate(invalid="ignore"):
        residual = np.abs(
            np.subtract(clean.checksum_side[checks], values, dtype=clean.dtype)
        )
    finite = np.isfinite(residual)
    new_bad = residual > clean.tol_flat[checks]
    new_bad |= ~finite
    new_key = np.where(finite, residual.astype(np.float64), np.inf)

    verdicts: list[CheckVerdict | None] = [None] * n_trials
    clean_verdict = clean.clean_verdict()
    skip_set = set(int(i) for i in skip)
    for i in range(n_trials):
        if i not in skip_set:
            verdicts[i] = clean_verdict

    if not len(trials):
        return verdicts
    spans = np.flatnonzero(np.diff(trials)) + 1
    starts = np.concatenate(([0], spans))
    ends = np.concatenate((spans, [len(trials)]))
    for lo, hi in zip(starts, ends):
        t = int(trials[lo])
        if t in skip_set:
            continue
        struck = [int(c) for c in checks[lo:hi]]
        struck_set = set(struck)

        # Violations: clean ones outside the struck set, plus struck
        # checks that now violate — ascending, like the dense nonzero.
        fresh = [struck[j] for j in range(hi - lo) if new_bad[lo + j]]
        if clean.n_violations:
            kept = [v for v in clean.violations if v not in struck_set]
            fresh = sorted(kept + fresh)
        violations = tuple(fresh)

        # Max residual: the fresh struck keys vs the clean order walked
        # past the struck indices (expected O(1) steps — a struck check
        # is rarely the clean argmax).
        best = -np.inf
        for idx in clean.order:
            if int(idx) not in struck_set:
                best = clean.key[idx]
                break
        if hi > lo:
            best = max(best, new_key[lo:hi].max())
        max_residual = float(best) if np.isfinite(best) else float("inf")

        verdicts[t] = CheckVerdict(
            detected=bool(violations),
            violations=violations,
            max_residual=max_residual,
            tolerance=clean.tolerance,
            checks=clean.checks,
        )
    return verdicts
