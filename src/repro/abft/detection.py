"""Tolerance-aware checksum comparison.

ABFT in floating point cannot demand bitwise equality: the checksum dot
product and the output summation accumulate the same terms in different
orders.  Comparisons therefore use the summation forward-error bound
from :class:`repro.config.DetectionConstants`: a mismatch is a fault
only if it exceeds the rounding noise that the reduction length and the
accumulated magnitude can explain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_DETECTION, DetectionConstants
from ..errors import DetectionError


@dataclass(frozen=True)
class CheckVerdict:
    """Outcome of evaluating one family of ABFT checks.

    Attributes
    ----------
    detected:
        True if any individual check exceeded its tolerance.
    violations:
        Indices (into the flattened check array) of failed checks —
        thread-level schemes use these to localize the faulty region.
    max_residual:
        Largest ``|lhs - rhs|`` observed.
    tolerance:
        The largest tolerance applied (diagnostic).
    checks:
        Number of individual equality checks evaluated.
    """

    detected: bool
    violations: tuple[int, ...]
    max_residual: float
    tolerance: float
    checks: int


def compare_checksums(
    checksum_side: np.ndarray,
    output_side: np.ndarray,
    *,
    n_terms: int,
    magnitudes: np.ndarray | float,
    constants: DetectionConstants = DEFAULT_DETECTION,
) -> CheckVerdict:
    """Compare the redundant-path values against the output-path values.

    Parameters
    ----------
    checksum_side:
        Values produced by the redundant (checksum) computation.
    output_side:
        Values produced by summing the actual output.
    n_terms:
        Length of the longest accumulation feeding either side; scales
        the rounding-noise tolerance.
    magnitudes:
        Per-check accumulated-magnitude proxy (same shape as the check
        arrays, or a scalar bound).

    Notes
    -----
    Non-finite residuals (a fault flipped an exponent bit into inf/NaN)
    always count as detections.
    """
    lhs = np.asarray(checksum_side, dtype=np.float64)
    rhs = np.asarray(output_side, dtype=np.float64)
    if lhs.shape != rhs.shape:
        raise DetectionError(
            f"checksum comparison shape mismatch: {lhs.shape} vs {rhs.shape}"
        )
    mags = np.broadcast_to(np.asarray(magnitudes, dtype=np.float64), lhs.shape)

    residual = np.abs(lhs - rhs)
    n = max(int(n_terms), 2)
    gamma = (np.log2(n) + 1.0) * constants.fp32_unit_roundoff
    tol = np.maximum(constants.atol_floor, constants.rtol_slack * gamma * np.abs(mags))

    bad = ~np.isfinite(residual) | (residual > tol)
    violations = tuple(int(i) for i in np.flatnonzero(bad.ravel()))
    finite = residual[np.isfinite(residual)]
    max_residual = float(finite.max()) if finite.size else float("inf")
    if not np.all(np.isfinite(residual)):
        max_residual = float("inf")
    return CheckVerdict(
        detected=bool(bad.any()),
        violations=violations,
        max_residual=max_residual,
        tolerance=float(tol.max()) if tol.size else 0.0,
        checks=int(lhs.size),
    )
