"""Tolerance-aware checksum comparison.

ABFT in floating point cannot demand bitwise equality: the checksum dot
product and the output summation accumulate the same terms in different
orders.  Comparisons therefore use the summation forward-error bound
from :class:`repro.config.DetectionConstants`: a mismatch is a fault
only if it exceeds the rounding noise that the reduction length and the
accumulated magnitude can explain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_DETECTION, DetectionConstants
from ..errors import DetectionError


@dataclass(frozen=True)
class CheckVerdict:
    """Outcome of evaluating one family of ABFT checks.

    Attributes
    ----------
    detected:
        True if any individual check exceeded its tolerance.
    violations:
        Indices (into the flattened check array) of failed checks —
        thread-level schemes use these to localize the faulty region.
    max_residual:
        Largest ``|lhs - rhs|`` observed.
    tolerance:
        The largest tolerance applied (diagnostic).
    checks:
        Number of individual equality checks evaluated.
    """

    detected: bool
    violations: tuple[int, ...]
    max_residual: float
    tolerance: float
    checks: int


def compare_checksums(
    checksum_side: np.ndarray,
    output_side: np.ndarray,
    *,
    n_terms: int,
    magnitudes: np.ndarray | float,
    constants: DetectionConstants = DEFAULT_DETECTION,
) -> CheckVerdict:
    """Compare the redundant-path values against the output-path values.

    Parameters
    ----------
    checksum_side:
        Values produced by the redundant (checksum) computation.
    output_side:
        Values produced by summing the actual output.
    n_terms:
        Length of the longest accumulation feeding either side; scales
        the rounding-noise tolerance.
    magnitudes:
        Per-check accumulated-magnitude proxy (same shape as the check
        arrays, or a scalar bound).

    Notes
    -----
    Non-finite residuals (a fault flipped an exponent bit into inf/NaN)
    always count as detections.
    """
    lhs = np.asarray(checksum_side, dtype=np.float64)
    rhs = np.asarray(output_side, dtype=np.float64)
    if lhs.shape != rhs.shape:
        raise DetectionError(
            f"checksum comparison shape mismatch: {lhs.shape} vs {rhs.shape}"
        )
    mags = np.broadcast_to(np.asarray(magnitudes, dtype=np.float64), lhs.shape)

    residual = np.abs(lhs - rhs)
    n = max(int(n_terms), 2)
    gamma = (np.log2(n) + 1.0) * constants.fp32_unit_roundoff
    tol = np.maximum(constants.atol_floor, constants.rtol_slack * gamma * np.abs(mags))

    bad = ~np.isfinite(residual) | (residual > tol)
    violations = tuple(int(i) for i in np.flatnonzero(bad.ravel()))
    finite = residual[np.isfinite(residual)]
    max_residual = float(finite.max()) if finite.size else float("inf")
    if not np.all(np.isfinite(residual)):
        max_residual = float("inf")
    return CheckVerdict(
        detected=bool(bad.any()),
        violations=violations,
        max_residual=max_residual,
        tolerance=float(tol.max()) if tol.size else 0.0,
        checks=int(lhs.size),
    )


def compare_checksums_batch(
    checksum_side: np.ndarray,
    output_side: np.ndarray,
    *,
    n_terms: int,
    magnitudes: np.ndarray | float,
    constants: DetectionConstants = DEFAULT_DETECTION,
) -> list[CheckVerdict]:
    """Render one :class:`CheckVerdict` per trial of a stacked comparison.

    Axis 0 indexes independent trials; the remaining axes are per-trial
    check arrays.  Either side may carry a leading axis of 1 when its
    values are fault-invariant (it broadcasts across trials without
    copying), and ``magnitudes`` broadcasts against the per-trial check
    shape.

    Every operation is elementwise, so trial ``i`` of the result is
    independent of the batch size — the batched schemes rely on this to
    make ``inject_batch`` bit-identical to sequential ``inject`` calls
    (which route through this same function with ``N == 1``).  Note the
    working dtype follows the inputs (see below), so results can differ
    in the last bit from :func:`compare_checksums`, which always
    compares in float64; that scalar function remains the standalone
    reference API, not the engine's code path.
    """
    lhs = np.asarray(checksum_side)
    rhs = np.asarray(output_side)
    if lhs.ndim < 2 or rhs.ndim < 2 or lhs.shape[1:] != rhs.shape[1:]:
        raise DetectionError(
            f"batched checksum comparison shape mismatch: {lhs.shape} vs {rhs.shape}"
        )
    n = max(lhs.shape[0], rhs.shape[0])
    if lhs.shape[0] not in (1, n) or rhs.shape[0] not in (1, n):
        raise DetectionError(
            f"batched checksum comparison trial-axis mismatch: "
            f"{lhs.shape[0]} vs {rhs.shape[0]}"
        )
    tail = lhs.shape[1:]

    # One difference array is the only batch-sized temporary; inputs
    # cast on the fly inside the ufunc.  The working dtype follows the
    # inputs (thread-level reducers hand over FP32, matching their FP32
    # hardware accumulation; scalar checks arrive as float64), so the
    # memory-bound comparison never pays for precision the tolerance
    # model does not assume.
    dtype = np.result_type(lhs, rhs, np.float32)
    residual = np.subtract(lhs, rhs, dtype=dtype)
    np.abs(residual, out=residual)
    residual = np.broadcast_to(residual, (n, *tail)).reshape(n, -1)

    terms = max(int(n_terms), 2)
    gamma = (np.log2(terms) + 1.0) * constants.fp32_unit_roundoff
    mags = np.asarray(magnitudes, dtype=np.float64)
    tol = np.maximum(constants.atol_floor, constants.rtol_slack * gamma * np.abs(mags))
    if tol.ndim > len(tail):  # per-trial magnitudes (e.g. replication)
        tol_flat = np.broadcast_to(tol, (n, *tail)).reshape(n, -1)
        tolerance = (
            tol_flat.max(axis=1) if tol_flat.shape[1] else np.zeros(n)
        )
    else:  # fault-invariant magnitudes: one tolerance serves every trial
        tol_flat = np.broadcast_to(tol, tail).reshape(1, -1)
        tolerance = np.full(n, float(tol.max()) if tol.size else 0.0)

    checks = residual.shape[1]
    bad = (residual > tol_flat) | ~np.isfinite(residual)
    detected = bad.any(axis=1)
    if checks:
        # max propagates both NaN and inf, so one reduction yields the
        # "inf when any residual is non-finite, max otherwise" contract.
        raw_max = residual.max(axis=1)
        max_residual = np.where(np.isfinite(raw_max), raw_max, np.inf)
    else:
        max_residual = np.full(n, np.inf)

    verdicts: list[CheckVerdict] = []
    for i in range(n):
        violations = (
            tuple(int(j) for j in np.flatnonzero(bad[i])) if detected[i] else ()
        )
        verdicts.append(
            CheckVerdict(
                detected=bool(detected[i]),
                violations=violations,
                max_residual=float(max_residual[i]),
                tolerance=float(tolerance[i]),
                checks=checks,
            )
        )
    return verdicts
