"""Checksum mathematics for global and thread-level ABFT.

Conventions (paper §2.4, Figs. 1, 6, 7):

* The **column checksum** of ``A`` (M x K) sums each column over the M
  rows, yielding a ``1 x K`` vector — the *activation checksum*.
* The **row checksum** of ``B`` (K x N) sums each row over the N
  columns, yielding a ``K x 1`` vector — the *weight checksum*.
* Their dot product equals, absent faults, the summation of all entries
  of ``C``.

Thread-level schemes apply the same identities per ``Mt x Nt`` thread
fragment: one-sided checks ``At @ w_t == rowsums(Ct)`` (Mt equalities
per thread), two-sided checks the single scalar
``(1^T At) @ w_t == sum(Ct)``.

All functions also compute the matching *magnitude* arrays (same
reductions over absolute values), which feed the rounding-noise
tolerance in :mod:`repro.abft.detection`.

Weight-side reductions are split out into standalone builders
(:func:`global_weight_checksums`, :func:`tile_weight_checksums`,
:func:`multi_weight_checksums`): weights are constant across inference
requests (paper §2.5 precomputes them offline), so the prepared-execution
engine builds them once per layer and feeds them back into the combined
builders, which then skip the ``B``-side work bit-identically.

Output-side reducers are *batch-aware*: the ``_batch`` variants reduce a
stacked ``(N, m_full, n_full)`` accumulator array — N fault trials in
single NumPy calls — and the scalar variants are thin ``N == 1``
wrappers.  Sharing one reduction path (and NumPy's guarantee that a
stacked reduction applies the identical core loop per slice) is what
makes :meth:`~repro.abft.base.PreparedExecution.inject_batch`
bit-identical to sequential ``inject`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..gemm.executor import EXECUTION_STATS, TiledGemm


def _as_f32(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


# ----------------------------------------------------------------------
# Global ABFT
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GlobalChecksums:
    """Checksum-side quantities of global ABFT for one GEMM.

    ``reference`` is the checksum dot product that must equal
    ``sum(C)``; ``magnitude`` bounds the absolute values accumulated on
    either side.
    """

    activation_checksum: np.ndarray  # (K,)
    weight_checksum: np.ndarray  # (K,)
    reference: float
    magnitude: float


@dataclass(frozen=True)
class GlobalWeightChecksums:
    """Weight-side half of global ABFT: row checksum of ``B`` (and abs)."""

    row_sums: np.ndarray  # (K,)
    abs_row_sums: np.ndarray  # (K,)


def global_weight_checksums(b_pad: np.ndarray) -> GlobalWeightChecksums:
    """Row checksum of ``B`` — the offline-precomputable half (§2.5)."""
    if b_pad.ndim != 2:
        raise ShapeError(f"B must be a 2-D matrix, got {b_pad.ndim}-D")
    EXECUTION_STATS.weight_reductions += 1
    b32 = _as_f32(b_pad)
    return GlobalWeightChecksums(
        row_sums=b32.sum(axis=1), abs_row_sums=np.abs(b32).sum(axis=1)
    )


def global_checksums(
    a_pad: np.ndarray,
    b_pad: np.ndarray,
    weights: GlobalWeightChecksums | None = None,
) -> GlobalChecksums:
    """Column checksum of A, row checksum of B, and their dot product.

    When ``weights`` is supplied the ``B``-side reductions are reused
    instead of recomputed; the result is bit-identical either way.
    """
    if a_pad.ndim != 2 or b_pad.ndim != 2 or a_pad.shape[1] != b_pad.shape[0]:
        raise ShapeError(f"bad operand shapes {a_pad.shape} @ {b_pad.shape}")
    if weights is None:
        weights = global_weight_checksums(b_pad)
    EXECUTION_STATS.activation_reductions += 1
    a32 = _as_f32(a_pad)
    col_a = a32.sum(axis=0)  # (K,)
    row_b = weights.row_sums  # (K,)
    reference = float(col_a @ row_b)
    magnitude = float(np.abs(a32).sum(axis=0) @ weights.abs_row_sums)
    return GlobalChecksums(
        activation_checksum=col_a,
        weight_checksum=row_b,
        reference=reference,
        magnitude=magnitude,
    )


def _slice_sum_f32(arr: np.ndarray, axis: int) -> np.ndarray:
    """Left-to-right float32 accumulation of ``arr`` along ``axis``.

    A fixed sequential order over the (short) tile axis, realized as
    ``len - 1`` whole-array adds.  FP32 accumulation mirrors the
    hardware check these reducers model — the per-thread row/tile sums
    run on FP32 CUDA-core registers — and the detection tolerance
    (:mod:`repro.abft.detection`) is built from the FP32 unit roundoff,
    so it is the precision the comparison already budgets for.
    Streaming slice adds are several times faster than NumPy's generic
    pairwise reduction when the reduced axis is a handful of elements,
    and the order is independent of every other axis, which keeps
    batched reductions bit-identical per trial slice.
    """
    view = np.moveaxis(arr, axis, -1)
    acc = view[..., 0].astype(np.float32)
    for j in range(1, view.shape[-1]):
        acc += view[..., j]
    return acc


def output_summation(c_pad: np.ndarray) -> float:
    """Fused output summation (paper §2.5 step 2): sum of all of ``C``."""
    return float(output_summation_batch(c_pad[None])[0])


def output_summation_batch(c_batch: np.ndarray) -> np.ndarray:
    """Per-trial output summations of a stacked accumulator: ``(N,)``."""
    if c_batch.ndim != 3:
        raise ShapeError(f"stacked C must be 3-D, got {c_batch.ndim}-D")
    flat = _as_f32(c_batch).reshape(len(c_batch), -1)
    return flat.sum(axis=1, dtype=np.float64)


# ----------------------------------------------------------------------
# Thread-level ABFT
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OneSidedChecksums:
    """Checksum side of one-sided thread-level ABFT.

    ``reference[i, tj]`` is the ABFT MMA accumulator for output row
    ``i`` of the thread column-tile ``tj``:  ``A[i, :] @ w[:, tj]``
    where ``w[:, tj]`` is the weight checksum of that tile's ``Bt``.
    Must equal the row-sum of the corresponding ``Ct`` rows.
    """

    weight_checksums: np.ndarray  # (K, n_tiles)
    reference: np.ndarray  # (m_full, n_tiles)
    magnitude: np.ndarray  # (m_full, n_tiles)


@dataclass(frozen=True)
class TileWeightChecksums:
    """Per-thread-column-tile row checksums of ``B`` (and abs).

    Column ``tj`` sums the ``Nt`` columns of ``B`` owned by thread-column
    ``tj`` — the weight-side half shared by both thread-level schemes.
    """

    row_sums: np.ndarray  # (K, n_tiles)
    abs_row_sums: np.ndarray  # (K, n_tiles)


def tile_weight_checksums(
    executor: TiledGemm, b_pad: np.ndarray
) -> TileWeightChecksums:
    """Weight-side reductions of thread-level ABFT for one padded ``B``."""
    nt = executor.tile.nt
    b32 = _as_f32(b_pad)
    if b32.shape != (executor.k_full, executor.n_full):
        raise ShapeError(f"padded B must be {executor.k_full}x{executor.n_full}")
    EXECUTION_STATS.weight_reductions += 1
    w = b32.reshape(executor.k_full, executor.n_tiles, nt).sum(axis=2)
    abs_w = np.abs(b32).reshape(executor.k_full, executor.n_tiles, nt).sum(axis=2)
    return TileWeightChecksums(row_sums=w, abs_row_sums=abs_w)


def one_sided_checksums(
    executor: TiledGemm,
    a_pad: np.ndarray,
    b_pad: np.ndarray,
    weights: TileWeightChecksums | None = None,
) -> OneSidedChecksums:
    """Per-thread-tile one-sided checksums, vectorized over all threads.

    The per-thread computation (paper Fig. 7, right): accumulate the row
    checksum of the ``Bt`` chunk, multiply by the full ``At`` chunk via
    ``Mt/2`` extra MMAs.  Across the whole kernel this is exactly
    ``A @ W`` where column ``tj`` of ``W`` sums the ``Nt`` columns of
    ``B`` owned by thread-column ``tj``.
    """
    if weights is None:
        weights = tile_weight_checksums(executor, b_pad)
    EXECUTION_STATS.activation_reductions += 1
    a32 = _as_f32(a_pad)
    w = weights.row_sums
    reference = a32 @ w
    magnitude = np.abs(a32) @ weights.abs_row_sums
    return OneSidedChecksums(weight_checksums=w, reference=reference, magnitude=magnitude)


def one_sided_output_rowsums(executor: TiledGemm, c_pad: np.ndarray) -> np.ndarray:
    """Row-sums of ``C`` within each thread column-tile: (m_full, n_tiles)."""
    return one_sided_output_rowsums_batch(executor, c_pad[None])[0]


def one_sided_output_rowsums_batch(
    executor: TiledGemm, c_batch: np.ndarray
) -> np.ndarray:
    """Per-trial thread-tile row-sums: ``(N, m_full, n_tiles)``."""
    view = executor.thread_tile_view_batch(c_batch)
    sums = _slice_sum_f32(view, 4)  # (N, m_tiles, mt, n_tiles)
    return sums.reshape(len(c_batch), executor.m_full, executor.n_tiles)


@dataclass(frozen=True)
class TwoSidedChecksums:
    """Checksum side of two-sided thread-level ABFT (one scalar per thread)."""

    reference: np.ndarray  # (m_tiles, n_tiles)
    magnitude: np.ndarray  # (m_tiles, n_tiles)


def two_sided_checksums(
    executor: TiledGemm,
    a_pad: np.ndarray,
    b_pad: np.ndarray,
    weights: TileWeightChecksums | None = None,
) -> TwoSidedChecksums:
    """Per-thread scalar checks: ``(1^T At) @ (Bt 1) == sum(Ct)``."""
    if weights is None:
        weights = tile_weight_checksums(executor, b_pad)
    EXECUTION_STATS.activation_reductions += 1
    mt = executor.tile.mt
    a32 = _as_f32(a_pad)
    # Column checksum of each thread's At: (m_tiles, K).
    col_a = a32.reshape(executor.m_tiles, mt, executor.k_full).sum(axis=1)
    # Row checksum of each thread's Bt: (K, n_tiles).
    reference = col_a @ weights.row_sums
    magnitude = (
        np.abs(a32).reshape(executor.m_tiles, mt, executor.k_full).sum(axis=1)
        @ weights.abs_row_sums
    )
    return TwoSidedChecksums(reference=reference, magnitude=magnitude)


def thread_tile_sums(executor: TiledGemm, c_pad: np.ndarray) -> np.ndarray:
    """Sum of each thread's ``Ct`` fragment: (m_tiles, n_tiles)."""
    return thread_tile_sums_batch(executor, c_pad[None])[0]


def thread_tile_sums_batch(executor: TiledGemm, c_batch: np.ndarray) -> np.ndarray:
    """Per-trial thread-fragment sums: ``(N, m_tiles, n_tiles)``."""
    view = executor.thread_tile_view_batch(c_batch)
    rows = _slice_sum_f32(view, 4)  # (N, m_tiles, mt, n_tiles)
    return _slice_sum_f32(rows, 2)


# ----------------------------------------------------------------------
# Multi-fault checksum weights
# ----------------------------------------------------------------------
def vandermonde_weights(length: int, count: int) -> np.ndarray:
    """``count`` independent checksum weight vectors of ``length``.

    Row ``s`` is the geometric progression
    ``alpha_s ** (j / (length - 1))`` for positions ``j = 0 .. length-1``
    (a Vandermonde row with *normalized fractional* exponents, not the
    classic integer powers ``[1, alpha, alpha^2, ...]``), evaluated at
    distinct alphas ``1, 2, 3, ...`` and rescaled so each row's largest
    weight is exactly 1.0.  Distinct alphas keep any ``count`` rows
    linearly independent, so ``count`` simultaneous checks can detect up
    to ``count`` faults (paper §2.4), while the fractional exponents
    bound every weight in ``(0, 1]`` regardless of ``length`` — integer
    powers would overflow FP16's dynamic range after a few dozen
    positions.  Callers should still keep ``count`` modest.
    """
    if length <= 0 or count <= 0:
        raise ShapeError("vandermonde_weights needs positive length and count")
    alphas = np.arange(1, count + 1, dtype=np.float64)
    exponents = np.arange(length, dtype=np.float64)
    # Normalize each row so its largest weight is 1.0 (numerical hygiene).
    rows = alphas[:, None] ** (exponents[None, :] / max(length - 1, 1))
    return (rows / rows.max(axis=1, keepdims=True)).astype(np.float32)


@dataclass(frozen=True)
class MultiWeightChecksums:
    """Weight-side half of multi-checksum global ABFT.

    ``combos[s]`` is ``B @ w_n[s]`` — the weighted row combination the
    scheme's check ``s`` dots against the weighted activation checksum;
    ``abs_combos`` carries the matching magnitude reductions.
    """

    weights_n: np.ndarray  # (count, n_full)
    combos: np.ndarray  # (count, K)
    abs_combos: np.ndarray  # (count, K)


def multi_weight_checksums(b_pad: np.ndarray, count: int) -> MultiWeightChecksums:
    """Weighted ``B``-side combinations for ``count`` independent checks."""
    if b_pad.ndim != 2:
        raise ShapeError(f"B must be a 2-D matrix, got {b_pad.ndim}-D")
    EXECUTION_STATS.weight_reductions += 1
    b32 = _as_f32(b_pad)
    w_n = vandermonde_weights(b_pad.shape[1], count)
    combos = w_n @ b32.T  # (count, K) in one matmul
    abs_combos = np.abs(w_n) @ np.abs(b32).T
    return MultiWeightChecksums(weights_n=w_n, combos=combos, abs_combos=abs_combos)


def multi_weighted_output_sums(
    c_batch: np.ndarray,
    weights_m: np.ndarray,
    weights_n: np.ndarray,
) -> np.ndarray:
    """Weighted output summations ``w_m[s] @ C @ w_n[s]``: ``(N, count)``.

    The row-weight contraction is one stacked float64 matmul across all
    trials; the column-weight contraction is expressed as stacked
    ``(1, n) @ (n, 1)`` matmuls so each (trial, check) scalar comes from
    the same core dot-product loop regardless of the batch size.
    """
    if c_batch.ndim != 3:
        raise ShapeError(f"stacked C must be 3-D, got {c_batch.ndim}-D")
    c64 = np.asarray(c_batch, dtype=np.float64)
    w_m = np.asarray(weights_m, dtype=np.float64)  # (count, m_full)
    w_n = np.asarray(weights_n, dtype=np.float64)  # (count, n_full)
    partial = w_m @ c64  # (N, count, n_full)
    out = partial[:, :, None, :] @ w_n[:, :, None]  # (N, count, 1, 1)
    return out[..., 0, 0]
