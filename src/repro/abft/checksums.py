"""Checksum mathematics for global and thread-level ABFT.

Conventions (paper §2.4, Figs. 1, 6, 7):

* The **column checksum** of ``A`` (M x K) sums each column over the M
  rows, yielding a ``1 x K`` vector — the *activation checksum*.
* The **row checksum** of ``B`` (K x N) sums each row over the N
  columns, yielding a ``K x 1`` vector — the *weight checksum*.
* Their dot product equals, absent faults, the summation of all entries
  of ``C``.

Thread-level schemes apply the same identities per ``Mt x Nt`` thread
fragment: one-sided checks ``At @ w_t == rowsums(Ct)`` (Mt equalities
per thread), two-sided checks the single scalar
``(1^T At) @ w_t == sum(Ct)``.

All functions also compute the matching *magnitude* arrays (same
reductions over absolute values), which feed the rounding-noise
tolerance in :mod:`repro.abft.detection`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..gemm.executor import TiledGemm


def _as_f32(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


# ----------------------------------------------------------------------
# Global ABFT
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GlobalChecksums:
    """Checksum-side quantities of global ABFT for one GEMM.

    ``reference`` is the checksum dot product that must equal
    ``sum(C)``; ``magnitude`` bounds the absolute values accumulated on
    either side.
    """

    activation_checksum: np.ndarray  # (K,)
    weight_checksum: np.ndarray  # (K,)
    reference: float
    magnitude: float


def global_checksums(a_pad: np.ndarray, b_pad: np.ndarray) -> GlobalChecksums:
    """Column checksum of A, row checksum of B, and their dot product."""
    if a_pad.ndim != 2 or b_pad.ndim != 2 or a_pad.shape[1] != b_pad.shape[0]:
        raise ShapeError(f"bad operand shapes {a_pad.shape} @ {b_pad.shape}")
    a32 = _as_f32(a_pad)
    b32 = _as_f32(b_pad)
    col_a = a32.sum(axis=0)  # (K,)
    row_b = b32.sum(axis=1)  # (K,)
    reference = float(col_a @ row_b)
    magnitude = float(np.abs(a32).sum(axis=0) @ np.abs(b32).sum(axis=1))
    return GlobalChecksums(
        activation_checksum=col_a,
        weight_checksum=row_b,
        reference=reference,
        magnitude=magnitude,
    )


def output_summation(c_pad: np.ndarray) -> float:
    """Fused output summation (paper §2.5 step 2): sum of all of ``C``."""
    return float(_as_f32(c_pad).sum(dtype=np.float64))


# ----------------------------------------------------------------------
# Thread-level ABFT
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OneSidedChecksums:
    """Checksum side of one-sided thread-level ABFT.

    ``reference[i, tj]`` is the ABFT MMA accumulator for output row
    ``i`` of the thread column-tile ``tj``:  ``A[i, :] @ w[:, tj]``
    where ``w[:, tj]`` is the weight checksum of that tile's ``Bt``.
    Must equal the row-sum of the corresponding ``Ct`` rows.
    """

    weight_checksums: np.ndarray  # (K, n_tiles)
    reference: np.ndarray  # (m_full, n_tiles)
    magnitude: np.ndarray  # (m_full, n_tiles)


def one_sided_checksums(
    executor: TiledGemm, a_pad: np.ndarray, b_pad: np.ndarray
) -> OneSidedChecksums:
    """Per-thread-tile one-sided checksums, vectorized over all threads.

    The per-thread computation (paper Fig. 7, right): accumulate the row
    checksum of the ``Bt`` chunk, multiply by the full ``At`` chunk via
    ``Mt/2`` extra MMAs.  Across the whole kernel this is exactly
    ``A @ W`` where column ``tj`` of ``W`` sums the ``Nt`` columns of
    ``B`` owned by thread-column ``tj``.
    """
    nt = executor.tile.nt
    a32 = _as_f32(a_pad)
    b32 = _as_f32(b_pad)
    if b32.shape != (executor.k_full, executor.n_full):
        raise ShapeError(f"padded B must be {executor.k_full}x{executor.n_full}")
    w = b32.reshape(executor.k_full, executor.n_tiles, nt).sum(axis=2)
    reference = a32 @ w
    magnitude = np.abs(a32) @ np.abs(b32).reshape(
        executor.k_full, executor.n_tiles, nt
    ).sum(axis=2)
    return OneSidedChecksums(weight_checksums=w, reference=reference, magnitude=magnitude)


def one_sided_output_rowsums(executor: TiledGemm, c_pad: np.ndarray) -> np.ndarray:
    """Row-sums of ``C`` within each thread column-tile: (m_full, n_tiles)."""
    view = executor.thread_tile_view(c_pad)  # (m_tiles, mt, n_tiles, nt)
    sums = view.sum(axis=3, dtype=np.float64)  # (m_tiles, mt, n_tiles)
    return sums.reshape(executor.m_full, executor.n_tiles)


@dataclass(frozen=True)
class TwoSidedChecksums:
    """Checksum side of two-sided thread-level ABFT (one scalar per thread)."""

    reference: np.ndarray  # (m_tiles, n_tiles)
    magnitude: np.ndarray  # (m_tiles, n_tiles)


def two_sided_checksums(
    executor: TiledGemm, a_pad: np.ndarray, b_pad: np.ndarray
) -> TwoSidedChecksums:
    """Per-thread scalar checks: ``(1^T At) @ (Bt 1) == sum(Ct)``."""
    mt, nt = executor.tile.mt, executor.tile.nt
    a32 = _as_f32(a_pad)
    b32 = _as_f32(b_pad)
    # Column checksum of each thread's At: (m_tiles, K).
    col_a = a32.reshape(executor.m_tiles, mt, executor.k_full).sum(axis=1)
    # Row checksum of each thread's Bt: (K, n_tiles).
    row_b = b32.reshape(executor.k_full, executor.n_tiles, nt).sum(axis=2)
    reference = col_a @ row_b
    magnitude = (
        np.abs(a32).reshape(executor.m_tiles, mt, executor.k_full).sum(axis=1)
        @ np.abs(b32).reshape(executor.k_full, executor.n_tiles, nt).sum(axis=2)
    )
    return TwoSidedChecksums(reference=reference, magnitude=magnitude)


def thread_tile_sums(executor: TiledGemm, c_pad: np.ndarray) -> np.ndarray:
    """Sum of each thread's ``Ct`` fragment: (m_tiles, n_tiles)."""
    view = executor.thread_tile_view(c_pad)
    return view.sum(axis=(1, 3), dtype=np.float64)


# ----------------------------------------------------------------------
# Multi-fault checksum weights
# ----------------------------------------------------------------------
def vandermonde_weights(length: int, count: int) -> np.ndarray:
    """``count`` independent checksum weight vectors of ``length``.

    Rows are ``[1, alpha, alpha^2, ...]`` evaluated at distinct small
    alphas (1, 2, 3, ...) — any ``count`` of them are linearly
    independent, so ``count`` simultaneous checks can detect up to
    ``count`` faults (paper §2.4).  Weights are kept small to avoid FP16
    dynamic-range blowup; callers should keep ``count`` modest.
    """
    if length <= 0 or count <= 0:
        raise ShapeError("vandermonde_weights needs positive length and count")
    alphas = np.arange(1, count + 1, dtype=np.float64)
    exponents = np.arange(length, dtype=np.float64)
    # Normalize each row so its largest weight is 1.0 (numerical hygiene).
    rows = alphas[:, None] ** (exponents[None, :] / max(length - 1, 1))
    return (rows / rows.max(axis=1, keepdims=True)).astype(np.float32)
