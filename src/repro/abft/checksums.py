"""Checksum mathematics for global and thread-level ABFT.

Conventions (paper §2.4, Figs. 1, 6, 7):

* The **column checksum** of ``A`` (M x K) sums each column over the M
  rows, yielding a ``1 x K`` vector — the *activation checksum*.
* The **row checksum** of ``B`` (K x N) sums each row over the N
  columns, yielding a ``K x 1`` vector — the *weight checksum*.
* Their dot product equals, absent faults, the summation of all entries
  of ``C``.

Thread-level schemes apply the same identities per ``Mt x Nt`` thread
fragment: one-sided checks ``At @ w_t == rowsums(Ct)`` (Mt equalities
per thread), two-sided checks the single scalar
``(1^T At) @ w_t == sum(Ct)``.

All functions also compute the matching *magnitude* arrays (same
reductions over absolute values), which feed the rounding-noise
tolerance in :mod:`repro.abft.detection`.

Weight-side reductions are split out into standalone builders
(:func:`global_weight_checksums`, :func:`tile_weight_checksums`,
:func:`multi_weight_checksums`): weights are constant across inference
requests (paper §2.5 precomputes them offline), so the prepared-execution
engine builds them once per layer and feeds them back into the combined
builders, which then skip the ``B``-side work bit-identically.

Output-side reducers are *batch-aware*: the ``_batch`` variants reduce a
stacked ``(N, m_full, n_full)`` accumulator array — N fault trials in
single NumPy calls — and the scalar variants are thin ``N == 1``
wrappers.  Sharing one reduction path (and NumPy's guarantee that a
stacked reduction applies the identical core loop per slice) is what
makes :meth:`~repro.abft.base.PreparedExecution.inject_batch`
bit-identical to sequential ``inject`` calls.

They are additionally *slice-decomposable*: every dense reducer is
structured so each output check value is produced by an independent
core reduction over one contiguous slice of the accumulator (a row, a
thread tile, or a row partial), composed in a fixed sequential-slice
-add order.  The ``splice_*`` variants exploit this for sparse
re-reduction (DESIGN.md §1.3): given the fault sites of a batch they
fully recompute *only the struck slices* — with the identical core
reduction on identically laid-out data — and splice the results into
broadcast copies of the clean check arrays, which is why the sparse
path is bit-identical to the dense one rather than merely close.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..faults.injector import FaultSites
from ..gemm.executor import EXECUTION_STATS, TiledGemm


def _as_working(x: np.ndarray) -> np.ndarray:
    """Lift an operand to its checksum *working dtype*.

    Float operands (the FP16 pipeline) reduce in float32 — the precision
    of the CUDA-core registers the modeled checks run on, and what the
    rounding-noise tolerance budgets for.  Integer operands (the INT8
    pipeline's INT8 inputs and INT32 accumulators) reduce in float64,
    where every reachable value is an exact integer (< 2**53) — so every
    reduction is exact, order-independent, and the sparse/dense
    bit-identity contract holds with no tolerance at all.
    """
    x = np.asarray(x)
    if np.issubdtype(x.dtype, np.integer):
        return x.astype(np.float64)
    return np.asarray(x, dtype=np.float32)


def _working_scalar_dtype(arr: np.ndarray) -> type:
    return np.float64 if np.issubdtype(arr.dtype, np.integer) else np.float32


# ----------------------------------------------------------------------
# Global ABFT
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GlobalChecksums:
    """Checksum-side quantities of global ABFT for one GEMM.

    ``reference`` is the checksum dot product that must equal
    ``sum(C)``; ``magnitude`` bounds the absolute values accumulated on
    either side.
    """

    activation_checksum: np.ndarray  # (K,)
    weight_checksum: np.ndarray  # (K,)
    reference: float
    magnitude: float


@dataclass(frozen=True)
class GlobalWeightChecksums:
    """Weight-side half of global ABFT: row checksum of ``B`` (and abs)."""

    row_sums: np.ndarray  # (K,)
    abs_row_sums: np.ndarray  # (K,)


def global_weight_checksums(b_pad: np.ndarray) -> GlobalWeightChecksums:
    """Row checksum of ``B`` — the offline-precomputable half (§2.5)."""
    if b_pad.ndim != 2:
        raise ShapeError(f"B must be a 2-D matrix, got {b_pad.ndim}-D")
    EXECUTION_STATS.weight_reductions += 1
    b32 = _as_working(b_pad)
    return GlobalWeightChecksums(
        row_sums=b32.sum(axis=1), abs_row_sums=np.abs(b32).sum(axis=1)
    )


def global_checksums(
    a_pad: np.ndarray,
    b_pad: np.ndarray,
    weights: GlobalWeightChecksums | None = None,
) -> GlobalChecksums:
    """Column checksum of A, row checksum of B, and their dot product.

    When ``weights`` is supplied the ``B``-side reductions are reused
    instead of recomputed; the result is bit-identical either way.
    """
    if a_pad.ndim != 2 or b_pad.ndim != 2 or a_pad.shape[1] != b_pad.shape[0]:
        raise ShapeError(f"bad operand shapes {a_pad.shape} @ {b_pad.shape}")
    if weights is None:
        weights = global_weight_checksums(b_pad)
    EXECUTION_STATS.activation_reductions += 1
    a32 = _as_working(a_pad)
    col_a = a32.sum(axis=0)  # (K,)
    row_b = weights.row_sums  # (K,)
    reference = float(col_a @ row_b)
    magnitude = float(np.abs(a32).sum(axis=0) @ weights.abs_row_sums)
    return GlobalChecksums(
        activation_checksum=col_a,
        weight_checksum=row_b,
        reference=reference,
        magnitude=magnitude,
    )


def _slice_sum(arr: np.ndarray, axis: int) -> np.ndarray:
    """Left-to-right working-dtype accumulation of ``arr`` along ``axis``.

    A fixed sequential order over the (short) tile axis, realized as
    ``len - 1`` whole-array adds, in the working dtype of
    :func:`_as_working`: FP32 accumulation mirrors the hardware check
    these reducers model — the per-thread row/tile sums run on FP32
    CUDA-core registers — and the detection tolerance
    (:mod:`repro.abft.detection`) is built from the FP32 unit roundoff,
    so it is the precision the comparison already budgets for; integer
    accumulators reduce exactly in float64.
    Streaming slice adds are several times faster than NumPy's generic
    pairwise reduction when the reduced axis is a handful of elements,
    and the order is independent of every other axis, which keeps
    batched reductions bit-identical per trial slice.
    """
    view = np.moveaxis(arr, axis, -1)
    acc = view[..., 0].astype(_working_scalar_dtype(view))
    for j in range(1, view.shape[-1]):
        acc += view[..., j]
    return acc


def output_summation(c_pad: np.ndarray) -> float:
    """Fused output summation (paper §2.5 step 2): sum of all of ``C``."""
    return float(output_summation_batch(c_pad[None])[0])


def output_row_sums(c_pad: np.ndarray) -> np.ndarray:
    """Per-row float64 partial sums of one accumulator: ``(m_full,)``.

    The slice stage of the global output summation — each row reduced
    independently over its contiguous extent.  Kept as its own function
    because the sparse path recomputes exactly these slices.
    """
    if c_pad.ndim != 2:
        raise ShapeError(f"C must be a 2-D accumulator, got {c_pad.ndim}-D")
    return _as_working(c_pad).sum(axis=1, dtype=np.float64)


def output_summation_batch(c_batch: np.ndarray) -> np.ndarray:
    """Per-trial output summations of a stacked accumulator: ``(N,)``.

    Two-stage, slice-decomposable order: per-row float64 partial sums
    (each row an independent reduction over its contiguous extent,
    matching :func:`output_row_sums`), then one reduction over the row
    partials.  A single-element fault therefore perturbs exactly one
    row partial, which is what lets :func:`splice_output_summation`
    recompute one row instead of the whole output.
    """
    if c_batch.ndim != 3:
        raise ShapeError(f"stacked C must be 3-D, got {c_batch.ndim}-D")
    rows = _as_working(c_batch).sum(axis=2, dtype=np.float64)
    return rows.sum(axis=1)


def struck_output_summations(
    clean_row_sums: np.ndarray,
    c_clean: np.ndarray,
    sites: FaultSites,
) -> tuple[np.ndarray, np.ndarray]:
    """Output summations of only the trials holding fault sites.

    Returns ``(touched_trials, values)``: for each trial with at least
    one site (ascending order), the full summation rebuilt sparsely —
    struck rows recomputed from the clean row plus the sites' final
    values with the same contiguous-axis core reduction the dense path
    uses, spliced into a copy of the clean row partials, then combined
    by the same final reduction.  Bit-identical per trial to
    :func:`output_summation_batch` on the materialized accumulator.
    """
    if not len(sites):
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
    m_full = len(clean_row_sums)
    keys = sites.trials * m_full + sites.rows
    uniq, inverse = np.unique(keys, return_inverse=True)
    u_trials, u_rows = np.divmod(uniq, m_full)
    struck = c_clean[u_rows].astype(_working_scalar_dtype(c_clean), copy=True)
    struck[inverse, sites.cols] = sites.values
    new_rows = struck.sum(axis=1, dtype=np.float64)

    touched, compact = np.unique(u_trials, return_inverse=True)
    row_sums = np.broadcast_to(clean_row_sums, (len(touched), m_full)).copy()
    row_sums[compact, u_rows] = new_rows
    return touched, row_sums.sum(axis=1)


def splice_output_summation(
    clean_row_sums: np.ndarray,
    c_clean: np.ndarray,
    sites: FaultSites,
) -> np.ndarray:
    """Sparse per-trial output summations: ``(N,)``.

    Trials without fault sites take the clean summation (the dense
    per-trial combine reduces the identical row-partial vector, so the
    value is bit-equal); struck trials get
    :func:`struck_output_summations`.  Bit-identical to
    :func:`output_summation_batch` on the materialized batch.
    """
    clean_total = clean_row_sums.sum()
    out = np.full(sites.n_trials, clean_total, dtype=np.float64)
    touched, values = struck_output_summations(clean_row_sums, c_clean, sites)
    out[touched] = values
    return out


# ----------------------------------------------------------------------
# Thread-level ABFT
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OneSidedChecksums:
    """Checksum side of one-sided thread-level ABFT.

    ``reference[i, tj]`` is the ABFT MMA accumulator for output row
    ``i`` of the thread column-tile ``tj``:  ``A[i, :] @ w[:, tj]``
    where ``w[:, tj]`` is the weight checksum of that tile's ``Bt``.
    Must equal the row-sum of the corresponding ``Ct`` rows.
    """

    weight_checksums: np.ndarray  # (K, n_tiles)
    reference: np.ndarray  # (m_full, n_tiles)
    magnitude: np.ndarray  # (m_full, n_tiles)


@dataclass(frozen=True)
class TileWeightChecksums:
    """Per-thread-column-tile row checksums of ``B`` (and abs).

    Column ``tj`` sums the ``Nt`` columns of ``B`` owned by thread-column
    ``tj`` — the weight-side half shared by both thread-level schemes.
    """

    row_sums: np.ndarray  # (K, n_tiles)
    abs_row_sums: np.ndarray  # (K, n_tiles)


def tile_weight_checksums(
    executor: TiledGemm, b_pad: np.ndarray
) -> TileWeightChecksums:
    """Weight-side reductions of thread-level ABFT for one padded ``B``."""
    nt = executor.tile.nt
    b32 = _as_working(b_pad)
    if b32.shape != (executor.k_full, executor.n_full):
        raise ShapeError(f"padded B must be {executor.k_full}x{executor.n_full}")
    EXECUTION_STATS.weight_reductions += 1
    w = b32.reshape(executor.k_full, executor.n_tiles, nt).sum(axis=2)
    abs_w = np.abs(b32).reshape(executor.k_full, executor.n_tiles, nt).sum(axis=2)
    return TileWeightChecksums(row_sums=w, abs_row_sums=abs_w)


def one_sided_checksums(
    executor: TiledGemm,
    a_pad: np.ndarray,
    b_pad: np.ndarray,
    weights: TileWeightChecksums | None = None,
) -> OneSidedChecksums:
    """Per-thread-tile one-sided checksums, vectorized over all threads.

    The per-thread computation (paper Fig. 7, right): accumulate the row
    checksum of the ``Bt`` chunk, multiply by the full ``At`` chunk via
    ``Mt/2`` extra MMAs.  Across the whole kernel this is exactly
    ``A @ W`` where column ``tj`` of ``W`` sums the ``Nt`` columns of
    ``B`` owned by thread-column ``tj``.
    """
    if weights is None:
        weights = tile_weight_checksums(executor, b_pad)
    EXECUTION_STATS.activation_reductions += 1
    a32 = _as_working(a_pad)
    w = weights.row_sums
    reference = a32 @ w
    magnitude = np.abs(a32) @ weights.abs_row_sums
    return OneSidedChecksums(weight_checksums=w, reference=reference, magnitude=magnitude)


def one_sided_output_rowsums(executor: TiledGemm, c_pad: np.ndarray) -> np.ndarray:
    """Row-sums of ``C`` within each thread column-tile: (m_full, n_tiles)."""
    return one_sided_output_rowsums_batch(executor, c_pad[None])[0]


def one_sided_output_rowsums_batch(
    executor: TiledGemm, c_batch: np.ndarray
) -> np.ndarray:
    """Per-trial thread-tile row-sums: ``(N, m_full, n_tiles)``."""
    view = executor.thread_tile_view_batch(c_batch)
    sums = _slice_sum(view, 4)  # (N, m_tiles, mt, n_tiles)
    return sums.reshape(len(c_batch), executor.m_full, executor.n_tiles)


def one_sided_struck_rowsums(
    executor: TiledGemm,
    c_clean: np.ndarray,
    sites: FaultSites,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Re-reduced one-sided row-sum slices struck by fault sites.

    A fault at ``(row, col)`` perturbs exactly one row-sum check — the
    ``Nt`` elements of row ``row`` owned by thread column ``col // Nt``.
    Returns ``(trials, checks, values)``, one entry per unique struck
    (trial, check) pair in trial-major order: ``checks`` indexes the
    flattened ``(m_full, n_tiles)`` check array, and ``values`` is the
    slice rebuilt from the clean accumulator plus the sites' final
    values, re-reduced with the same left-to-right slice adds as
    :func:`_slice_sum_f32` — bit-identical to the dense reducer's
    element for that slice.
    """
    nt = executor.tile.nt
    m_full, n_tiles = executor.m_full, executor.n_tiles
    if not len(sites):
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, np.empty(0, dtype=np.float32)
    tile_cols = sites.cols // nt
    keys = (sites.trials * m_full + sites.rows) * n_tiles + tile_cols
    uniq, inverse = np.unique(keys, return_inverse=True)
    u_trials, u_checks = np.divmod(uniq, m_full * n_tiles)
    u_rows = u_checks // n_tiles
    u_tile_cols = u_checks % n_tiles
    struck = c_clean[
        u_rows[:, None], (u_tile_cols * nt)[:, None] + np.arange(nt)
    ]  # (S, nt) — fresh contiguous copies of the struck slices
    struck[inverse, sites.cols % nt] = sites.values
    return u_trials, u_checks, _slice_sum(struck, 1)


def splice_one_sided_rowsums(
    executor: TiledGemm,
    clean_rowsums: np.ndarray,
    c_clean: np.ndarray,
    sites: FaultSites,
) -> np.ndarray:
    """Sparse per-trial thread-tile row-sums: ``(N, m_full, n_tiles)``.

    Broadcast copies of the clean row-sums with the struck slices of
    :func:`one_sided_struck_rowsums` spliced in.  Bit-identical to
    :func:`one_sided_output_rowsums_batch` on the materialized batch.
    """
    m_full, n_tiles = executor.m_full, executor.n_tiles
    out = np.broadcast_to(
        clean_rowsums, (sites.n_trials, m_full, n_tiles)
    ).copy()
    trials, checks, values = one_sided_struck_rowsums(executor, c_clean, sites)
    out[trials, checks // n_tiles, checks % n_tiles] = values
    return out


@dataclass(frozen=True)
class TwoSidedChecksums:
    """Checksum side of two-sided thread-level ABFT (one scalar per thread)."""

    reference: np.ndarray  # (m_tiles, n_tiles)
    magnitude: np.ndarray  # (m_tiles, n_tiles)


def two_sided_checksums(
    executor: TiledGemm,
    a_pad: np.ndarray,
    b_pad: np.ndarray,
    weights: TileWeightChecksums | None = None,
) -> TwoSidedChecksums:
    """Per-thread scalar checks: ``(1^T At) @ (Bt 1) == sum(Ct)``."""
    if weights is None:
        weights = tile_weight_checksums(executor, b_pad)
    EXECUTION_STATS.activation_reductions += 1
    mt = executor.tile.mt
    a32 = _as_working(a_pad)
    # Column checksum of each thread's At: (m_tiles, K).
    col_a = a32.reshape(executor.m_tiles, mt, executor.k_full).sum(axis=1)
    # Row checksum of each thread's Bt: (K, n_tiles).
    reference = col_a @ weights.row_sums
    magnitude = (
        np.abs(a32).reshape(executor.m_tiles, mt, executor.k_full).sum(axis=1)
        @ weights.abs_row_sums
    )
    return TwoSidedChecksums(reference=reference, magnitude=magnitude)


def thread_tile_sums(executor: TiledGemm, c_pad: np.ndarray) -> np.ndarray:
    """Sum of each thread's ``Ct`` fragment: (m_tiles, n_tiles)."""
    return thread_tile_sums_batch(executor, c_pad[None])[0]


def thread_tile_sums_batch(executor: TiledGemm, c_batch: np.ndarray) -> np.ndarray:
    """Per-trial thread-fragment sums: ``(N, m_tiles, n_tiles)``."""
    view = executor.thread_tile_view_batch(c_batch)
    rows = _slice_sum(view, 4)  # (N, m_tiles, mt, n_tiles)
    return _slice_sum(rows, 2)


def thread_tile_struck_sums(
    executor: TiledGemm,
    c_clean: np.ndarray,
    sites: FaultSites,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Re-reduced thread-tile sums struck by fault sites.

    A fault at ``(row, col)`` perturbs exactly one ``Mt x Nt`` tile
    sum.  Returns ``(trials, checks, values)``, one entry per unique
    struck (trial, check) pair in trial-major order: ``checks`` indexes
    the flattened ``(m_tiles, n_tiles)`` check array, and ``values`` is
    the tile rebuilt from the clean accumulator plus the sites' final
    values, re-reduced in the dense composition order — left-to-right
    adds over the ``Nt`` axis, then over the ``Mt`` axis — bit
    -identical to the dense reducer's element for that tile.
    """
    mt, nt = executor.tile.mt, executor.tile.nt
    m_tiles, n_tiles = executor.m_tiles, executor.n_tiles
    if not len(sites):
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, np.empty(0, dtype=np.float32)
    tile_rows = sites.rows // mt
    tile_cols = sites.cols // nt
    keys = (sites.trials * m_tiles + tile_rows) * n_tiles + tile_cols
    uniq, inverse = np.unique(keys, return_inverse=True)
    u_trials, u_checks = np.divmod(uniq, m_tiles * n_tiles)
    u_tile_rows = u_checks // n_tiles
    u_tile_cols = u_checks % n_tiles
    struck = c_clean[
        (u_tile_rows * mt)[:, None, None] + np.arange(mt)[None, :, None],
        (u_tile_cols * nt)[:, None, None] + np.arange(nt)[None, None, :],
    ]  # (S, mt, nt) — fresh contiguous copies of the struck tiles
    struck[inverse, sites.rows % mt, sites.cols % nt] = sites.values
    rows = _slice_sum(struck, 2)  # (S, mt)
    return u_trials, u_checks, _slice_sum(rows, 1)


def splice_thread_tile_sums(
    executor: TiledGemm,
    clean_tile_sums: np.ndarray,
    c_clean: np.ndarray,
    sites: FaultSites,
) -> np.ndarray:
    """Sparse per-trial thread-fragment sums: ``(N, m_tiles, n_tiles)``.

    Broadcast copies of the clean tile sums with the struck tiles of
    :func:`thread_tile_struck_sums` spliced in.  Bit-identical to
    :func:`thread_tile_sums_batch` on the materialized batch.
    """
    m_tiles, n_tiles = executor.m_tiles, executor.n_tiles
    out = np.broadcast_to(
        clean_tile_sums, (sites.n_trials, m_tiles, n_tiles)
    ).copy()
    trials, checks, values = thread_tile_struck_sums(executor, c_clean, sites)
    out[trials, checks // n_tiles, checks % n_tiles] = values
    return out


# ----------------------------------------------------------------------
# Multi-fault checksum weights
# ----------------------------------------------------------------------
def vandermonde_weights(length: int, count: int) -> np.ndarray:
    """``count`` independent checksum weight vectors of ``length``.

    Row ``s`` is the geometric progression
    ``alpha_s ** (j / (length - 1))`` for positions ``j = 0 .. length-1``
    (a Vandermonde row with *normalized fractional* exponents, not the
    classic integer powers ``[1, alpha, alpha^2, ...]``), evaluated at
    distinct alphas ``1, 2, 3, ...`` and rescaled so each row's largest
    weight is exactly 1.0.  Distinct alphas keep any ``count`` rows
    linearly independent, so ``count`` simultaneous checks can detect up
    to ``count`` faults (paper §2.4), while the fractional exponents
    bound every weight in ``(0, 1]`` regardless of ``length`` — integer
    powers would overflow FP16's dynamic range after a few dozen
    positions.  Callers should still keep ``count`` modest.
    """
    if length <= 0 or count <= 0:
        raise ShapeError("vandermonde_weights needs positive length and count")
    alphas = np.arange(1, count + 1, dtype=np.float64)
    exponents = np.arange(length, dtype=np.float64)
    # Normalize each row so its largest weight is 1.0 (numerical hygiene).
    rows = alphas[:, None] ** (exponents[None, :] / max(length - 1, 1))
    return (rows / rows.max(axis=1, keepdims=True)).astype(np.float32)


def integer_checksum_weights(length: int, count: int) -> np.ndarray:
    """``count`` independent *integer* checksum weight vectors.

    Row ``s`` holds the classic integer powers ``(j+1)**s`` for
    positions ``j = 0 .. length-1`` — a true Vandermonde system, so any
    ``count`` rows are linearly independent.  Used by the INT8 pipeline,
    where weights must be exactly representable so weighted checks stay
    exact integers in float64; the fractional
    :func:`vandermonde_weights` rows would reintroduce rounding noise
    and break the zero-tolerance detection contract.  Every weight is
    >= 1, so any integer corruption of magnitude >= 1 moves each check
    by >= 1 — detectable at the half-ULP tolerance.  The flip side is
    growth: magnitudes scale like ``length**(count - 1)``, which is why
    the int8 ``global_multi`` scheme guards its magnitude bound against
    the float64 exact-integer range at prepare time.
    """
    if length <= 0 or count <= 0:
        raise ShapeError(
            "integer_checksum_weights needs positive length and count"
        )
    positions = np.arange(1, length + 1, dtype=np.float64)
    return np.stack([positions**s for s in range(count)])


@dataclass(frozen=True)
class MultiWeightChecksums:
    """Weight-side half of multi-checksum global ABFT.

    ``combos[s]`` is ``B @ w_n[s]`` — the weighted row combination the
    scheme's check ``s`` dots against the weighted activation checksum;
    ``abs_combos`` carries the matching magnitude reductions.
    """

    weights_n: np.ndarray  # (count, n_full)
    combos: np.ndarray  # (count, K)
    abs_combos: np.ndarray  # (count, K)


def multi_weight_checksums(
    b_pad: np.ndarray, count: int, *, integer: bool = False
) -> MultiWeightChecksums:
    """Weighted ``B``-side combinations for ``count`` independent checks.

    ``integer`` selects :func:`integer_checksum_weights` (the INT8
    pipeline's exact weights) over the FP16 pipeline's normalized
    :func:`vandermonde_weights`.
    """
    if b_pad.ndim != 2:
        raise ShapeError(f"B must be a 2-D matrix, got {b_pad.ndim}-D")
    EXECUTION_STATS.weight_reductions += 1
    b32 = _as_working(b_pad)
    if integer:
        w_n = integer_checksum_weights(b_pad.shape[1], count)
    else:
        w_n = vandermonde_weights(b_pad.shape[1], count)
    combos = w_n @ b32.T  # (count, K) in one matmul
    abs_combos = np.abs(w_n) @ np.abs(b32).T
    return MultiWeightChecksums(weights_n=w_n, combos=combos, abs_combos=abs_combos)


def _weights_n_t(weights_n: np.ndarray) -> np.ndarray:
    """Contiguous ``(n_full, count)`` float64 column-weight operand.

    Built identically by the dense, clean, and sparse row-partial
    stages so every ``(1, n) @ (n, count)`` core call sees the same
    operand layout.
    """
    return np.ascontiguousarray(np.asarray(weights_n, dtype=np.float64).T)


def multi_row_partials(c_pad: np.ndarray, weights_n: np.ndarray) -> np.ndarray:
    """Per-row column-weight contractions of one accumulator: ``(m, count)``.

    Row ``i`` holds ``C[i, :] @ w_n[s]`` for every check ``s`` — the
    slice stage of the weighted output summation, expressed as stacked
    ``(1, n) @ (n, count)`` matmuls so each row's result comes from an
    independent core call on that row's contiguous data.  A
    single-element fault perturbs exactly one row of this array.
    """
    if c_pad.ndim != 2:
        raise ShapeError(f"C must be a 2-D accumulator, got {c_pad.ndim}-D")
    c64 = np.asarray(c_pad, dtype=np.float64)
    out = c64[:, None, :] @ _weights_n_t(weights_n)  # (m, 1, count)
    return out[:, 0, :]


def _multi_combine_row_partials(
    row_partials: np.ndarray, weights_m: np.ndarray
) -> np.ndarray:
    """Row-weight contraction of stacked row partials: ``(N, count)``.

    ``out[i, s] = w_m[s] @ row_partials[i, :, s]`` via stacked
    ``(1, m) @ (m, 1)`` matmuls, the same final combine for the dense
    and sparse paths.
    """
    w_m = np.asarray(weights_m, dtype=np.float64)  # (count, m_full)
    stacked = row_partials.transpose(0, 2, 1)[:, :, :, None]  # (N, count, m, 1)
    out = w_m[None, :, None, :] @ stacked  # (N, count, 1, 1)
    return out[..., 0, 0]


def multi_weighted_output_sums(
    c_batch: np.ndarray,
    weights_m: np.ndarray,
    weights_n: np.ndarray,
) -> np.ndarray:
    """Weighted output summations ``w_m[s] @ C @ w_n[s]``: ``(N, count)``.

    Two-stage, slice-decomposable order: per-row column-weight
    contractions (:func:`multi_row_partials` — one independent core
    call per row), then the row-weight combine.  Each (trial, check)
    scalar comes from the same core loops regardless of the batch size,
    and a single-element fault perturbs exactly one row partial, which
    is what :func:`splice_multi_weighted_output_sums` exploits.
    """
    if c_batch.ndim != 3:
        raise ShapeError(f"stacked C must be 3-D, got {c_batch.ndim}-D")
    c64 = np.asarray(c_batch, dtype=np.float64)
    partials = c64[:, :, None, :] @ _weights_n_t(weights_n)  # (N, m, 1, count)
    return _multi_combine_row_partials(partials[:, :, 0, :], weights_m)


def struck_multi_weighted_sums(
    clean_row_partials: np.ndarray,
    c_clean: np.ndarray,
    sites: FaultSites,
    weights_m: np.ndarray,
    weights_n: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted output summations of only the trials holding fault sites.

    Returns ``(touched_trials, values)`` with ``values[i]`` the
    ``(count,)`` weighted summations of touched trial ``i``: struck
    rows are rebuilt from the clean accumulator plus the sites' final
    values and contracted through the same ``(1, n) @ (n, count)``
    core call as the dense path, spliced into a copy of the clean row
    partials, then run through the shared final combine.  Bit-identical
    per trial to :func:`multi_weighted_output_sums` on the materialized
    accumulator.
    """
    count = clean_row_partials.shape[1]
    if not len(sites):
        return np.empty(0, dtype=np.intp), np.empty((0, count))
    m_full = len(clean_row_partials)
    keys = sites.trials * m_full + sites.rows
    uniq, inverse = np.unique(keys, return_inverse=True)
    u_trials, u_rows = np.divmod(uniq, m_full)
    struck = c_clean[u_rows].astype(_working_scalar_dtype(c_clean), copy=True)
    struck[inverse, sites.cols] = sites.values
    struck64 = struck.astype(np.float64)
    new_partials = struck64[:, None, :] @ _weights_n_t(weights_n)

    touched, compact = np.unique(u_trials, return_inverse=True)
    partials = np.broadcast_to(
        clean_row_partials, (len(touched), *clean_row_partials.shape)
    ).copy()
    partials[compact, u_rows] = new_partials[:, 0, :]
    return touched, _multi_combine_row_partials(partials, weights_m)


def splice_multi_weighted_output_sums(
    clean_row_partials: np.ndarray,
    c_clean: np.ndarray,
    sites: FaultSites,
    weights_m: np.ndarray,
    weights_n: np.ndarray,
) -> np.ndarray:
    """Sparse weighted output summations: ``(N, count)``.

    Trials without fault sites take the clean summations (the dense
    combine contracts the identical row-partial array through the same
    core calls, so the values are bit-equal); struck trials get
    :func:`struck_multi_weighted_sums`.  Bit-identical to
    :func:`multi_weighted_output_sums` on the materialized batch.
    """
    clean_sums = _multi_combine_row_partials(
        clean_row_partials[None], weights_m
    )[0]
    out = np.broadcast_to(
        clean_sums, (sites.n_trials, len(clean_sums))
    ).copy()
    touched, values = struck_multi_weighted_sums(
        clean_row_partials, c_clean, sites, weights_m, weights_n
    )
    out[touched] = values
    return out
