"""Multi-fault detection via multiple independent checksum combinations.

The paper (§2.4) notes that ABFT extends to detecting multiple faults by
generating several checksum rows/columns from *independent linear
combinations* of the matrix rows/columns, each with its own output
check.  This module implements that extension for the global scheme:
``r`` weighted column checksums of ``A`` and row checksums of ``B``
(Vandermonde-style weights), giving ``r`` simultaneous scalar checks
that jointly detect up to ``r`` faulty output values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import DEFAULT_CONSTANTS, DetectionConstants, ModelConstants
from ..errors import ConfigurationError
from ..faults.injector import FaultSites, corrupted_value
from ..faults.model import FaultSpec
from ..gemm.counters import BYTES_PER_MEM_INSTR, LANES_PER_ALU_INSTR, mainloop_cost
from ..gemm.executor import EXECUTION_STATS, TiledGemm
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig
from ..gpu.timing import KernelWork
from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedExecution,
    Scheme,
    SchemePlan,
)
from .checksums import (
    MultiWeightChecksums,
    _multi_combine_row_partials,
    integer_checksum_weights,
    multi_row_partials,
    multi_weight_checksums,
    multi_weighted_output_sums,
    splice_multi_weighted_output_sums,
    struck_multi_weighted_sums,
    vandermonde_weights,
)
from .detection import compare_checksums_batch


@dataclass(frozen=True)
class _MultiState:
    """Fault-invariant side of the ``r`` weighted checks."""

    weights_m: np.ndarray  # (r, m_full)
    weights_n: np.ndarray  # (r, n_full)
    references: np.ndarray  # (r,)
    magnitudes: np.ndarray  # (r,)


class MultiChecksumGlobalABFT(Scheme):
    """Global ABFT with ``r`` independent weighted checksums."""

    name = "global_multi"
    supports_sparse = True

    def __init__(self, num_checksums: int = 2, *, dtype: str = "fp16") -> None:
        super().__init__(dtype=dtype)
        if num_checksums < 1:
            raise ConfigurationError(
                f"num_checksums must be >= 1, got {num_checksums}"
            )
        self.num_checksums = num_checksums

    @property
    def cache_token(self):
        """Prepared state depends on ``r`` (and pipeline dtype)."""
        if self.dtype == "fp16":
            return (self.name, self.num_checksums)
        return (self.name, self.num_checksums, self.dtype)

    def _position_weights(self, length: int) -> np.ndarray:
        """Row weights matched to the pipeline: exact integers under int8."""
        if self.dtype == "int8":
            return integer_checksum_weights(length, self.num_checksums)
        return vandermonde_weights(length, self.num_checksums)

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        r = self.num_checksums
        cost = mainloop_cost(problem, tile, constants)
        outputs = problem.m_pad * problem.n_pad

        # r weighted output summations + r next-layer activation
        # checksums fused in the epilogue (each a multiply-add now, not
        # just an add: weighted combination).
        epilogue_alu = 2.0 * r * outputs * (constants.epilogue_alu_per_output + 0.5)
        epilogue_bytes = r * (
            4.0 * cost.blocks
            + constants.fp16_bytes * problem.n_pad
            + constants.global_epilogue_c_traffic
            * constants.fp16_bytes
            * problem.m_pad
            * problem.n_pad
        )
        main = PlannedKernel(
            label="mainloop+fused-epilogue",
            work=cost.to_kernel_work(
                extra_alu_ops=epilogue_alu,
                extra_bytes=epilogue_bytes,
                extra_registers=4 * r,
                constants=constants,
            ),
        )

        check_alu = r * (2.0 * problem.k_pad + cost.blocks + 8.0)
        check_bytes = r * (
            2.0 * constants.fp16_bytes * problem.k_pad + 4.0 * cost.blocks + 8.0
        )
        check = PlannedKernel(
            label="abft-check",
            work=KernelWork(
                matmul_flops=0.0,
                alu_ops=check_alu,
                dram_bytes=check_bytes,
                issue_slots=check_alu / LANES_PER_ALU_INSTR
                + check_bytes / BYTES_PER_MEM_INSTR,
                blocks=1,
                threads_per_block=128,
                registers_per_thread=32,
                launches=1,
            ),
            visible_fraction=1.0 - constants.check_kernel_overlap,
        )
        return SchemePlan(self.name, problem, tile, (main, check))

    def _prepare_weight_state(
        self, executor: TiledGemm, b_pad: np.ndarray
    ) -> MultiWeightChecksums:
        return multi_weight_checksums(
            b_pad, self.num_checksums, integer=self.dtype == "int8"
        )

    def _prepare_state(
        self,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        weight_state: MultiWeightChecksums | None,
    ) -> _MultiState:
        if weight_state is not None and len(weight_state.combos) != self.num_checksums:
            raise ConfigurationError(
                f"prepared weights carry {len(weight_state.combos)} checksum "
                f"combinations, this scheme needs {self.num_checksums}"
            )
        if weight_state is None:
            weight_state = multi_weight_checksums(
                b_pad, self.num_checksums, integer=self.dtype == "int8"
            )
        EXECUTION_STATS.activation_reductions += 1
        a32 = a_pad.astype(np.float64 if self.dtype == "int8" else np.float32)
        # Row weights act on A's rows (length M); column weights on B's
        # columns (length N).  Check s: (w_m^s A) (B w_n^s) == w_m^s C w_n^s.
        w_m = self._position_weights(executor.m_full)
        w_n = weight_state.weights_n

        references = np.empty(self.num_checksums, dtype=np.float64)
        magnitudes = np.empty(self.num_checksums, dtype=np.float64)
        abs_a = np.abs(a32)
        for s in range(self.num_checksums):
            col_a = w_m[s] @ a32  # (K,)
            references[s] = float(col_a @ weight_state.combos[s])
            magnitudes[s] = float(
                (np.abs(w_m[s]) @ abs_a) @ weight_state.abs_combos[s]
            )
        if self.dtype == "int8" and magnitudes.max(initial=0.0) >= 2.0**52:
            # The integer-weighted checks are exact only while every
            # intermediate fits float64's exact-integer range.
            raise ConfigurationError(
                f"int8 global_multi with r={self.num_checksums} exceeds the "
                f"exact-integer range for this problem size; reduce the "
                f"checksum count or the GEMM extents"
            )
        return _MultiState(
            weights_m=w_m, weights_n=w_n,
            references=references, magnitudes=magnitudes,
        )

    def _references_batch(
        self,
        prepared: PreparedExecution,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> np.ndarray:
        """Per-trial weighted references with checksum-path faults applied."""
        state: _MultiState = prepared.state
        references = np.broadcast_to(
            state.references, (len(faults_batch), self.num_checksums)
        ).copy()
        for i, faults in enumerate(faults_batch):
            for spec in self._checksum_faults(faults):
                idx = spec.row % self.num_checksums
                references[i, idx] = corrupted_value(
                    float(references[i, idx]), spec
                )
        return references

    def _verdicts(
        self,
        prepared: PreparedExecution,
        references: np.ndarray,
        out_sums: np.ndarray,
        detection: DetectionConstants,
    ):
        state: _MultiState = prepared.state
        executor = prepared.executor
        return compare_checksums_batch(
            references,
            out_sums,
            n_terms=executor.m_full * executor.n_full + executor.k_full,
            magnitudes=state.magnitudes,
            constants=detection,
        )

    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        state: _MultiState = prepared.state
        out_sums = multi_weighted_output_sums(
            c_batch, state.weights_m, state.weights_n
        )  # (N, r)
        verdicts = self._walk_verdicts(prepared, out_sums, faults_batch, detection)
        return self._outcome_batch(prepared, c_batch, verdicts, faults_batch)

    # -- sparse re-reduction hooks -------------------------------------
    def _clean_output_reductions(self, prepared: PreparedExecution) -> np.ndarray:
        state: _MultiState = prepared.state
        return multi_row_partials(prepared.c_clean, state.weights_n)

    def _clean_comparison_inputs(self, prepared: PreparedExecution):
        state: _MultiState = prepared.state
        executor = prepared.executor
        clean_sums = _multi_combine_row_partials(
            prepared.clean_reductions[None], state.weights_m
        )[0]
        return (
            state.references,
            clean_sums,
            executor.m_full * executor.n_full + executor.k_full,
            state.magnitudes,
        )

    def _struck_checks(self, prepared: PreparedExecution, sites: FaultSites):
        state: _MultiState = prepared.state
        touched, values = struck_multi_weighted_sums(
            prepared.clean_reductions, prepared.c_clean, sites,
            state.weights_m, state.weights_n,
        )
        # A single-element fault perturbs one row partial, which feeds
        # all r weighted checks: every touched trial strikes 0 .. r-1.
        r = self.num_checksums
        trials = np.repeat(touched, r)
        checks = np.tile(np.arange(r, dtype=np.intp), len(touched))
        return trials, checks, values.reshape(-1)

    def _sparse_output_reduction(
        self, prepared: PreparedExecution, sites: FaultSites
    ) -> np.ndarray:
        state: _MultiState = prepared.state
        return splice_multi_weighted_output_sums(
            prepared.clean_reductions, prepared.c_clean, sites,
            state.weights_m, state.weights_n,
        )
