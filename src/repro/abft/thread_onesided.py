"""One-sided thread-level ABFT (paper §5.2.2, right side of Fig. 7).

Each thread generates a running row checksum of its ``Bt`` fragment
(``O(Nt)`` CUDA-core adds per K-step) and multiplies the *entirety* of
its ``At`` fragment by that checksum via ``Mt/2`` extra MMAs per K-step,
accumulating into ``Mt`` extra registers.  At the end, the ``Mt`` ABFT
accumulators must equal the row-sums of the thread's ``Mt x Nt``
output fragment.

Why this shape: it deliberately shifts redundant work *onto the
Tensor-Core pipe* — the resource bandwidth-bound layers leave idle —
while keeping the CUDA-core (checksum) work minimal, because CUDA cores
are already busy with address math and loop bookkeeping (paper §5.2.2).
It also shares every load with the mainloop and writes nothing extra:
zero additional DRAM traffic, per the §3.5 design principle.  The weight
checksum is *recomputed online* (not loaded), again to avoid loads
(§5.2.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import DEFAULT_CONSTANTS, DetectionConstants, ModelConstants
from ..faults.injector import FaultSites, apply_fault_to_accumulator
from ..faults.model import FaultSpec
from ..gemm.counters import mainloop_cost
from ..gemm.executor import TiledGemm
from ..gemm.problem import GemmProblem
from ..gemm.tiles import KSTEP, TileConfig
from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedExecution,
    Scheme,
    SchemePlan,
)
from .checksums import (
    OneSidedChecksums,
    TileWeightChecksums,
    one_sided_checksums,
    one_sided_output_rowsums,
    one_sided_output_rowsums_batch,
    one_sided_struck_rowsums,
    splice_one_sided_rowsums,
    tile_weight_checksums,
)
from .detection import compare_checksums_batch


class ThreadLevelOneSided(Scheme):
    """Per-thread one-sided ABFT fused into the GEMM mainloop."""

    name = "thread_onesided"
    supports_sparse = True

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        cost = mainloop_cost(problem, tile, constants)

        # Mt/2 extra MMAs per K-step versus Mt*Nt/2 mainloop MMAs:
        # a 1/Nt relative increase in Tensor-Core work (Table 1).
        extra_tc = cost.tc_flops / tile.nt

        # O(Nt) checksum adds per K-step: the running row checksum of
        # the 2 x Nt Bt chunk costs ~2*Nt FP16-lane adds.
        mainloop_checksum_alu = (
            cost.threads_total * cost.ksteps * (KSTEP * tile.nt)
        )
        # Final per-thread check: row-sum the Mt x Nt output fragment
        # (Mt*Nt adds) and compare Mt values.
        final_check_alu = cost.threads_total * (tile.mt * tile.nt + tile.mt)

        kernel = PlannedKernel(
            label="mainloop+thread-abft",
            work=cost.to_kernel_work(
                extra_tc_flops=extra_tc,
                extra_alu_ops=mainloop_checksum_alu + final_check_alu,
                extra_registers=tile.mt + 2,
                constants=constants,
            ),
            time_multiplier=1.0 + constants.thread_abft_fixed_fraction,
        )
        return SchemePlan(self.name, problem, tile, (kernel,))

    def _prepare_weight_state(
        self, executor: TiledGemm, b_pad: np.ndarray
    ) -> TileWeightChecksums:
        return tile_weight_checksums(executor, b_pad)

    def _prepare_state(
        self,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        weight_state: TileWeightChecksums | None,
    ) -> OneSidedChecksums:
        return one_sided_checksums(executor, a_pad, b_pad, weights=weight_state)

    def _references_batch(
        self,
        prepared: PreparedExecution,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> np.ndarray:
        """Per-trial ABFT references with checksum-path faults applied.

        The checksum side is fault-invariant for most trials: broadcast
        it, materializing per-trial copies only when checksum-path
        faults actually strike.
        """
        chks: OneSidedChecksums = prepared.state
        executor = prepared.executor
        chosen = prepared.tile
        struck = [
            (i, specs)
            for i, faults in enumerate(faults_batch)
            if (specs := self._checksum_faults(faults))
        ]
        references = chks.reference[None]
        if struck:
            references = np.broadcast_to(
                chks.reference, (len(faults_batch), *chks.reference.shape)
            ).copy()
            for i, specs in struck:
                for spec in specs:
                    # A checksum-path fault corrupts the thread's ABFT
                    # accumulator for the row/tile addressed by the spec.
                    tile_col = min(spec.col // chosen.nt, executor.n_tiles - 1)
                    row = min(spec.row, executor.m_full - 1)
                    apply_fault_to_accumulator(
                        references[i],
                        type(spec)(
                            row=row,
                            col=tile_col,
                            kind=spec.kind,
                            bit=spec.bit,
                            value=spec.value,
                            path=spec.path,
                        ),
                    )
        return references

    def _verdicts(
        self,
        prepared: PreparedExecution,
        references: np.ndarray,
        rowsums: np.ndarray,
        detection: DetectionConstants,
    ):
        chks: OneSidedChecksums = prepared.state
        return compare_checksums_batch(
            references,
            rowsums,
            n_terms=prepared.executor.k_full + prepared.tile.nt,
            magnitudes=chks.magnitude,
            constants=detection,
        )

    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        rowsums = one_sided_output_rowsums_batch(prepared.executor, c_batch)
        verdicts = self._walk_verdicts(prepared, rowsums, faults_batch, detection)
        return self._outcome_batch(prepared, c_batch, verdicts, faults_batch)

    # -- sparse re-reduction hooks -------------------------------------
    def _clean_output_reductions(self, prepared: PreparedExecution) -> np.ndarray:
        return one_sided_output_rowsums(prepared.executor, prepared.c_clean)

    def _clean_comparison_inputs(self, prepared: PreparedExecution):
        chks: OneSidedChecksums = prepared.state
        return (
            chks.reference,
            prepared.clean_reductions,
            prepared.executor.k_full + prepared.tile.nt,
            chks.magnitude,
        )

    def _struck_checks(self, prepared: PreparedExecution, sites: FaultSites):
        return one_sided_struck_rowsums(
            prepared.executor, prepared.c_clean, sites
        )

    def _sparse_output_reduction(
        self, prepared: PreparedExecution, sites: FaultSites
    ) -> np.ndarray:
        return splice_one_sided_rowsums(
            prepared.executor, prepared.clean_reductions, prepared.c_clean, sites
        )
