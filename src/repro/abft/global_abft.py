"""Global ABFT, following the optimized scheme of Hari et al. (paper §2.5).

One column checksum over the full activation matrix and one row
checksum over the full weight matrix; the checksum dot product must
equal the summation of all entries of ``C``.

Cost structure (what ``plan`` encodes):

* The **weight checksum is built offline** (weights are fixed across
  inference requests) — no runtime cost.
* The **output summation** and the **next layer's activation checksum**
  are *fused* into the GEMM epilogue: no extra passes over ``C`` in
  DRAM, just CUDA-core adds on values already in registers, plus small
  stores of per-threadblock partial sums.
* A separate small **check kernel** performs the checksum dot product
  and the comparison.  It can overlap the next layer (paper step 5), so
  only ``1 - check_kernel_overlap`` of it is visible — but its kernel
  launch makes global ABFT expensive for tiny, launch-bound layers.

This minimizes redundant FLOPs (best for compute-bound layers) but
cannot hide *any* of its cost inside the mainloop's idle Tensor-Core
cycles, which is what thread-level ABFT exploits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import DEFAULT_CONSTANTS, DetectionConstants, ModelConstants
from ..faults.injector import corrupted_value
from ..faults.model import FaultSpec
from ..gemm.counters import (
    BYTES_PER_MEM_INSTR,
    LANES_PER_ALU_INSTR,
    mainloop_cost,
)
from ..gemm.executor import TiledGemm
from ..gemm.problem import GemmProblem
from ..gemm.tiles import TileConfig
from ..gpu.timing import KernelWork
from .base import (
    ExecutionOutcome,
    PlannedKernel,
    PreparedExecution,
    Scheme,
    SchemePlan,
)
from ..faults.injector import FaultSites
from .checksums import (
    GlobalChecksums,
    GlobalWeightChecksums,
    global_checksums,
    global_weight_checksums,
    output_row_sums,
    output_summation_batch,
    splice_output_summation,
    struck_output_summations,
)
from .detection import compare_checksums_batch


class GlobalABFT(Scheme):
    """Kernel-level ABFT with fused checksums and an async check kernel."""

    name = "global"
    supports_sparse = True

    #: Threads used by the reduction/check kernel.
    CHECK_KERNEL_THREADS = 128
    #: Register footprint of the check kernel (it is trivially small).
    CHECK_KERNEL_REGISTERS = 32

    def plan(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> SchemePlan:
        cost = mainloop_cost(problem, tile, constants)
        outputs = problem.m_pad * problem.n_pad

        # Fused epilogue: output summation + next-layer activation
        # checksum, each one pass of adds over register-resident outputs.
        epilogue_alu = 2.0 * outputs * constants.epilogue_alu_per_output
        # Stores: per-threadblock FP32 partial output sums, plus the
        # next layer's activation checksum (n_pad FP16 values), plus the
        # cross-threadblock reduction traffic of the fused checksums
        # (modeled as a fraction of the C-tile bytes; see
        # ModelConstants.global_epilogue_c_traffic).
        epilogue_bytes = (
            4.0 * cost.blocks
            + constants.fp16_bytes * problem.n_pad
            + constants.global_epilogue_c_traffic
            * constants.fp16_bytes
            * problem.m_pad
            * problem.n_pad
        )

        main = PlannedKernel(
            label="mainloop+fused-epilogue",
            work=cost.to_kernel_work(
                extra_alu_ops=epilogue_alu,
                extra_bytes=epilogue_bytes,
                extra_registers=4,
                constants=constants,
            ),
        )

        # Check kernel: reduce per-block partials, checksum dot product
        # over K, one comparison.  Reads the activation checksum (K
        # values), the offline weight checksum (K values) and the
        # partial sums.
        check_alu = 2.0 * problem.k_pad + cost.blocks + 8.0
        check_bytes = (
            2.0 * constants.fp16_bytes * problem.k_pad + 4.0 * cost.blocks + 8.0
        )
        check_work = KernelWork(
            matmul_flops=0.0,
            alu_ops=check_alu,
            dram_bytes=check_bytes,
            issue_slots=check_alu / LANES_PER_ALU_INSTR
            + check_bytes / BYTES_PER_MEM_INSTR,
            blocks=1,
            threads_per_block=self.CHECK_KERNEL_THREADS,
            registers_per_thread=self.CHECK_KERNEL_REGISTERS,
            launches=1,
        )
        check = PlannedKernel(
            label="abft-check",
            work=check_work,
            visible_fraction=1.0 - constants.check_kernel_overlap,
        )
        return SchemePlan(self.name, problem, tile, (main, check))

    def _prepare_weight_state(
        self, executor: TiledGemm, b_pad: np.ndarray
    ) -> GlobalWeightChecksums:
        return global_weight_checksums(b_pad)

    def _prepare_state(
        self,
        executor: TiledGemm,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_clean: np.ndarray,
        weight_state: GlobalWeightChecksums | None,
    ) -> GlobalChecksums:
        return global_checksums(a_pad, b_pad, weights=weight_state)

    def _references_batch(
        self,
        prepared: PreparedExecution,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
    ) -> np.ndarray:
        """Per-trial checksum references with checksum-path faults applied."""
        chks: GlobalChecksums = prepared.state
        references = np.full(len(faults_batch), chks.reference, dtype=np.float64)
        for i, faults in enumerate(faults_batch):
            for spec in self._checksum_faults(faults):
                references[i] = corrupted_value(float(references[i]), spec)
        return references

    def _verdicts(
        self,
        prepared: PreparedExecution,
        references: np.ndarray,
        out_sums: np.ndarray,
        detection: DetectionConstants,
    ):
        chks: GlobalChecksums = prepared.state
        executor = prepared.executor
        return compare_checksums_batch(
            references[:, None],
            out_sums[:, None],
            n_terms=executor.m_full * executor.n_full + executor.k_full,
            magnitudes=chks.magnitude,
            constants=detection,
        )

    def _finish_batch(
        self,
        prepared: PreparedExecution,
        c_batch: np.ndarray,
        faults_batch: Sequence[tuple[FaultSpec, ...]],
        detection: DetectionConstants,
    ) -> list[ExecutionOutcome]:
        out_sums = output_summation_batch(c_batch)
        verdicts = self._walk_verdicts(prepared, out_sums, faults_batch, detection)
        return self._outcome_batch(prepared, c_batch, verdicts, faults_batch)

    # -- sparse re-reduction hooks -------------------------------------
    def _clean_output_reductions(self, prepared: PreparedExecution) -> np.ndarray:
        return output_row_sums(prepared.c_clean)

    def _clean_comparison_inputs(self, prepared: PreparedExecution):
        chks: GlobalChecksums = prepared.state
        executor = prepared.executor
        return (
            np.asarray([chks.reference], dtype=np.float64),
            np.asarray([prepared.clean_reductions.sum()], dtype=np.float64),
            executor.m_full * executor.n_full + executor.k_full,
            chks.magnitude,
        )

    def _struck_checks(self, prepared: PreparedExecution, sites: FaultSites):
        touched, values = struck_output_summations(
            prepared.clean_reductions, prepared.c_clean, sites
        )
        # The output summation is the scheme's single check: index 0.
        return touched, np.zeros(len(touched), dtype=np.intp), values

    def _sparse_output_reduction(
        self, prepared: PreparedExecution, sites: FaultSites
    ) -> np.ndarray:
        return splice_output_summation(
            prepared.clean_reductions, prepared.c_clean, sites
        )
