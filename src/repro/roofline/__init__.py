"""Roofline analysis: arithmetic intensity, CMR, boundedness (paper §3)."""

from .intensity import (
    IntensityBreakdown,
    aggregate_intensity,
    layer_intensities,
)
from .model import Boundedness, classify_problem, roofline_time
from .cmr import cmr_table

__all__ = [
    "IntensityBreakdown",
    "aggregate_intensity",
    "layer_intensities",
    "Boundedness",
    "classify_problem",
    "roofline_time",
    "cmr_table",
]
