"""Device CMR table (paper §3.3).

The paper quotes: T4 = 203, P4 = 58, V100 = 139, A100 = 201,
Jetson AGX Xavier = 235 (INT8).  These fall out of the registered
device specs; the table below is what the §3.3 benchmark prints.
"""

from __future__ import annotations

from ..gpu.specs import GPUSpec, list_gpus, get_gpu
from ..utils import Table


def cmr_table(names: list[str] | None = None) -> Table:
    """CMR table for the given devices (all registered ones by default)."""
    table = Table(
        ["device", "matmul TFLOPs/s", "mem GB/s", "CMR (FLOPs/byte)"],
        title="Compute-to-memory-bandwidth ratios (paper §3.3)",
    )
    for name in names if names is not None else list_gpus():
        spec: GPUSpec = get_gpu(name)
        table.add_row(
            [
                spec.name,
                spec.matmul_flops / 1e12,
                spec.mem_bandwidth / 1e9,
                spec.cmr,
            ]
        )
    return table
