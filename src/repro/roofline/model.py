"""Roofline classification: compute bound vs memory-bandwidth bound.

Implements Eq. 1 of the paper: a kernel is compute bound when its
arithmetic intensity exceeds the device's compute-to-memory-bandwidth
ratio (CMR), bandwidth bound otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..gemm.problem import GemmProblem
from ..gpu.specs import GPUSpec


class Boundedness(enum.Enum):
    """Which side of the roofline a kernel falls on."""

    COMPUTE_BOUND = "compute"
    BANDWIDTH_BOUND = "bandwidth"


@dataclass(frozen=True)
class RooflinePoint:
    """A problem placed on a device's roofline."""

    problem: GemmProblem
    intensity: float
    cmr: float
    boundedness: Boundedness

    @property
    def headroom(self) -> float:
        """Idle fraction of the compute units for bandwidth-bound kernels.

        ``1 - AI/CMR``: the share of Tensor-Core cycles the kernel
        leaves unused — the budget thread-level ABFT spends.
        Zero for compute-bound kernels.
        """
        return max(0.0, 1.0 - self.intensity / self.cmr)


def classify_problem(
    problem: GemmProblem, spec: GPUSpec, *, padded: bool = True
) -> RooflinePoint:
    """Place ``problem`` on ``spec``'s roofline (Eq. 1)."""
    intensity = problem.arithmetic_intensity(padded=padded)
    boundedness = (
        Boundedness.COMPUTE_BOUND
        if intensity > spec.cmr
        else Boundedness.BANDWIDTH_BOUND
    )
    return RooflinePoint(
        problem=problem, intensity=intensity, cmr=spec.cmr, boundedness=boundedness
    )


def roofline_time(problem: GemmProblem, spec: GPUSpec, *, padded: bool = True) -> float:
    """Idealized roofline execution time: max of compute and memory time.

    This is the textbook model of §3.1 — no launch overhead, no
    occupancy effects.  The full latency model in ``repro.gpu.timing``
    refines it; this function exists for analyses and tests that want
    the paper's own simple model.
    """
    compute = problem.flops(padded=padded) / spec.matmul_flops
    memory = problem.bytes_moved(padded=padded) / spec.mem_bandwidth
    return max(compute, memory)
