"""Arithmetic-intensity accounting (paper §3.2).

The *aggregate arithmetic intensity* of a NN sums FLOPs across all
linear layers, sums bytes across all linear layers, and divides the two
— an estimate of whether the NN as a whole is compute or bandwidth
bound.  Per-layer intensities (paper Fig. 5) use the same GEMM-view
accounting on individual layers.

Padding note: the paper pads M/N/K to multiples of 8 to run on m16n8k8
Tensor Cores (§6.2), and its printed aggregate intensities (e.g. the
DLRM MLPs' 7.4/7.7 at batch one) include that padding.  Fig. 5's
per-layer range (down to AI = 1 for the batch-1 FC layer) reflects the
*unpadded* view.  Both are exposed via the ``padded`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ShapeError
from ..gemm.problem import GemmProblem


@dataclass(frozen=True)
class IntensityBreakdown:
    """FLOPs, bytes and their ratio for one layer or an aggregate."""

    label: str
    flops: float
    bytes_moved: float

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in FLOPs/byte."""
        if self.bytes_moved <= 0:
            raise ShapeError(f"{self.label}: bytes must be positive")
        return self.flops / self.bytes_moved


def layer_intensities(
    problems: Sequence[GemmProblem], *, padded: bool = True
) -> list[IntensityBreakdown]:
    """Per-layer intensity breakdowns in layer order."""
    out: list[IntensityBreakdown] = []
    for i, problem in enumerate(problems):
        label = problem.label or f"layer{i}"
        out.append(
            IntensityBreakdown(
                label=label,
                flops=problem.flops(padded=padded),
                bytes_moved=problem.bytes_moved(padded=padded),
            )
        )
    return out


def aggregate_intensity(
    problems: Iterable[GemmProblem], *, padded: bool = True, label: str = "aggregate"
) -> IntensityBreakdown:
    """Aggregate intensity: sum of FLOPs over sum of bytes (paper §3.2)."""
    total_flops = 0.0
    total_bytes = 0.0
    count = 0
    for problem in problems:
        total_flops += problem.flops(padded=padded)
        total_bytes += problem.bytes_moved(padded=padded)
        count += 1
    if count == 0:
        raise ShapeError("aggregate_intensity needs at least one layer")
    return IntensityBreakdown(label=label, flops=total_flops, bytes_moved=total_bytes)
