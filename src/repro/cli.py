"""Command-line interface: ``python -m repro ...``.

Subcommands mirror the deployment workflow:

* ``models`` / ``devices`` — list what is available.
* ``intensity MODEL`` — per-layer and aggregate arithmetic intensity.
* ``select MODEL`` — run the intensity-guided selection on a device and
  print (or ``--json``-export) the per-layer plan.
* ``sweep`` — the Fig. 12 square-GEMM sweep on a device.
* ``experiments [NAME...]`` — regenerate paper artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import IntensityGuidedABFT, layer_selection_table
from .errors import ReproError
from .gpu import get_gpu, list_gpus
from .nn import build_model, list_models
from .roofline import layer_intensities
from .utils import Table
from .utils.serde import model_selection_to_json


def _cmd_models(_: argparse.Namespace) -> int:
    for name in list_models():
        print(name)
    return 0


def _cmd_devices(_: argparse.Namespace) -> int:
    for name in list_gpus():
        spec = get_gpu(name)
        print(f"{spec.name}: CMR {spec.cmr:.0f} "
              f"({spec.matmul_flops / 1e12:.0f} TFLOPs/s, "
              f"{spec.mem_bandwidth / 1e9:.0f} GB/s)")
    return 0


def _cmd_intensity(args: argparse.Namespace) -> int:
    model = build_model(args.model, batch=args.batch, h=args.height, w=args.width)
    table = Table(
        ["layer", "M", "N", "K", "AI"],
        title=f"{model.name} ({model.input_desc}, batch {model.batch}) — "
              f"aggregate AI {model.aggregate_intensity():.1f}",
    )
    for layer, brk in zip(model, layer_intensities(model.problems)):
        table.add_row([layer.name, layer.problem.m, layer.problem.n,
                       layer.problem.k, brk.intensity])
    print(table.render())
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    spec = get_gpu(args.device)
    model = build_model(args.model, batch=args.batch, h=args.height, w=args.width)
    selection = IntensityGuidedABFT(spec).select_for_model(model)
    if args.json:
        print(model_selection_to_json(selection))
        return 0
    print(layer_selection_table(selection).render())
    print()
    print(f"thread-level overhead : "
          f"{selection.scheme_overhead_percent('thread_onesided'):6.2f}%")
    print(f"global overhead       : "
          f"{selection.scheme_overhead_percent('global'):6.2f}%")
    print(f"intensity-guided      : {selection.guided_overhead_percent:6.2f}%")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import fig12_square_sweep

    print(fig12_square_sweep(get_gpu(args.device)).render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import EXPERIMENTS

    if args.list:
        if args.names:
            print("--list takes no experiment names", file=sys.stderr)
            return 2
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    for name in names:
        print(f"\n===== {name} =====")
        print(EXPERIMENTS[name]().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arithmetic-intensity-guided ABFT reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list evaluation models").set_defaults(fn=_cmd_models)
    sub.add_parser("devices", help="list device specs").set_defaults(fn=_cmd_devices)

    def _model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", choices=list_models())
        p.add_argument("--batch", type=int, default=None,
                       help="batch size (model-specific default)")
        p.add_argument("--height", type=int, default=1080)
        p.add_argument("--width", type=int, default=1920)

    p_int = sub.add_parser("intensity", help="per-layer arithmetic intensity")
    _model_args(p_int)
    p_int.set_defaults(fn=_cmd_intensity)

    p_sel = sub.add_parser("select", help="intensity-guided per-layer selection")
    _model_args(p_sel)
    p_sel.add_argument("--device", default="T4", choices=list_gpus())
    p_sel.add_argument("--json", action="store_true",
                       help="emit the machine-readable deployment plan")
    p_sel.set_defaults(fn=_cmd_select)

    p_sweep = sub.add_parser("sweep", help="Fig. 12 square-GEMM sweep")
    p_sweep.add_argument("--device", default="T4", choices=list_gpus())
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_exp = sub.add_parser("experiments", help="regenerate paper artifacts")
    p_exp.add_argument("names", nargs="*",
                       help="artifact names (default: all)")
    p_exp.add_argument("--list", action="store_true",
                       help="list registered experiment names and exit")
    p_exp.set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
