"""Command-line interface: ``python -m repro ...``.

Subcommands mirror the deployment workflow:

* ``models`` / ``devices`` — list what is available.
* ``intensity MODEL`` — per-layer and aggregate arithmetic intensity.
* ``select MODEL`` — run the intensity-guided selection on a device and
  print (or ``--json``-export) the per-layer result.
* ``deploy MODEL`` — produce the policy's deployment plan (table or
  ``--json``; the JSON loads back via ``DeploymentPlan.from_json`` and
  feeds ``campaign --plan``).
* ``campaign MODEL`` — deploy and run a fault-injection campaign
  against one linear layer through a protected session.
* ``sdc MODEL`` — end-to-end SDC propagation campaign: inject into one
  layer of a *runnable* zoo model, carry corruption to the output, and
  cross-tabulate ABFT verdicts against output corruption, with
  detection-triggered recovery.
* ``fleet deploy|list|diff`` — fleet-scale deployment: sweep models ×
  devices into a persisted plan registry, list its contents, and diff
  plans (scheme and overhead deltas) across devices or versions.
* ``sweep`` — the Fig. 12 square-GEMM sweep on a device.
* ``experiments [NAME...]`` — regenerate paper artifacts.
* ``lint [PATHS...]`` — statically check the repo's own invariants
  (seeded RNG, lock discipline, shm lifecycle, read-only prepared
  state, deterministic records, ``__all__`` drift) — the CI gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .api import (
    DeploymentPlan,
    IntensityGuidedPolicy,
    ProtectedSession,
    as_policy,
    layer_plan_table,
)
from .core import layer_selection_table
from .errors import ConfigurationError, ReproError
from .faults.options import CampaignOptions
from .gpu import get_gpu, list_gpus
from .nn import build_model, list_models
from .roofline import layer_intensities
from .utils import Table
from .utils.serde import model_selection_to_json


def _cmd_models(_: argparse.Namespace) -> int:
    for name in list_models():
        print(name)
    return 0


def _cmd_devices(_: argparse.Namespace) -> int:
    for name in list_gpus():
        spec = get_gpu(name)
        print(f"{spec.name}: CMR {spec.cmr:.0f} "
              f"({spec.matmul_flops / 1e12:.0f} TFLOPs/s, "
              f"{spec.mem_bandwidth / 1e9:.0f} GB/s)")
    return 0


def _build_graph(args: argparse.Namespace):
    """Model-zoo build for the subcommand's geometry arguments."""
    return build_model(
        args.model,
        batch=args.batch,
        h=args.height if args.height is not None else 1080,
        w=args.width if args.width is not None else 1920,
    )


def _cmd_intensity(args: argparse.Namespace) -> int:
    model = _build_graph(args)
    table = Table(
        ["layer", "M", "N", "K", "AI"],
        title=f"{model.name} ({model.input_desc}, batch {model.batch}) — "
              f"aggregate AI {model.aggregate_intensity():.1f}",
    )
    for layer, brk in zip(model, layer_intensities(model.problems)):
        table.add_row([layer.name, layer.problem.m, layer.problem.n,
                       layer.problem.k, brk.intensity])
    print(table.render())
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    spec = get_gpu(args.device)
    selection = IntensityGuidedPolicy().select(_build_graph(args), spec)
    if args.json:
        # This export is loadable deployment input: DeploymentPlan.
        # from_json accepts the selection schema directly.
        print(model_selection_to_json(selection))
        return 0
    print(layer_selection_table(selection).render())
    print()
    print(f"thread-level overhead : "
          f"{selection.scheme_overhead_percent('thread_onesided'):6.2f}%")
    print(f"global overhead       : "
          f"{selection.scheme_overhead_percent('global'):6.2f}%")
    print(f"intensity-guided      : {selection.guided_overhead_percent:6.2f}%")
    return 0


def _policy_token(args: argparse.Namespace) -> str:
    """Combine ``--policy`` and ``--dtype`` into one policy string.

    ``--dtype int8`` suffixes the policy with ``@int8`` — ``guided`` →
    ``guided@int8``, ``fixed:global`` → ``fixed:global@int8`` — so the
    flag is sugar over the token grammar, not a second mechanism.
    """
    token = args.policy or "guided"
    dtype = getattr(args, "dtype", None)
    if dtype is not None and dtype != "fp16":
        if "@" in token:
            raise ConfigurationError(
                f"--dtype {dtype} conflicts with the explicit @dtype in "
                f"--policy {token!r}; pass one or the other"
            )
        token = f"{token}@{dtype}"
    return token


def _build_plan(args: argparse.Namespace) -> DeploymentPlan:
    """Policy → plan for the subcommand's model/device arguments."""
    spec = get_gpu(args.device or "T4")
    return as_policy(_policy_token(args)).assign(_build_graph(args), spec)


def _cmd_deploy(args: argparse.Namespace) -> int:
    plan = _build_plan(args)
    if args.json:
        print(plan.to_json())
        return 0
    print(layer_plan_table(plan).render())
    if plan.has_predictions:
        print()
        for token in sorted(
            {t for layer in plan for t in layer.scheme_times_s}
        ):
            print(f"uniform {token:<16s}: "
                  f"{plan.scheme_overhead_percent(token):6.2f}% overhead")
        print(f"deployed plan           : "
              f"{plan.guided_overhead_percent:6.2f}% overhead")
    return 0


def _load_plan(path: str) -> DeploymentPlan:
    """Read a plan JSON file (``-`` for stdin)."""
    if path == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read plan file: {exc}") from None
    return DeploymentPlan.from_json(text)


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.trials <= 0:
        print(f"--trials must be positive, got {args.trials}", file=sys.stderr)
        return 2
    if args.plan is not None:
        plan = _load_plan(args.plan)
        # The plan fully determines the deployment.  The positional
        # model must agree, the device (which every plan records) must
        # agree when given explicitly, and the flags that pick a
        # different deployment outright — geometry and policy — are
        # rejected, so the user cannot believe they campaigned one
        # configuration while the plan fixes another.
        if plan.model != args.model:
            raise ConfigurationError(
                f"plan file deploys {plan.model!r} but the command names "
                f"{args.model!r}; pass the plan's model"
            )
        if args.device is not None and plan.device != args.device:
            raise ConfigurationError(
                f"plan was built for device {plan.device!r}, command asked "
                f"for --device {args.device}; drop --device or rebuild the "
                f"plan"
            )
        fixed = [
            flag
            for flag, given in (
                ("--batch", args.batch),
                ("--height", args.height),
                ("--width", args.width),
                ("--policy", args.policy),
                ("--dtype", args.dtype),
            )
            if given is not None
        ]
        if fixed:
            raise ConfigurationError(
                f"{', '.join(fixed)}: not allowed with --plan (the plan "
                f"already fixes the deployment); drop them or rebuild the "
                f"plan"
            )
    else:
        plan = _build_plan(args)
    session = ProtectedSession(plan, seed=args.seed)
    layer = args.layer if args.layer is not None else plan.layer_names[0]
    campaign = session.campaign(
        layer, options=CampaignOptions(seed=args.seed, workers=args.workers)
    )
    result = campaign.run_batch(
        args.trials, faults_per_trial=args.faults_per_trial
    )
    entry = plan.layer(layer)
    print(f"model {plan.model} on {plan.device} "
          f"(policy {plan.policy or 'from plan'})")
    print(f"layer {layer}: {entry.m}x{entry.n}x{entry.k} GEMM under "
          f"{entry.scheme}")
    print(f"trials              : {result.n_trials} "
          f"({args.faults_per_trial} fault(s) each)")
    print(f"significant         : {result.n_significant}")
    print(f"detected            : {result.n_detected}")
    print(f"benign alarms       : {result.n_benign_alarms}")
    print(f"coverage            : {result.coverage * 100:.1f}%")
    if result.false_negatives:
        print(f"false negatives     : {len(result.false_negatives)}")
        return 1
    return 0


def _cmd_sdc(args: argparse.Namespace) -> int:
    import numpy as np

    from .faults.recovery import RecoveryPolicy
    from .nn import build_runnable, runnable_input_shape, runnable_models

    if args.trials <= 0:
        print(f"--trials must be positive, got {args.trials}", file=sys.stderr)
        return 2
    if args.model not in runnable_models():
        raise ConfigurationError(
            f"model {args.model!r} has no runnable numeric realization "
            f"(branching architectures are shape-only); runnable models "
            f"are {runnable_models()}"
        )
    batch = args.batch if args.batch is not None else 1
    if args.plan is not None:
        plan = _load_plan(args.plan)
        # Same contract as `campaign --plan`: the plan fixes the
        # deployment, so the named model must agree, an explicit
        # --device must agree, and deployment-picking flags are
        # rejected outright.
        if plan.model != args.model:
            raise ConfigurationError(
                f"plan file deploys {plan.model!r} but the command names "
                f"{args.model!r}; pass the plan's model"
            )
        if args.device is not None and plan.device != args.device:
            raise ConfigurationError(
                f"plan was built for device {plan.device!r}, command asked "
                f"for --device {args.device}; drop --device or rebuild the "
                f"plan"
            )
        fixed = [
            flag
            for flag, given in (
                ("--batch", args.batch),
                ("--height", args.height),
                ("--width", args.width),
                ("--policy", args.policy),
                ("--dtype", args.dtype),
            )
            if given is not None
        ]
        if fixed:
            raise ConfigurationError(
                f"{', '.join(fixed)}: not allowed with --plan (the plan "
                f"already fixes the deployment); drop them or rebuild the "
                f"plan"
            )
    else:
        spec = get_gpu(args.device or "T4")
        graph = build_model(args.model, batch=batch)
        plan = as_policy(_policy_token(args)).assign(graph, spec)
    recovery = None
    if not args.no_recovery:
        recovery = RecoveryPolicy(
            max_retries=args.retries,
            fault_model=args.fault_model,
            on_exhausted=args.on_exhausted,
        )
    runnable = build_runnable(args.model, batch=batch, seed=args.seed)
    session = ProtectedSession(plan, model=runnable, recovery=recovery)
    x = (
        np.random.default_rng([args.seed, 1])
        .standard_normal(runnable_input_shape(args.model, batch=batch))
        * 0.5
    ).astype(np.float16)
    layer = args.layer if args.layer is not None else plan.layer_names[0]
    campaign = session.propagation_campaign(
        layer,
        x=x,
        options=CampaignOptions(seed=args.seed, workers=args.workers),
    )
    result = campaign.run_batch(
        args.trials, faults_per_trial=args.faults_per_trial
    )
    entry = plan.layer(layer)
    print(f"model {plan.model} on {plan.device} "
          f"(policy {plan.policy or 'from plan'})")
    print(f"struck layer {layer}: {entry.m}x{entry.n}x{entry.k} GEMM under "
          f"{entry.scheme}; corruption propagated through "
          f"{len(campaign.downstream_ops)} downstream op(s)")
    print(f"trials              : {result.n_trials} "
          f"({args.faults_per_trial} fault(s) each)")
    crosstab = result.crosstab()
    print(f"masked              : {crosstab[(False, False)]}")
    print(f"benign alarm        : {crosstab[(True, False)]}")
    print(f"detected corruption : {crosstab[(True, True)]}")
    print(f"undetected SDC      : {crosstab[(False, True)]} "
          f"({result.undetected_sdc_rate * 100:.1f}%)")
    if recovery is not None:
        print(f"recovered           : {result.n_recovered} "
              f"({result.total_retries} retries, bit-identity verified)")
        print(f"degraded            : {result.n_degraded}")
        print(f"residual SDC        : {result.n_residual_sdc}")
    return 0


def _cmd_fleet_deploy(args: argparse.Namespace) -> int:
    import os

    from .fleet import PlanRegistry, deploy_fleet

    registry = None
    if args.registry is not None and os.path.exists(args.registry):
        registry = PlanRegistry.load(args.registry)
    fleet = deploy_fleet(
        args.models,
        args.devices,
        policy=_policy_token(args),
        registry=registry,
        batch=args.batch,
        h=args.height if args.height is not None else 1080,
        w=args.width if args.width is not None else 1920,
    )
    print(fleet.summary().render())
    if args.registry is not None:
        fleet.registry.save(args.registry)
        print(f"\nregistry: {len(fleet.registry)} plan version(s) "
              f"across {len(fleet.registry.keys())} slot(s) "
              f"-> {args.registry}")
    return 0


def _cmd_fleet_list(args: argparse.Namespace) -> int:
    from .fleet import PlanRegistry

    registry = PlanRegistry.load(args.registry)
    table = Table(
        ["model", "device", "policy", "versions", "layers", "overhead (%)"],
        title=f"plan registry {args.registry}",
    )
    for key in registry.keys():
        plan = registry.get(key.model, key.device, key.policy)
        table.add_row([
            key.model,
            key.device,
            key.policy,
            registry.versions(key.model, key.device, key.policy),
            len(plan),
            plan.guided_overhead_percent if plan.has_predictions else "-",
        ])
    print(table.render())
    return 0


def _cmd_fleet_diff(args: argparse.Namespace) -> int:
    from .fleet import PlanRegistry, plan_diff

    registry = PlanRegistry.load(args.registry)
    old = registry.get(
        args.model, args.device_a, args.policy, version=args.version_a
    )
    new = registry.get(
        args.model, args.device_b, args.policy, version=args.version_b
    )
    diff = plan_diff(old, new)
    print(diff.render())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        AnalysisConfig,
        lint_paths,
        list_rules,
        render_json,
        render_text,
        write_step_summary,
    )

    if args.list_rules:
        print(list_rules(), end="")
        return 0
    # Config discovery starts at the first linted path, so the gate
    # reads the repo's own [tool.repro.analysis] wherever it runs from.
    try:
        config = AnalysisConfig.load(args.paths[0]).with_overrides(
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None,
        )
        result = lint_paths(args.paths, config)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    write_step_summary(result)
    print(render_json(result) if args.json else render_text(result), end="")
    return 0 if result.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import fig12_square_sweep

    print(fig12_square_sweep(get_gpu(args.device)).render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import EXPERIMENTS

    if args.list:
        if args.names:
            print("--list takes no experiment names", file=sys.stderr)
            return 2
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    for name in names:
        print(f"\n===== {name} =====")
        print(EXPERIMENTS[name]().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arithmetic-intensity-guided ABFT reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list evaluation models").set_defaults(fn=_cmd_models)
    sub.add_parser("devices", help="list device specs").set_defaults(fn=_cmd_devices)

    def _model_args(p: argparse.ArgumentParser) -> None:
        # Geometry flags stay None until given so `campaign --plan` can
        # tell an explicit flag from the default.
        p.add_argument("model", choices=list_models())
        p.add_argument("--batch", type=int, default=None,
                       help="batch size (model-specific default)")
        p.add_argument("--height", type=int, default=None,
                       help="input height (default 1080)")
        p.add_argument("--width", type=int, default=None,
                       help="input width (default 1920)")

    def _deploy_args(p: argparse.ArgumentParser) -> None:
        # None-until-given so `campaign --plan` can tell an explicit
        # flag (which must agree with the plan) from the default.
        _model_args(p)
        p.add_argument("--device", default=None, choices=list_gpus(),
                       help="target device (default T4)")
        p.add_argument("--policy", default=None,
                       help="'guided' (default), 'fixed:TOKEN', or a bare "
                            "scheme token, e.g. fixed:global_multi:2")
        p.add_argument("--dtype", default=None, choices=["fp16", "int8"],
                       help="numeric pipeline to deploy (default fp16); "
                            "int8 prices the quantized executor and "
                            "suffixes the policy token with @int8")

    p_int = sub.add_parser("intensity", help="per-layer arithmetic intensity")
    _model_args(p_int)
    p_int.set_defaults(fn=_cmd_intensity)

    p_sel = sub.add_parser("select", help="intensity-guided per-layer selection")
    _model_args(p_sel)
    p_sel.add_argument("--device", default="T4", choices=list_gpus())
    p_sel.add_argument("--json", action="store_true",
                       help="emit the machine-readable selection (loadable "
                            "via DeploymentPlan.from_json)")
    p_sel.set_defaults(fn=_cmd_select)

    p_dep = sub.add_parser(
        "deploy", help="produce a policy's per-layer deployment plan"
    )
    _deploy_args(p_dep)
    p_dep.add_argument("--json", action="store_true",
                       help="emit the plan JSON (round-trips through "
                            "DeploymentPlan.from_json / campaign --plan)")
    p_dep.set_defaults(fn=_cmd_deploy)

    p_camp = sub.add_parser(
        "campaign",
        help="fault-injection campaign on one layer of a deployed model",
    )
    _deploy_args(p_camp)
    p_camp.add_argument("--plan", default=None, metavar="FILE",
                        help="load a deployment-plan JSON ('-' for stdin) "
                             "instead of running the policy")
    p_camp.add_argument("--layer", default=None,
                        help="linear layer to attack (default: first)")
    p_camp.add_argument("--trials", type=int, default=100)
    p_camp.add_argument("--faults-per-trial", type=int, default=1)
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--workers", type=int, default=None,
                        help="shard trials across N worker processes "
                             "(same records as one process; default: "
                             "in-process)")
    p_camp.set_defaults(fn=_cmd_campaign)

    p_sdc = sub.add_parser(
        "sdc",
        help="end-to-end SDC propagation campaign with recovery on a "
             "runnable zoo model",
    )
    _deploy_args(p_sdc)
    p_sdc.add_argument("--plan", default=None, metavar="FILE",
                       help="load a deployment-plan JSON ('-' for stdin) "
                            "instead of running the policy")
    p_sdc.add_argument("--layer", default=None,
                       help="linear layer to inject into (default: first)")
    p_sdc.add_argument("--trials", type=int, default=100)
    p_sdc.add_argument("--faults-per-trial", type=int, default=1)
    p_sdc.add_argument("--seed", type=int, default=0)
    p_sdc.add_argument("--retries", type=int, default=2,
                       help="recovery retry budget per detection (default 2)")
    p_sdc.add_argument("--fault-model", default="transient",
                       choices=["transient", "sticky"],
                       help="whether retries re-encounter the fault")
    p_sdc.add_argument("--on-exhausted", default="flag-and-propagate",
                       choices=["raise", "flag-and-propagate"],
                       help="behavior when the retry budget is exhausted")
    p_sdc.add_argument("--workers", type=int, default=None,
                       help="shard trials across N worker processes "
                            "(same records as one process; default: "
                            "in-process)")
    p_sdc.add_argument("--no-recovery", action="store_true",
                       help="disable detection-triggered recovery")
    p_sdc.set_defaults(fn=_cmd_sdc)

    p_fleet = sub.add_parser(
        "fleet", help="fleet-scale deployment: registry, sweep, diff"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    p_fdep = fleet_sub.add_parser(
        "deploy",
        help="deploy every model on every device, amortized per device "
             "family, recording plans in a registry",
    )
    p_fdep.add_argument("--models", nargs="+", required=True,
                        choices=list_models(), metavar="MODEL",
                        help="model-zoo names to deploy")
    p_fdep.add_argument("--devices", nargs="+", required=True,
                        choices=list_gpus(), metavar="DEVICE",
                        help="target devices")
    p_fdep.add_argument("--policy", default=None,
                        help="'guided' (default), 'fixed:TOKEN', or a bare "
                             "scheme token")
    p_fdep.add_argument("--dtype", default=None, choices=["fp16", "int8"],
                        help="numeric pipeline to deploy (default fp16)")
    p_fdep.add_argument("--batch", type=int, default=None,
                        help="batch size (model-specific default)")
    p_fdep.add_argument("--height", type=int, default=None,
                        help="input height (default 1080)")
    p_fdep.add_argument("--width", type=int, default=None,
                        help="input width (default 1920)")
    p_fdep.add_argument("--registry", default=None, metavar="FILE",
                        help="plan-registry JSON to merge into and save "
                             "(created if absent; identical re-deploys do "
                             "not add versions)")
    p_fdep.set_defaults(fn=_cmd_fleet_deploy)

    p_flist = fleet_sub.add_parser(
        "list", help="list a plan registry's slots and versions"
    )
    p_flist.add_argument("--registry", required=True, metavar="FILE")
    p_flist.set_defaults(fn=_cmd_fleet_list)

    p_fdiff = fleet_sub.add_parser(
        "diff",
        help="diff two registered plans for one model (across devices "
             "or versions): scheme and overhead deltas",
    )
    p_fdiff.add_argument("model", help="model whose plans to compare")
    p_fdiff.add_argument("device_a", help="device of the old plan")
    p_fdiff.add_argument("device_b", help="device of the new plan")
    p_fdiff.add_argument("--registry", required=True, metavar="FILE")
    p_fdiff.add_argument("--policy", default=None,
                         help="disambiguate when a (model, device) slot is "
                              "registered under several policies")
    p_fdiff.add_argument("--version-a", type=int, default=None,
                         help="old plan version (default: latest)")
    p_fdiff.add_argument("--version-b", type=int, default=None,
                         help="new plan version (default: latest)")
    p_fdiff.set_defaults(fn=_cmd_fleet_diff)

    p_lint = sub.add_parser(
        "lint",
        help="statically check determinism/lock/shm invariants (RL001-RL006)",
    )
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report")
    p_lint.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all registered)")
    p_lint.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print each rule's contract and exit")
    p_lint.set_defaults(fn=_cmd_lint)

    p_sweep = sub.add_parser("sweep", help="Fig. 12 square-GEMM sweep")
    p_sweep.add_argument("--device", default="T4", choices=list_gpus())
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_exp = sub.add_parser("experiments", help="regenerate paper artifacts")
    p_exp.add_argument("names", nargs="*",
                       help="artifact names (default: all)")
    p_exp.add_argument("--list", action="store_true",
                       help="list registered experiment names and exit")
    p_exp.set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
