"""Hierarchical tile configurations (threadblock / warp / thread / MMA).

High-performance GPU GEMMs decompose the kernel-level problem into a
hierarchy (paper Fig. 2): each threadblock computes an ``Mb x Nb`` tile
of ``C``, each of its warps an ``Mw x Nw`` sub-tile, and each of a
warp's 32 threads an ``Mt x Nt`` fragment.  Along ``K``, threads advance
in steps of 2 loading an ``Mt x 2`` chunk of ``At`` and a ``2 x Nt``
chunk of ``Bt``, feeding ``Mt*Nt/2`` m16n8k8 MMAs per step (paper Fig. 3).

The CUTLASS profiler workflow the paper integrates with (§5.3) tries
several tile configurations per problem and keeps the fastest; this
module supplies the candidate set and the same selection heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import TilingError
from ..utils import ceil_div, check_positive_int
from .problem import GemmProblem

#: Per-thread K-advance per mainloop step (paper Fig. 3).
KSTEP = 2

#: m16n8k8 Tensor Core MMA: warp-wide FLOPs per instruction.
MMA_M, MMA_N, MMA_K = 16, 8, 8
FLOPS_PER_MMA = 2 * MMA_M * MMA_N * MMA_K  # 2048


@dataclass(frozen=True)
class TileConfig:
    """One point in the CUTLASS-style configuration space.

    Attributes
    ----------
    mb, nb, kb:
        Threadblock tile (``kb`` is the smem-staged K slice).
    mw, nw:
        Warp tile.
    mt, nt:
        Per-thread fragment of the warp tile (``Mt x Nt`` accumulators).
    """

    mb: int
    nb: int
    kb: int
    mw: int
    nw: int
    mt: int
    nt: int

    def __post_init__(self) -> None:
        for name in ("mb", "nb", "kb", "mw", "nw", "mt", "nt"):
            check_positive_int(getattr(self, name), name)
        if self.mb % self.mw or self.nb % self.nw:
            raise TilingError(f"warp tile {self.mw}x{self.nw} must divide "
                              f"threadblock tile {self.mb}x{self.nb}")
        if self.mw * self.nw != 32 * self.mt * self.nt:
            raise TilingError(
                f"thread tile {self.mt}x{self.nt} x 32 threads must cover the "
                f"warp tile {self.mw}x{self.nw}"
            )
        if self.mt % 2:
            raise TilingError(
                f"mt={self.mt} must be even: each MMA consumes two consecutive "
                f"rows of the thread's A fragment (paper Fig. 3)"
            )
        if self.kb % KSTEP:
            raise TilingError(f"kb={self.kb} must be a multiple of the K-step ({KSTEP})")

    # ------------------------------------------------------------------
    @property
    def warps_per_block(self) -> int:
        """Warps in one threadblock."""
        return (self.mb // self.mw) * (self.nb // self.nw)

    @property
    def threads_per_block(self) -> int:
        """Threads in one threadblock."""
        return self.warps_per_block * 32

    @property
    def mmas_per_thread_step(self) -> int:
        """MMAs a thread participates in per K-step (``Mt*Nt/2``, Fig. 3)."""
        return (self.mt * self.nt) // 2

    @property
    def loaded_elements_per_step(self) -> int:
        """FP16 elements a thread loads per K-step (``Mt*2 + 2*Nt``)."""
        return self.mt * KSTEP + KSTEP * self.nt

    def base_registers_per_thread(self) -> int:
        """Register estimate for the unprotected mainloop.

        ``Mt*Nt`` FP32 accumulators, double-buffered FP16 fragments of
        ``At``/``Bt`` (two halves per register), plus bookkeeping
        (addresses, predicates, loop counters).
        """
        accumulators = self.mt * self.nt
        fragments = 2 * (self.mt * KSTEP + KSTEP * self.nt) // 2  # double-buffered
        bookkeeping = 24
        return accumulators + fragments + bookkeeping

    def smem_per_block(self, dtype_bytes: int = 2) -> int:
        """Shared-memory staging for double-buffered A/B threadblock slices."""
        return 2 * (self.mb + self.nb) * self.kb * dtype_bytes

    # ------------------------------------------------------------------
    def grid(self, problem: GemmProblem) -> tuple[int, int]:
        """Threadblock grid (rows, cols) covering the padded problem."""
        return ceil_div(problem.m_pad, self.mb), ceil_div(problem.n_pad, self.nb)

    def blocks(self, problem: GemmProblem) -> int:
        """Total threadblocks launched for ``problem``."""
        rows, cols = self.grid(problem)
        return rows * cols

    def ksteps(self, problem: GemmProblem) -> int:
        """Mainloop K-steps each thread performs."""
        return ceil_div(problem.k_pad, KSTEP)

    def tile_padded_dims(self, problem: GemmProblem) -> tuple[int, int, int]:
        """Problem dims rounded up to whole threadblock tiles / K-steps."""
        rows, cols = self.grid(problem)
        return rows * self.mb, cols * self.nb, self.ksteps(problem) * KSTEP

    def waste_fraction(self, problem: GemmProblem) -> float:
        """Fraction of launched math wasted on tile-padding."""
        m_t, n_t, k_t = self.tile_padded_dims(problem)
        useful = problem.m_pad * problem.n_pad * problem.k_pad
        return 1.0 - useful / float(m_t * n_t * k_t)

    def __str__(self) -> str:
        return (f"tb{self.mb}x{self.nb}x{self.kb}"
                f"_w{self.mw}x{self.nw}_t{self.mt}x{self.nt}")


#: Candidate configurations mirroring CUTLASS's FP16 Tensor-Core kernel
#: palette on Turing, from large throughput tiles down to small tiles
#: suited to skinny, launch-bound problems.
DEFAULT_TILE_CONFIGS: tuple[TileConfig, ...] = (
    TileConfig(mb=256, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8),
    TileConfig(mb=128, nb=256, kb=32, mw=64, nw=64, mt=16, nt=8),
    TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8),
    TileConfig(mb=128, nb=64, kb=32, mw=64, nw=32, mt=8, nt=8),
    TileConfig(mb=64, nb=128, kb=32, mw=32, nw=64, mt=8, nt=8),
    TileConfig(mb=64, nb=64, kb=32, mw=32, nw=32, mt=8, nt=4),
    TileConfig(mb=64, nb=32, kb=32, mw=32, nw=16, mt=4, nt=4),
    TileConfig(mb=32, nb=32, kb=32, mw=16, nw=16, mt=4, nt=2),
)


def enumerate_tiles(
    problem: GemmProblem,
    candidates: Sequence[TileConfig] = DEFAULT_TILE_CONFIGS,
) -> list[TileConfig]:
    """Candidate tiles for ``problem``, ordered as given.

    All candidates are legal for any problem (tiles pad); enumeration
    exists so the profiler can rank them by modeled time.
    """
    if not candidates:
        raise TilingError("no tile candidates supplied")
    return list(candidates)


def select_tile(
    problem: GemmProblem,
    candidates: Sequence[TileConfig] = DEFAULT_TILE_CONFIGS,
    *,
    min_blocks: int = 1,
) -> TileConfig:
    """Pick a tile by the waste-then-size heuristic.

    Prefers the configuration with the least padding waste, breaking
    ties toward larger tiles (better data reuse).  The full profiler in
    ``repro.core.profiler`` ranks by modeled time instead; this heuristic
    is the cheap default used by shape-only analyses.
    """
    tiles = enumerate_tiles(problem, candidates)
    viable = [t for t in tiles if t.blocks(problem) >= min_blocks]
    if not viable:
        viable = tiles
    return min(
        viable,
        key=lambda t: (round(t.waste_fraction(problem), 6), -(t.mb * t.nb)),
    )
