"""Convolution-to-GEMM lowering (shape math and numeric im2col).

The paper treats convolutional layers as matrix multiplications
(§2.1): for a conv with ``C_in`` input channels, ``C_out`` filters of
size ``kh x kw`` over a batch of ``B`` images producing ``Ho x Wo``
outputs, the GEMM view is

    M = B * Ho * Wo,   N = C_out,   K = C_in * kh * kw.

``conv_gemm_shape`` provides exactly this mapping (it is what the
arithmetic-intensity pipeline consumes); ``im2col`` materializes the
``M x K`` activation matrix for numeric protected inference.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..utils import check_non_negative_int, check_positive_int


def conv_output_shape(
    h: int,
    w: int,
    *,
    kernel: tuple[int, int],
    stride: tuple[int, int] = (1, 1),
    padding: tuple[int, int] = (0, 0),
) -> tuple[int, int]:
    """Spatial output shape of a convolution (floor semantics)."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    check_positive_int(h, "h")
    check_positive_int(w, "w")
    check_positive_int(kh, "kernel height")
    check_positive_int(kw, "kernel width")
    check_positive_int(sh, "stride height")
    check_positive_int(sw, "stride width")
    check_non_negative_int(ph, "padding height")
    check_non_negative_int(pw, "padding width")
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    if ho <= 0 or wo <= 0:
        raise ShapeError(
            f"conv kernel {kernel} stride {stride} padding {padding} "
            f"does not fit input {h}x{w}"
        )
    return ho, wo


def conv_gemm_shape(
    *,
    batch: int,
    in_channels: int,
    out_channels: int,
    h: int,
    w: int,
    kernel: tuple[int, int],
    stride: tuple[int, int] = (1, 1),
    padding: tuple[int, int] = (0, 0),
) -> tuple[int, int, int]:
    """(M, N, K) of the GEMM implementing the convolution."""
    check_positive_int(batch, "batch")
    check_positive_int(in_channels, "in_channels")
    check_positive_int(out_channels, "out_channels")
    ho, wo = conv_output_shape(h, w, kernel=kernel, stride=stride, padding=padding)
    m = batch * ho * wo
    n = out_channels
    k = in_channels * kernel[0] * kernel[1]
    return m, n, k


def im2col(
    x: np.ndarray,
    *,
    kernel: tuple[int, int],
    stride: tuple[int, int] = (1, 1),
    padding: tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Lower an NCHW activation tensor to the GEMM ``A`` matrix.

    Parameters
    ----------
    x:
        ``(batch, channels, H, W)`` input tensor.

    Returns
    -------
    np.ndarray
        ``(batch * Ho * Wo, channels * kh * kw)`` matrix whose row
        ``b*Ho*Wo + i*Wo + j`` is the receptive field of output pixel
        ``(i, j)`` of image ``b``, flattened channel-major — matching a
        weight matrix of shape ``(C_in*kh*kw, C_out)`` built from
        ``weights.reshape(C_out, -1).T``.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got {x.ndim}-D")
    batch, channels, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    ho, wo = conv_output_shape(h, w, kernel=kernel, stride=stride, padding=padding)

    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    # Strided sliding-window view: (B, C, Ho, Wo, kh, kw) without copying.
    sb, sc, srow, scol = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, ho, wo, kh, kw),
        strides=(sb, sc, srow * sh, scol * sw, srow, scol),
        writeable=False,
    )
    # -> (B, Ho, Wo, C, kh, kw) -> (B*Ho*Wo, C*kh*kw); one materializing copy.
    return np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5)).reshape(
        batch * ho * wo, channels * kh * kw
    )


def conv_weights_to_gemm(weights: np.ndarray) -> np.ndarray:
    """Reshape ``(C_out, C_in, kh, kw)`` filters to the GEMM ``B`` matrix."""
    if weights.ndim != 4:
        raise ShapeError(f"expected OIHW weights, got {weights.ndim}-D")
    c_out = weights.shape[0]
    return weights.reshape(c_out, -1).T.copy()
