"""GEMM problem description and the paper's FLOP/byte accounting.

A linear layer is the multiplication of an ``M x K`` activation matrix
``A`` by a ``K x N`` weight matrix ``B`` producing ``M x N`` output ``C``
(paper §2.1).  Following the paper's §6.2, dimensions are padded to
multiples of 8 to operate with the m16n8k8 Tensor Core MMA; the
arithmetic-intensity numbers the paper prints (e.g. DLRM MLP-Bottom
AI = 7.4 at batch 1) are only reproduced when this padding is applied,
which is how this module computes FLOPs and bytes by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONSTANTS
from ..errors import ShapeError
from ..utils import check_positive_int, round_up

#: The paper pads M, N and K to multiples of eight (§6.2).
PAD_MULTIPLE = 8


@dataclass(frozen=True)
class GemmProblem:
    """An ``M x K @ K x N`` FP16 GEMM with optional label.

    Attributes
    ----------
    m, n, k:
        Logical (unpadded) problem dimensions.
    label:
        Optional human-readable origin, e.g. ``"resnet50/layer3.0.conv2"``.
    """

    m: int
    n: int
    k: int
    label: str = ""

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.k, "k")

    # ------------------------------------------------------------------
    # Padded view (execution view)
    # ------------------------------------------------------------------
    @property
    def m_pad(self) -> int:
        """M rounded up to the MMA-operability multiple (8)."""
        return round_up(self.m, PAD_MULTIPLE)

    @property
    def n_pad(self) -> int:
        """N rounded up to the MMA-operability multiple (8)."""
        return round_up(self.n, PAD_MULTIPLE)

    @property
    def k_pad(self) -> int:
        """K rounded up to the MMA-operability multiple (8)."""
        return round_up(self.k, PAD_MULTIPLE)

    # ------------------------------------------------------------------
    # Paper-style FLOP / byte accounting
    # ------------------------------------------------------------------
    def flops(self, *, padded: bool = True) -> float:
        """Multiply-accumulate FLOPs (2 per MAC) of the GEMM."""
        if padded:
            return 2.0 * self.m_pad * self.n_pad * self.k_pad
        return 2.0 * self.m * self.n * self.k

    def bytes_moved(self, *, padded: bool = True, dtype_bytes: int | None = None) -> float:
        """Bytes transferred for A, B and C, each touched once.

        This is the GEMM-view accounting the paper's arithmetic
        intensities use: ``dtype * (M*K + K*N + M*N)``.
        """
        nbytes = DEFAULT_CONSTANTS.fp16_bytes if dtype_bytes is None else dtype_bytes
        if nbytes <= 0:
            raise ShapeError(f"dtype_bytes must be positive, got {nbytes}")
        if padded:
            m, n, k = self.m_pad, self.n_pad, self.k_pad
        else:
            m, n, k = self.m, self.n, self.k
        return float(nbytes) * (m * k + k * n + m * n)

    def arithmetic_intensity(self, *, padded: bool = True) -> float:
        """FLOPs per byte (Eq. 1 LHS of the paper)."""
        return self.flops(padded=padded) / self.bytes_moved(padded=padded)

    def with_label(self, label: str) -> "GemmProblem":
        """A copy of this problem carrying ``label``."""
        return GemmProblem(self.m, self.n, self.k, label=label)

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"GEMM {self.m}x{self.n}x{self.k}{tag}"
