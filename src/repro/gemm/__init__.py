"""CUTLASS-like hierarchical GEMM engine (shapes, costs, numeric executor).

The engine serves two roles:

1. **Cost accounting** (``problem``, ``tiles``, ``counters``): reproduce
   how a CUTLASS FP16 Tensor-Core kernel decomposes a GEMM into
   threadblock / warp / thread tiles and count the Tensor-Core MMAs,
   CUDA-core ops, DRAM bytes, registers, and issue slots each
   configuration consumes.  ABFT schemes add their redundant work on top
   of these counters and the ``repro.gpu`` latency model prices it.
2. **Numeric execution** (``executor``, ``mma``): actually compute the
   GEMM in FP16-with-FP32-accumulation over the same tile decomposition,
   so ABFT checks operate on real numbers and injected faults are
   genuinely caught (or missed) by the same arithmetic as on a GPU.
"""

from .problem import GemmProblem
from .tiles import TileConfig, DEFAULT_TILE_CONFIGS, enumerate_tiles, select_tile
from .counters import MainloopCost, mainloop_cost
from .reference import reference_gemm
from .executor import (
    EXECUTION_STATS,
    ExecutionStats,
    Int8TiledGemm,
    TiledGemm,
    executor_for,
)
from .im2col import conv_output_shape, conv_gemm_shape, im2col

__all__ = [
    "EXECUTION_STATS",
    "ExecutionStats",
    "GemmProblem",
    "TileConfig",
    "DEFAULT_TILE_CONFIGS",
    "enumerate_tiles",
    "select_tile",
    "MainloopCost",
    "mainloop_cost",
    "reference_gemm",
    "TiledGemm",
    "Int8TiledGemm",
    "executor_for",
    "conv_output_shape",
    "conv_gemm_shape",
    "im2col",
]
