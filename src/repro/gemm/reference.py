"""Reference GEMM used as ground truth in tests and fault campaigns."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def reference_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """FP32-accumulated product of FP16 (or float) operands.

    Mirrors the numerics of a Tensor-Core GEMM: operands quantized to
    FP16, accumulation in FP32.  Returns FP32 (callers quantize the
    epilogue output themselves when modeling FP16 storage).
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"reference_gemm expects 2-D operands, got {a.ndim}-D/{b.ndim}-D")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    a16 = np.asarray(a, dtype=np.float16)
    b16 = np.asarray(b, dtype=np.float16)
    return a16.astype(np.float32) @ b16.astype(np.float32)
