"""Numeric hierarchical GEMM executor.

Executes an FP16 GEMM over the same decomposition the cost model counts:
operands are padded to whole thread tiles, accumulation happens in FP32
in chunks of the MMA K-extent (8), and the result is exposed both as the
padded FP32 accumulator grid (what ABFT checks and fault injection
operate on) and as the cropped logical output.

The per-scalar triple loop of ``gemm.mma.gemm_by_mma`` defines the
semantics; this executor vectorizes them with NumPy (see the HPC guides:
vectorize, avoid copies, accumulate in place).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..utils import ceil_div, round_up
from .problem import GemmProblem
from .tiles import MMA_K, TileConfig


@dataclass
class ExecutionStats:
    """Process-wide counters of fault-invariant numeric work.

    The prepared-execution engine exists to amortize exactly this work
    across fault trials and forward passes; these counters let tests and
    benchmarks *prove* the amortization (e.g. "a campaign of N trials
    runs the clean GEMM once") instead of inferring it from timings.

    Attributes
    ----------
    gemms:
        Clean padded FP32-accumulated GEMMs (:meth:`TiledGemm.multiply`).
    weight_reductions:
        Weight-side (``B``) checksum reduction builds.
    activation_reductions:
        Activation-side (``A``) checksum reduction builds.
    """

    gemms: int = 0
    weight_reductions: int = 0
    activation_reductions: int = 0

    def reset(self) -> None:
        """Zero all counters (call at the start of a measured region)."""
        self.gemms = 0
        self.weight_reductions = 0
        self.activation_reductions = 0

    def snapshot(self) -> tuple[int, int, int]:
        """Current ``(gemms, weight_reductions, activation_reductions)``."""
        return (self.gemms, self.weight_reductions, self.activation_reductions)


#: Module-level stats instance every executor and checksum build reports to.
EXECUTION_STATS = ExecutionStats()


class TiledGemm:
    """Numeric executor for one (problem, tile configuration) pair.

    Parameters
    ----------
    problem:
        Logical GEMM dimensions.
    tile:
        Tile configuration; the executor pads the operands to whole
        thread tiles so every thread owns a full ``Mt x Nt`` fragment.
    k_chunk:
        Accumulation chunk along K in elements; defaults to the MMA
        K-extent (8) for Tensor-Core-faithful accumulation ordering.
    """

    #: Operand dtype token: ``"fp16"`` here, ``"int8"`` on the quantized
    #: subclass.  Schemes key caches and pick detection constants by it.
    dtype = "fp16"

    def __init__(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        *,
        k_chunk: int = MMA_K,
    ) -> None:
        if k_chunk <= 0 or k_chunk % MMA_K:
            raise ShapeError(f"k_chunk must be a positive multiple of {MMA_K}")
        self.problem = problem
        self.tile = tile
        self.k_chunk = k_chunk
        # Pad to whole thread tiles (>= the pad-to-8 execution padding).
        self.m_tiles = ceil_div(problem.m_pad, tile.mt)
        self.n_tiles = ceil_div(problem.n_pad, tile.nt)
        self.m_full = self.m_tiles * tile.mt
        self.n_full = self.n_tiles * tile.nt
        self.k_full = round_up(problem.k_pad, MMA_K)

    # ------------------------------------------------------------------
    # Operand handling
    # ------------------------------------------------------------------
    def pad_a(self, a: np.ndarray) -> np.ndarray:
        """Zero-pad ``A`` to ``(m_full, k_full)`` and quantize to FP16."""
        if a.shape != (self.problem.m, self.problem.k):
            raise ShapeError(
                f"A must be {self.problem.m}x{self.problem.k}, got {a.shape}"
            )
        out = np.zeros((self.m_full, self.k_full), dtype=np.float16)
        out[: a.shape[0], : a.shape[1]] = a.astype(np.float16)
        return out

    def pad_b(self, b: np.ndarray) -> np.ndarray:
        """Zero-pad ``B`` to ``(k_full, n_full)`` and quantize to FP16."""
        if b.shape != (self.problem.k, self.problem.n):
            raise ShapeError(
                f"B must be {self.problem.k}x{self.problem.n}, got {b.shape}"
            )
        out = np.zeros((self.k_full, self.n_full), dtype=np.float16)
        out[: b.shape[0], : b.shape[1]] = b.astype(np.float16)
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def multiply(self, a_pad: np.ndarray, b_pad: np.ndarray) -> np.ndarray:
        """FP32-accumulated product of padded FP16 operands.

        Accumulates chunk-by-chunk along K (chunk = ``k_chunk``) into a
        single FP32 accumulator, mirroring the sequential MMA
        accumulation of the hardware mainloop.
        """
        if a_pad.shape != (self.m_full, self.k_full):
            raise ShapeError(f"padded A must be {self.m_full}x{self.k_full}")
        if b_pad.shape != (self.k_full, self.n_full):
            raise ShapeError(f"padded B must be {self.k_full}x{self.n_full}")
        EXECUTION_STATS.gemms += 1
        a32 = a_pad.astype(np.float32)
        b32 = b_pad.astype(np.float32)
        acc = np.zeros((self.m_full, self.n_full), dtype=np.float32)
        for k0 in range(0, self.k_full, self.k_chunk):
            k1 = min(k0 + self.k_chunk, self.k_full)
            # In-place accumulate: no temporary C-sized copies per chunk.
            acc += a32[:, k0:k1] @ b32[k0:k1, :]
        return acc

    def run(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pad, execute, and return the padded FP32 accumulator grid."""
        return self.multiply(self.pad_a(a), self.pad_b(b))

    def epilogue(self, values: np.ndarray) -> np.ndarray:
        """Lower accumulator values to the logical FP16 output domain.

        The FP16 pipeline's epilogue is the plain FP32 -> FP16 downcast
        (overflow saturates to ``inf`` exactly as a GPU store would); the
        INT8 pipeline overrides this with the dequantizing rescale.
        """
        with np.errstate(over="ignore"):
            return values.astype(np.float16)

    def crop(self, c_pad: np.ndarray) -> np.ndarray:
        """Slice the logical ``M x N`` output out of the padded grid."""
        return c_pad[: self.problem.m, : self.problem.n]

    # ------------------------------------------------------------------
    # Thread-tile views (used by thread-level ABFT checks)
    # ------------------------------------------------------------------
    def thread_tile_view(self, c_pad: np.ndarray) -> np.ndarray:
        """View of ``C`` as ``(m_tiles, mt, n_tiles, nt)`` thread fragments."""
        if c_pad.shape != (self.m_full, self.n_full):
            raise ShapeError(
                f"padded C must be {self.m_full}x{self.n_full}, got {c_pad.shape}"
            )
        return c_pad.reshape(self.m_tiles, self.tile.mt, self.n_tiles, self.tile.nt)

    def thread_tile_view_batch(self, c_batch: np.ndarray) -> np.ndarray:
        """Stacked grids as ``(N, m_tiles, mt, n_tiles, nt)`` fragments."""
        self._check_batch(c_batch)
        return c_batch.reshape(
            len(c_batch), self.m_tiles, self.tile.mt, self.n_tiles, self.tile.nt
        )

    def _check_batch(self, c_batch: np.ndarray) -> None:
        if c_batch.ndim != 3 or c_batch.shape[1:] != (self.m_full, self.n_full):
            raise ShapeError(
                f"stacked padded C must be (N, {self.m_full}, {self.n_full}), "
                f"got {c_batch.shape}"
            )

    def tile_of_element(self, row: int, col: int) -> tuple[int, int]:
        """Thread-tile grid coordinates owning output element (row, col)."""
        if not (0 <= row < self.m_full and 0 <= col < self.n_full):
            raise ShapeError(
                f"element ({row}, {col}) outside padded output "
                f"{self.m_full}x{self.n_full}"
            )
        return row // self.tile.mt, col // self.tile.nt


class Int8TiledGemm(TiledGemm):
    """INT8 quantized executor: INT8 operands, INT32 accumulation.

    Quantization is symmetric per-tensor (scale = max|x| / 127, no zero
    point — a zero point would break the linearity the checksum
    invariants rely on).  ``pad_a`` / ``pad_b`` quantize and record the
    operand scale; ``multiply`` accumulates the quantized product
    exactly in INT32; ``epilogue`` dequantizes by ``a_scale * b_scale``
    back to the FP16 output domain.

    Exactness: every INT32 partial product is ``<= k * 127 * 127``,
    far inside the INT32 range for the shapes this repo models, so the
    quantized accumulator is *exact* integer arithmetic — which is what
    lets the INT8 detection tolerance collapse to a half-ULP constant.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.gemm import GemmProblem, Int8TiledGemm, select_tile
    >>> problem = GemmProblem(m=8, n=8, k=8)
    >>> gemm = Int8TiledGemm(problem, select_tile(problem))
    >>> a = np.full((8, 8), 0.5, dtype=np.float16)
    >>> acc = gemm.run(a, a)
    >>> acc.dtype
    dtype('int32')
    >>> float(gemm.epilogue(gemm.crop(acc))[0, 0])
    2.0
    """

    dtype = "int8"

    def __init__(
        self,
        problem: GemmProblem,
        tile: TileConfig,
        *,
        k_chunk: int = MMA_K,
    ) -> None:
        super().__init__(problem, tile, k_chunk=k_chunk)
        self.a_scale = 1.0
        self.b_scale = 1.0

    @staticmethod
    def scale_for(x: np.ndarray) -> float:
        """Symmetric per-tensor scale: ``max|x| / 127`` (1.0 if all-zero)."""
        peak = float(np.max(np.abs(np.asarray(x, dtype=np.float32))))
        return peak / 127.0 if peak > 0.0 else 1.0

    def _quantize(self, x: np.ndarray, scale: float) -> np.ndarray:
        scaled = np.asarray(x, dtype=np.float32) / np.float32(scale)
        return np.clip(np.rint(scaled), -127, 127).astype(np.int8)

    def pad_a(self, a: np.ndarray) -> np.ndarray:
        """Zero-pad ``A`` to ``(m_full, k_full)`` and quantize to INT8."""
        if a.shape != (self.problem.m, self.problem.k):
            raise ShapeError(
                f"A must be {self.problem.m}x{self.problem.k}, got {a.shape}"
            )
        self.a_scale = self.scale_for(a)
        out = np.zeros((self.m_full, self.k_full), dtype=np.int8)
        out[: a.shape[0], : a.shape[1]] = self._quantize(a, self.a_scale)
        return out

    def pad_b(self, b: np.ndarray) -> np.ndarray:
        """Zero-pad ``B`` to ``(k_full, n_full)`` and quantize to INT8."""
        if b.shape != (self.problem.k, self.problem.n):
            raise ShapeError(
                f"B must be {self.problem.k}x{self.problem.n}, got {b.shape}"
            )
        self.b_scale = self.scale_for(b)
        out = np.zeros((self.k_full, self.n_full), dtype=np.int8)
        out[: b.shape[0], : b.shape[1]] = self._quantize(b, self.b_scale)
        return out

    def multiply(self, a_pad: np.ndarray, b_pad: np.ndarray) -> np.ndarray:
        """Exact INT32-accumulated product of padded INT8 operands."""
        if a_pad.shape != (self.m_full, self.k_full):
            raise ShapeError(f"padded A must be {self.m_full}x{self.k_full}")
        if b_pad.shape != (self.k_full, self.n_full):
            raise ShapeError(f"padded B must be {self.k_full}x{self.n_full}")
        EXECUTION_STATS.gemms += 1
        a32 = a_pad.astype(np.int32)
        b32 = b_pad.astype(np.int32)
        acc = np.zeros((self.m_full, self.n_full), dtype=np.int32)
        for k0 in range(0, self.k_full, self.k_chunk):
            k1 = min(k0 + self.k_chunk, self.k_full)
            acc += a32[:, k0:k1] @ b32[k0:k1, :]
        return acc

    def epilogue(self, values: np.ndarray) -> np.ndarray:
        """Dequantize INT32 accumulator values to the FP16 output domain."""
        scale = np.float32(self.a_scale * self.b_scale)
        with np.errstate(over="ignore"):
            return (values.astype(np.float32) * scale).astype(np.float16)


def executor_for(
    problem: GemmProblem, tile: TileConfig, dtype: str = "fp16"
) -> TiledGemm:
    """Executor for ``dtype``: :class:`TiledGemm` or :class:`Int8TiledGemm`.

    Examples
    --------
    >>> from repro.gemm import GemmProblem, executor_for, select_tile
    >>> problem = GemmProblem(m=8, n=8, k=8)
    >>> executor_for(problem, select_tile(problem), "int8").dtype
    'int8'
    """
    if dtype == "fp16":
        return TiledGemm(problem, tile)
    if dtype == "int8":
        return Int8TiledGemm(problem, tile)
    raise ShapeError(f"unknown executor dtype {dtype!r} (expected fp16|int8)")
