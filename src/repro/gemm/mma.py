"""The m16n8k8 Tensor Core MMA primitive, executed numerically.

One MMA multiplies a ``16 x 8`` FP16 fragment ``Atc`` by an ``8 x 8``
FP16 fragment ``Btc`` and accumulates into a ``16 x 8`` FP32 fragment
``Ctc`` (paper §2.1).  The numeric executor uses larger vectorized
chunks for speed, but this primitive is the ground-truth definition the
executor's chunking is tested against, and the granularity at which
MMA-level faults are defined.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .tiles import MMA_K, MMA_M, MMA_N


def mma_m16n8k8(
    a_frag: np.ndarray,
    b_frag: np.ndarray,
    c_frag: np.ndarray | None = None,
) -> np.ndarray:
    """Execute one m16n8k8 matrix-multiply-accumulate.

    Parameters
    ----------
    a_frag:
        ``16 x 8`` FP16 operand fragment.
    b_frag:
        ``8 x 8`` FP16 operand fragment.
    c_frag:
        Optional ``16 x 8`` FP32 accumulator; a zero fragment is used
        when omitted.  The input is not mutated.

    Returns
    -------
    np.ndarray
        New ``16 x 8`` FP32 accumulator fragment.
    """
    if a_frag.shape != (MMA_M, MMA_K):
        raise ShapeError(f"A fragment must be {MMA_M}x{MMA_K}, got {a_frag.shape}")
    if b_frag.shape != (MMA_K, MMA_N):
        raise ShapeError(f"B fragment must be {MMA_K}x{MMA_N}, got {b_frag.shape}")
    acc = (
        np.zeros((MMA_M, MMA_N), dtype=np.float32)
        if c_frag is None
        else np.array(c_frag, dtype=np.float32, copy=True)
    )
    if acc.shape != (MMA_M, MMA_N):
        raise ShapeError(f"C fragment must be {MMA_M}x{MMA_N}, got {acc.shape}")
    a16 = np.asarray(a_frag, dtype=np.float16).astype(np.float32)
    b16 = np.asarray(b_frag, dtype=np.float16).astype(np.float32)
    acc += a16 @ b16
    return acc


def gemm_by_mma(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Compute a (multiple-of-MMA-shape) GEMM strictly MMA by MMA.

    Slow triple loop over ``16 x 8 x 8`` fragments; used only in tests
    to pin down the executor's accumulation semantics.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ShapeError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    if m % MMA_M or n % MMA_N or k % MMA_K:
        raise ShapeError(
            f"gemm_by_mma needs dims divisible by {MMA_M}x{MMA_N}x{MMA_K}, "
            f"got {m}x{n}x{k}"
        )
    c = np.zeros((m, n), dtype=np.float32)
    for i in range(0, m, MMA_M):
        for j in range(0, n, MMA_N):
            frag = c[i : i + MMA_M, j : j + MMA_N]
            for kk in range(0, k, MMA_K):
                frag = mma_m16n8k8(
                    a[i : i + MMA_M, kk : kk + MMA_K],
                    b[kk : kk + MMA_K, j : j + MMA_N],
                    frag,
                )
            c[i : i + MMA_M, j : j + MMA_N] = frag
    return c
