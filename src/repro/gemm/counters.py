"""Cost counters for the unprotected GEMM mainloop.

These counters are the ledger every ABFT scheme adds its redundant work
to.  They count, for one kernel launch of one tile configuration:

* Tensor-Core FLOPs (tile-quantized: padding tiles do real math),
* CUDA-core (ALU) FP16-lane ops of the mainloop bookkeeping,
* DRAM bytes (GEMM view, consistent with the paper's AI accounting),
* warp-instruction issue slots,
* per-thread registers and per-block shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONSTANTS, ModelConstants
from ..gpu.timing import KernelWork
from .problem import GemmProblem
from .tiles import FLOPS_PER_MMA, TileConfig

#: Bytes a single warp-wide 128-bit-per-thread load instruction moves.
BYTES_PER_MEM_INSTR = 32 * 16

#: FP16 lanes retired by one warp-wide FP16x2 ALU instruction.
LANES_PER_ALU_INSTR = 64


@dataclass(frozen=True)
class MainloopCost:
    """Resource demands of the unprotected GEMM mainloop.

    Attributes
    ----------
    problem, tile:
        What was costed.
    blocks, threads_total, ksteps:
        Launch geometry: threadblocks, total threads, mainloop K-steps.
    tc_flops:
        Tensor-Core FLOPs including tile-padding waste (the hardware
        really executes padded tiles).
    alu_lane_ops:
        Mainloop CUDA-core work: address arithmetic, predicates, loop
        bookkeeping, and the lane-level share of load/store handling.
    dram_bytes:
        A + B + C bytes, each matrix touched once (paper AI accounting).
    issue_slots:
        Warp-scheduler slots: MMA instructions + ALU instructions +
        memory instructions.
    registers_per_thread, smem_per_block:
        Occupancy inputs for the unprotected kernel.
    """

    problem: GemmProblem
    tile: TileConfig
    blocks: int
    threads_total: int
    ksteps: int
    tc_flops: float
    alu_lane_ops: float
    dram_bytes: float
    issue_slots: float
    registers_per_thread: int
    smem_per_block: int

    @property
    def mma_instructions(self) -> float:
        """Warp-wide MMA instructions implied by ``tc_flops``."""
        return self.tc_flops / FLOPS_PER_MMA

    def to_kernel_work(
        self,
        *,
        extra_tc_flops: float = 0.0,
        extra_alu_ops: float = 0.0,
        extra_bytes: float = 0.0,
        extra_issue_slots: float = 0.0,
        extra_registers: int = 0,
        launches: int = 1,
        constants: ModelConstants = DEFAULT_CONSTANTS,
    ) -> KernelWork:
        """Assemble a :class:`KernelWork` with scheme deltas applied."""
        extra_mma_instrs = extra_tc_flops / FLOPS_PER_MMA
        extra_alu_instrs = extra_alu_ops / LANES_PER_ALU_INSTR
        return KernelWork(
            matmul_flops=self.tc_flops + extra_tc_flops,
            alu_ops=self.alu_lane_ops + extra_alu_ops,
            dram_bytes=self.dram_bytes + extra_bytes,
            issue_slots=(
                self.issue_slots
                + extra_issue_slots
                + extra_mma_instrs * constants.issue_slots_per_mma
                + extra_alu_instrs
            ),
            blocks=self.blocks,
            threads_per_block=self.tile.threads_per_block,
            registers_per_thread=self.registers_per_thread + extra_registers,
            smem_per_block=self.smem_per_block,
            launches=launches,
        )


def mainloop_cost(
    problem: GemmProblem,
    tile: TileConfig,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> MainloopCost:
    """Count the unprotected mainloop's resource demands.

    Tensor-Core FLOPs use the tile-quantized dims (the kernel executes
    whole tiles); DRAM bytes use the paper's pad-to-8 GEMM accounting so
    modeled boundedness agrees with the paper's AI-vs-CMR classification.
    """
    blocks = tile.blocks(problem)
    threads_total = blocks * tile.threads_per_block
    ksteps = tile.ksteps(problem)

    m_t, n_t, k_t = tile.tile_padded_dims(problem)
    tc_flops = 2.0 * m_t * n_t * k_t

    # Mainloop ALU work: `alu_ops_per_kstep_base` FP16-lane ops per
    # loaded fragment element per thread per K-step (see ModelConstants).
    alu_lane_ops = (
        threads_total
        * ksteps
        * tile.loaded_elements_per_step
        * constants.alu_ops_per_kstep_base
    )

    # Operand width comes from the constants so the INT8 pipeline
    # (fp16_bytes=1) prices its halved DRAM traffic.
    dram_bytes = problem.bytes_moved(padded=True, dtype_bytes=constants.fp16_bytes)

    mma_instrs = tc_flops / FLOPS_PER_MMA
    alu_instrs = alu_lane_ops / LANES_PER_ALU_INSTR
    mem_instrs = dram_bytes / BYTES_PER_MEM_INSTR
    issue_slots = (
        mma_instrs * constants.issue_slots_per_mma + alu_instrs + mem_instrs
    )

    return MainloopCost(
        problem=problem,
        tile=tile,
        blocks=blocks,
        threads_total=threads_total,
        ksteps=ksteps,
        tc_flops=tc_flops,
        alu_lane_ops=alu_lane_ops,
        dram_bytes=dram_bytes,
        issue_slots=issue_slots,
        registers_per_thread=tile.base_registers_per_thread(),
        smem_per_block=tile.smem_per_block(),
    )
