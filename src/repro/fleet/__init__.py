"""Fleet-scale deployment: plan registry, zoo sweeps, concurrent serving.

The single-pair deployment API (:func:`repro.deploy`) scales up here:

* :class:`PlanRegistry` — versioned, JSON-persisted storage of
  deployment plans keyed ``(model, device, policy)``, with
  :func:`plan_diff` rendering scheme and overhead deltas between any
  two plans;
* :func:`deploy_fleet` — sweep a model zoo across a device fleet,
  amortizing profiler work per device and prepared numeric state per
  device family;
* :class:`SessionServer` / :func:`serve_session` — an asyncio serving
  layer driving concurrent request traffic through one shared
  (thread-safe) protected session.
"""

from .deploy import FleetDeployment, deploy_fleet
from .registry import (
    REGISTRY_SCHEMA,
    LayerChange,
    PlanDiff,
    PlanRegistry,
    RegistryKey,
    plan_diff,
)
from .serving import ServingReport, SessionServer, serve_session

__all__ = [
    "REGISTRY_SCHEMA",
    "FleetDeployment",
    "LayerChange",
    "PlanDiff",
    "PlanRegistry",
    "RegistryKey",
    "ServingReport",
    "SessionServer",
    "deploy_fleet",
    "plan_diff",
    "serve_session",
]
