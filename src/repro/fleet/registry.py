"""Versioned storage and diffing of deployment plans, fleet-wide.

A fleet is many ``(model, device)`` pairs, each deployed under a
policy; what production needs on top of the single-pair API is a place
plans *live*: versioned per key, persisted as one JSON document, and
comparable — "what changed between the plan we ran last week and the
one the policy picks today?".  :class:`PlanRegistry` is that store and
:func:`plan_diff` that comparison, rendering per-layer scheme changes
and predicted-overhead deltas.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..api.plan import DeploymentPlan
from ..errors import ConfigurationError, PlanError
from ..utils import Table

#: Schema tag of the persisted registry document.
REGISTRY_SCHEMA = "repro.plan-registry/v1"

#: Registry key: ``(model, device, policy)``; plans without a recorded
#: policy key under this label.
UNPOLICIED = "unspecified"


def _policy_key(policy: str | None) -> str:
    return policy if policy is not None else UNPOLICIED


@dataclass(frozen=True)
class RegistryKey:
    """One fleet slot: a model deployed on a device under a policy."""

    model: str
    device: str
    policy: str

    def __str__(self) -> str:
        return f"{self.model} @ {self.device} [{self.policy}]"


class PlanRegistry:
    """Versioned store of :class:`~repro.api.DeploymentPlan` objects.

    Plans are keyed ``(model, device, policy)``; every :meth:`put` of a
    *changed* plan appends a new version (starting at 1), while an
    identical re-deploy is idempotent and returns the existing version
    — re-running a fleet sweep does not inflate history.  The whole
    registry round-trips through one JSON document
    (:meth:`save`/:meth:`load`, :meth:`to_json`/:meth:`from_json`),
    each plan serialized under the versioned plan schema, so a registry
    written by one machine is a deployment input on another.

    The registry is thread-safe: a fleet sweep may :meth:`put` from
    concurrent deployment threads.

    Example
    -------
    >>> import repro
    >>> registry = repro.PlanRegistry()
    >>> session = repro.deploy("mlp_bottom", "T4", batch=32)
    >>> registry.put(session.plan)
    1
    >>> registry.put(session.plan)  # identical re-deploy: same version
    1
    >>> registry.get("mlp_bottom", "T4").device
    'T4'
    >>> loaded = repro.PlanRegistry.from_json(registry.to_json())
    >>> loaded.get("mlp_bottom", "T4") == session.plan
    True
    """

    def __init__(self) -> None:
        self._entries: dict[RegistryKey, list[DeploymentPlan]] = {}
        self._lock = threading.Lock()

    # -- structure ------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(plans) for plans in self._entries.values())

    def keys(self) -> list[RegistryKey]:
        """Every ``(model, device, policy)`` slot, sorted."""
        with self._lock:
            return sorted(
                self._entries,
                key=lambda k: (k.model, k.device, k.policy),
            )

    def __iter__(self) -> Iterator[RegistryKey]:
        return iter(self.keys())

    # -- store ----------------------------------------------------------
    def put(self, plan: DeploymentPlan) -> int:
        """Record a plan under its own ``(model, device, policy)`` key.

        Returns the plan's version: a new one when the plan differs
        from the key's latest, the existing one when it is identical
        (idempotent re-deploys).
        """
        key = RegistryKey(
            plan.model, plan.device, _policy_key(plan.policy)
        )
        with self._lock:
            plans = self._entries.setdefault(key, [])
            if plans and plans[-1] == plan:
                return len(plans)
            plans.append(plan)
            return len(plans)

    def _plans_for(  # repro: ignore[RL002] helper runs under the caller's lock
        self, model: str, device: str, policy: str | None
    ) -> tuple[RegistryKey, list[DeploymentPlan]]:
        matches = [
            key
            for key in self._entries
            if key.model == model
            and key.device == device
            and (policy is None or key.policy == _policy_key(policy))
        ]
        if not matches:
            known = ", ".join(str(k) for k in sorted(
                self._entries, key=lambda k: (k.model, k.device, k.policy)
            )) or "(empty registry)"
            raise ConfigurationError(
                f"no plan registered for {model!r} on {device!r}"
                + (f" under policy {policy!r}" if policy else "")
                + f"; registry holds: {known}"
            )
        if len(matches) > 1:
            raise ConfigurationError(
                f"{model!r} on {device!r} is registered under several "
                f"policies ({sorted(k.policy for k in matches)}); pass "
                f"policy= to pick one"
            )
        key = matches[0]
        return key, self._entries[key]

    def get(
        self,
        model: str,
        device: str,
        policy: str | None = None,
        *,
        version: int | None = None,
    ) -> DeploymentPlan:
        """The stored plan for one slot (latest version by default).

        ``policy`` may be omitted when the ``(model, device)`` pair is
        registered under exactly one policy.  ``version`` counts from 1.
        """
        with self._lock:
            key, plans = self._plans_for(model, device, policy)
            if version is None:
                return plans[-1]
            if not 1 <= version <= len(plans):
                raise ConfigurationError(
                    f"{key} has versions 1..{len(plans)}, not {version}"
                )
            return plans[version - 1]

    def versions(
        self, model: str, device: str, policy: str | None = None
    ) -> int:
        """How many versions one slot holds."""
        with self._lock:
            _, plans = self._plans_for(model, device, policy)
            return len(plans)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The whole registry as one stable JSON-ready document."""
        with self._lock:
            return {
                "schema": REGISTRY_SCHEMA,
                "entries": [
                    {
                        "model": key.model,
                        "device": key.device,
                        "policy": key.policy,
                        "version": version,
                        "plan": plan.to_dict(),
                    }
                    for key in sorted(
                        self._entries,
                        key=lambda k: (k.model, k.device, k.policy),
                    )
                    for version, plan in enumerate(
                        self._entries[key], start=1
                    )
                ],
            }

    def to_json(self, *, indent: int = 2) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanRegistry":
        """Rebuild a registry from its :meth:`to_dict` document."""
        try:
            schema = data.get("schema")
            entries = data["entries"]
        except (KeyError, TypeError, AttributeError) as exc:
            raise ConfigurationError(
                f"not a plan registry document: {exc}"
            ) from None
        if schema != REGISTRY_SCHEMA:
            raise PlanError(
                f"plan registry declares schema {schema!r}, but this "
                f"build reads {REGISTRY_SCHEMA!r}"
            )
        registry = cls()
        for entry in entries:
            try:
                plan = DeploymentPlan.from_dict(entry["plan"])
            except (KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"malformed registry entry {entry!r}: {exc}"
                ) from None
            registry.put(plan)
        return registry

    @classmethod
    def from_json(cls, text: str) -> "PlanRegistry":
        """Rebuild a registry from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"registry is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    def save(self, path: "str | pathlib.Path") -> None:
        """Write the registry document to ``path``."""
        pathlib.Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "PlanRegistry":
        """Read a registry document from ``path``."""
        try:
            text = pathlib.Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read plan registry {str(path)!r}: {exc}"
            ) from None
        return cls.from_json(text)


@dataclass(frozen=True)
class LayerChange:
    """One layer's scheme assignment differing between two plans."""

    layer: str
    old: str | None  #: scheme token in the old plan (None: layer added)
    new: str | None  #: scheme token in the new plan (None: layer removed)


@dataclass(frozen=True)
class PlanDiff:
    """Structured difference between two deployment plans.

    ``changes`` lists every layer whose scheme assignment differs
    (including layers present in only one plan); the overhead fields
    carry each plan's predicted whole-model overhead when it has
    latency predictions (``None`` otherwise).
    """

    old: DeploymentPlan
    new: DeploymentPlan
    changes: tuple[LayerChange, ...] = field(default_factory=tuple)
    old_overhead_percent: float | None = None
    new_overhead_percent: float | None = None

    @property
    def identical(self) -> bool:
        """Whether the two plans assign every layer identically."""
        return not self.changes

    @property
    def overhead_delta_percent(self) -> float | None:
        """Predicted overhead change (new - old), when both predict."""
        if self.old_overhead_percent is None:
            return None
        if self.new_overhead_percent is None:
            return None
        return self.new_overhead_percent - self.old_overhead_percent

    def render(self) -> str:
        """Human-readable diff: per-layer scheme deltas + overheads."""
        title = (
            f"{self.old.model}: {self.old.device} "
            f"[{self.old.policy or UNPOLICIED}] -> {self.new.device} "
            f"[{self.new.policy or UNPOLICIED}]"
        )
        lines = [title]
        if self.identical:
            lines.append("  (identical scheme assignment)")
        else:
            table = Table(["layer", "old scheme", "new scheme"])
            for change in self.changes:
                table.add_row([
                    change.layer,
                    change.old if change.old is not None else "(absent)",
                    change.new if change.new is not None else "(absent)",
                ])
            lines.append(str(table))
        delta = self.overhead_delta_percent
        if delta is not None:
            lines.append(
                f"  predicted overhead: "
                f"{self.old_overhead_percent:.2f}% -> "
                f"{self.new_overhead_percent:.2f}% "
                f"({delta:+.2f} points)"
            )
        return "\n".join(lines)


def plan_diff(old: DeploymentPlan, new: DeploymentPlan) -> PlanDiff:
    """Diff two plans: per-layer scheme deltas and overhead movement.

    The plans need not target the same device or policy — diffing a
    model's T4 plan against its V100 plan is exactly how the paper's
    "selection differs per device" claim is inspected — but they must
    describe the same model.
    """
    if old.model != new.model:
        raise ConfigurationError(
            f"cannot diff plans for different models "
            f"({old.model!r} vs {new.model!r})"
        )
    old_schemes = old.assignment()
    new_schemes = new.assignment()
    changes = []
    for layer in list(old_schemes) + [
        name for name in new_schemes if name not in old_schemes
    ]:
        before = old_schemes.get(layer)
        after = new_schemes.get(layer)
        if before != after:
            changes.append(LayerChange(layer, before, after))
    return PlanDiff(
        old=old,
        new=new,
        changes=tuple(changes),
        old_overhead_percent=(
            old.guided_overhead_percent if old.has_predictions else None
        ),
        new_overhead_percent=(
            new.guided_overhead_percent if new.has_predictions else None
        ),
    )
