"""Concurrent serving over a shared protected session.

A deployed :class:`~repro.api.ProtectedSession` is thread-safe: its
prepared cache, lazy comparison state, synthesized-operand memo, and
(for numeric sessions) the inference engine's weight cache and operand
record are all lock-guarded with exactly-once preparation.  This module
turns that property into a serving layer: :class:`SessionServer` admits
asyncio request traffic and executes the protected forward passes on a
thread pool, so N in-flight requests share one session — and therefore
one copy of every layer's fault-invariant prepared state.

:func:`serve_session` is the synchronous wrapper (benchmarks, examples,
smoke tests): fire a fixed number of requests at a session under a
concurrency cap and report throughput and tail latency.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..api.session import ProtectedSession
from ..errors import ConfigurationError
from ..faults.model import FaultSpec
from ..nn.inference import InferenceResult


def _percentile_ms(latencies_s: Sequence[float], q: float) -> float:
    """The q-th percentile of a latency sample, in milliseconds."""
    if not latencies_s:
        raise ConfigurationError("no latencies recorded; serve first")
    ordered = sorted(latencies_s)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index] * 1e3


@dataclass(frozen=True)
class ServingReport:
    """What one serving run measured.

    Attributes
    ----------
    requests:
        Completed request count.
    concurrency:
        Admission cap the run was driven under.
    total_s:
        Wall-clock time from first admission to last completion.
    requests_per_s:
        ``requests / total_s``.
    p50_ms, p99_ms:
        Median and tail per-request latency (admission to result).
    detected_requests:
        Requests whose pass flagged at least one layer (``faults=``
        traffic; 0 for clean serving).
    """

    requests: int
    concurrency: int
    total_s: float
    requests_per_s: float
    p50_ms: float
    p99_ms: float
    detected_requests: int = 0

    def render(self) -> str:
        """One-line summary for logs and benchmark output."""
        return (
            f"{self.requests} requests @ concurrency {self.concurrency}: "
            f"{self.requests_per_s:.1f} req/s, "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms"
            + (
                f", {self.detected_requests} detected"
                if self.detected_requests
                else ""
            )
        )


class SessionServer:
    """Serve concurrent requests through one shared protected session.

    Parameters
    ----------
    session:
        The deployed session every request runs through.  Layer-GEMM
        sessions take ``None`` requests; numeric sessions take input
        activations.
    max_workers:
        Thread-pool width — how many protected passes execute truly
        concurrently.  The asyncio side may admit more in-flight
        requests than this; the pool is the execution ceiling.

    Use as a context manager (or call :meth:`close`) so the pool is
    torn down deterministically.

    Example
    -------
    >>> import repro
    >>> from repro.fleet import SessionServer
    >>> session = repro.deploy("mlp_bottom", "T4", batch=32)
    >>> with SessionServer(session, max_workers=2) as server:
    ...     report = server.serve_blocking(8, concurrency=4)
    >>> report.requests
    8
    """

    def __init__(
        self, session: ProtectedSession, *, max_workers: int = 4
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.session = session
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._latencies_s: list[float] = []
        self._detected = 0
        self._stats_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SessionServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- serving --------------------------------------------------------
    async def handle(
        self,
        x: np.ndarray | None = None,
        *,
        faults: "Mapping[str, Sequence[FaultSpec]] | None" = None,
    ) -> InferenceResult:
        """Serve one request: a protected pass on the shared session."""
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        result = await loop.run_in_executor(
            self._pool, lambda: self.session.run(x, faults=faults)
        )
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self._latencies_s.append(elapsed)
            if result.detected:
                self._detected += 1
        return result

    async def serve(
        self,
        requests: "int | Iterable[np.ndarray | None]",
        *,
        concurrency: int = 8,
    ) -> ServingReport:
        """Drive a batch of requests under an admission cap.

        ``requests`` is either a count (that many empty requests — the
        layer-GEMM realization) or an iterable of per-request inputs.
        At most ``concurrency`` requests are in flight at once; the
        report covers exactly this batch.
        """
        if concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        inputs: list[np.ndarray | None]
        if isinstance(requests, int):
            if requests < 1:
                raise ConfigurationError(
                    f"request count must be >= 1, got {requests}"
                )
            inputs = [None] * requests
        else:
            inputs = list(requests)
            if not inputs:
                raise ConfigurationError("no requests to serve")
        gate = asyncio.Semaphore(concurrency)

        async def admit(x: np.ndarray | None) -> InferenceResult:
            async with gate:
                return await self.handle(x)

        with self._stats_lock:
            first = len(self._latencies_s)
            detected_before = self._detected
        start = time.perf_counter()
        await asyncio.gather(*(admit(x) for x in inputs))
        total_s = time.perf_counter() - start
        with self._stats_lock:
            batch = self._latencies_s[first:]
            detected = self._detected - detected_before
        return ServingReport(
            requests=len(inputs),
            concurrency=concurrency,
            total_s=total_s,
            requests_per_s=len(inputs) / total_s if total_s > 0 else 0.0,
            p50_ms=_percentile_ms(batch, 0.50),
            p99_ms=_percentile_ms(batch, 0.99),
            detected_requests=detected,
        )

    def serve_blocking(
        self,
        requests: "int | Iterable[np.ndarray | None]",
        *,
        concurrency: int = 8,
    ) -> ServingReport:
        """:meth:`serve` from synchronous code (owns the event loop)."""
        return asyncio.run(self.serve(requests, concurrency=concurrency))


def serve_session(
    session: ProtectedSession,
    requests: "int | Iterable[np.ndarray | None]" = 100,
    *,
    concurrency: int = 8,
    max_workers: int = 4,
) -> ServingReport:
    """Fire a request batch at a session and report the measurements.

    The one-call form of :class:`SessionServer` for benchmarks and
    smoke tests: builds the server, serves the batch under
    ``concurrency``, tears the pool down, returns the report.
    """
    with SessionServer(session, max_workers=max_workers) as server:
        return server.serve_blocking(requests, concurrency=concurrency)
