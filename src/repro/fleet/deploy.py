"""Fleet deployment: sweep a model zoo across a device fleet at once.

:func:`deploy_fleet` is :func:`repro.deploy` at fleet scale — every
``(model, device)`` pair gets a policy-assigned plan and a running
:class:`~repro.api.ProtectedSession` — with the amortization the
single-pair API cannot express:

* **one policy instance for the whole sweep**: the analytic profiler
  caches per device, so identical layer shapes across the model zoo
  are profiled once per device, not once per pair;
* **one prepared cache per device family** (:attr:`repro.gpu.GPUSpec.
  family`): sessions for same-family devices share a
  :class:`~repro.abft.base.PreparedCache`, and because synthesized
  layer operands are deterministic in ``(seed, layer)``, the
  fault-invariant half of each layer's GEMM — padding, tile choice,
  the clean FP32 accumulation, operand checksums — executes once per
  ``(layer, family, scheme)``, not once per ``(layer, device)``.
  Whenever two family members assign a layer the same scheme (always,
  under a fixed policy; typically, under the guided policy, since
  family members share kernel behavior), that collapses to once per
  ``(layer, family)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..abft.base import PreparedCache
from ..api.policy import SchemePolicy, as_policy
from ..api.session import ProtectedSession
from ..config import DetectionConstants
from ..errors import ConfigurationError
from ..gpu.specs import GPUSpec, get_gpu
from ..nn.graph import ModelGraph
from ..nn.models import build_model
from ..utils import Table
from .registry import PlanRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..api.plan import DeploymentPlan
    from ..faults.recovery import RecoveryPolicy


@dataclass(frozen=True)
class FleetDeployment:
    """Everything :func:`deploy_fleet` stood up, queryable by pair.

    Attributes
    ----------
    sessions:
        ``(model, device)`` → the pair's running session.
    caches:
        Device family → the :class:`~repro.abft.base.PreparedCache`
        shared by that family's sessions.
    families:
        Device name → its family label.
    registry:
        The registry every produced plan was recorded in (a fresh one
        when the caller did not supply their own).
    policy_name:
        The policy that assigned every plan.
    """

    sessions: Mapping[tuple[str, str], ProtectedSession]
    caches: Mapping[str, PreparedCache]
    families: Mapping[str, str]
    registry: PlanRegistry
    policy_name: str

    #: Model names, in sweep order.
    models: tuple[str, ...] = field(default_factory=tuple)
    #: Device names, in sweep order.
    devices: tuple[str, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.sessions)

    def session(self, model: str, device: str) -> ProtectedSession:
        """The running session for one ``(model, device)`` pair.

        ``device`` accepts any alias :func:`repro.get_gpu` resolves
        (pairs are keyed by the spec's canonical name).
        """
        found = self.sessions.get((model, device))
        if found is None:
            try:
                canonical = get_gpu(device).name
            except ConfigurationError:
                canonical = device
            found = self.sessions.get((model, canonical))
        if found is None:
            pairs = sorted(self.sessions)
            raise ConfigurationError(
                f"fleet has no session for ({model!r}, {device!r}); "
                f"deployed pairs: {pairs}"
            )
        return found

    def plan(self, model: str, device: str) -> "DeploymentPlan":
        """The plan deployed on one ``(model, device)`` pair."""
        return self.session(model, device).plan

    def warm(self) -> "FleetDeployment":
        """Run one protected pass through every session.

        After warming, every ``(layer, family, scheme)`` triple's
        prepared state is resident in the family cache; subsequent
        passes and campaigns anywhere in the fleet reuse it.  Returns
        the deployment for chaining.
        """
        for session in self.sessions.values():
            session.run()
        return self

    def summary(self) -> Table:
        """One row per pair: family, scheme mix, predicted overhead."""
        table = Table(
            ["model", "device", "family", "schemes", "overhead (%)"],
            title=f"fleet deployment (policy {self.policy_name})",
        )
        for (model, device), session in sorted(self.sessions.items()):
            plan = session.plan
            mix = ", ".join(
                f"{token}x{count}"
                for token, count in sorted(plan.selection_counts.items())
            )
            table.add_row([
                model,
                device,
                self.families[device],
                mix,
                plan.guided_overhead_percent if plan.has_predictions else "-",
            ])
        return table


def deploy_fleet(
    models: "Sequence[str | ModelGraph] | str",
    devices: "Sequence[str | GPUSpec] | str",
    *,
    policy: "SchemePolicy | str" = "guided",
    registry: PlanRegistry | None = None,
    batch: int | None = None,
    h: int = 1080,
    w: int = 1920,
    seed: int = 0,
    detection: DetectionConstants | None = None,
    recovery: "RecoveryPolicy | None" = None,
) -> FleetDeployment:
    """Deploy every model on every device, amortizing per device family.

    Parameters
    ----------
    models:
        Model-zoo names (``repro.list_models()``) or prebuilt
        :class:`~repro.nn.ModelGraph` objects; a single name is
        accepted.  Duplicates are deduped, order preserved.
    devices:
        Device names (``repro.list_gpus()``) or specs; a single name
        is accepted.
    policy:
        Anything :func:`~repro.api.policy.as_policy` accepts; the one
        normalized policy assigns every pair, so its per-device
        profiler caches span the whole model zoo.
    registry:
        Record every produced plan here (new versions only when a plan
        changed).  Defaults to a fresh :class:`~repro.fleet.
        PlanRegistry`, returned on the deployment either way.
    batch, h, w:
        Model-zoo build arguments (ignored for prebuilt graphs).
    seed:
        Session seed.  Every session shares it, which is what makes
        same-shaped layers synthesize bit-identical operands across a
        family and lets the family cache collapse their clean GEMMs.
    detection, recovery:
        Forwarded to every :class:`~repro.api.ProtectedSession`.

    Returns
    -------
    FleetDeployment
        Sessions keyed ``(model, device)``, one shared cache per
        family, and the registry holding every plan.

    Example
    -------
    >>> import repro
    >>> fleet = repro.deploy_fleet(
    ...     ["mlp_bottom"], ["V100", "Jetson-AGX-Xavier"], batch=32)
    >>> len(fleet)
    2
    >>> fleet.families["V100"] == fleet.families["Jetson-AGX-Xavier"]
    True
    >>> fleet.registry.get("mlp_bottom", "V100").policy
    'guided'
    """
    resolved_policy = as_policy(policy)
    if registry is None:
        registry = PlanRegistry()

    graphs: list[ModelGraph] = []
    seen_models: set[str] = set()
    model_list = [models] if isinstance(models, (str, ModelGraph)) else models
    for entry in model_list:
        graph = (
            build_model(entry, batch=batch, h=h, w=w)
            if isinstance(entry, str)
            else entry
        )
        if graph.name not in seen_models:
            seen_models.add(graph.name)
            graphs.append(graph)
    if not graphs:
        raise ConfigurationError("deploy_fleet needs at least one model")

    specs: list[GPUSpec] = []
    seen_devices: set[str] = set()
    device_list = (
        [devices] if isinstance(devices, (str, GPUSpec)) else devices
    )
    for entry in device_list:
        spec = get_gpu(entry) if isinstance(entry, str) else entry
        if spec.name not in seen_devices:
            seen_devices.add(spec.name)
            specs.append(spec)
    if not specs:
        raise ConfigurationError("deploy_fleet needs at least one device")

    caches: dict[str, PreparedCache] = {}
    families: dict[str, str] = {}
    sessions: dict[tuple[str, str], ProtectedSession] = {}
    for graph in graphs:
        for spec in specs:
            families[spec.name] = spec.family
            # One unbounded cache per family: the layer-GEMM
            # realization holds exactly one entry per (layer, scheme),
            # so residency is bounded by the zoo itself.
            cache = caches.setdefault(spec.family, PreparedCache())
            plan = resolved_policy.assign(graph, spec)
            registry.put(plan)
            sessions[(graph.name, spec.name)] = ProtectedSession(
                plan,
                seed=seed,
                cache=cache,
                detection=detection,
                recovery=recovery,
            )
    return FleetDeployment(
        sessions=sessions,
        caches=caches,
        families=families,
        registry=registry,
        policy_name=resolved_policy.name,
        models=tuple(graph.name for graph in graphs),
        devices=tuple(spec.name for spec in specs),
    )
