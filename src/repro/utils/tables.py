"""Minimal ASCII table renderer for benchmark/report output.

The benchmark harness prints the same rows/series the paper's figures and
tables report; this module does the formatting so every bench emits
consistent, diffable text.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """An append-only table rendered with aligned columns.

    Example
    -------
    >>> t = Table(["model", "AI"], title="Fig. 4")
    >>> t.add_row(["ResNet-50", 122.0])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ValueError("Table requires at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; floats are formatted to 4 significant digits."""
        row = [self._format(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """Render the table as an aligned ASCII string."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
