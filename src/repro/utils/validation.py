"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Collection, TypeVar

from ..errors import ConfigurationError, ShapeError

T = TypeVar("T")


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ShapeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ShapeError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ShapeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ShapeError(f"{name} must be non-negative, got {value}")
    return value


def check_positive_float(value: Any, name: str) -> float:
    """Validate that ``value`` is a positive finite number and return it."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if not result > 0 or result != result or result in (float("inf"),):
        raise ConfigurationError(f"{name} must be positive and finite, got {value!r}")
    return result


def check_fraction(value: Any, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    result = float(value)
    if not 0.0 <= result <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return result


def check_in(value: T, options: Collection[T], name: str) -> T:
    """Validate that ``value`` is one of ``options`` and return it."""
    if value not in options:
        raise ConfigurationError(
            f"{name} must be one of {sorted(map(str, options))}, got {value!r}"
        )
    return value
