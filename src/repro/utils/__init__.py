"""Shared helpers: validation, integer math, ASCII tables, logging."""

from .mathutils import ceil_div, round_up, is_power_of_two, geometric_sizes
from .validation import (
    check_positive_int,
    check_non_negative_int,
    check_positive_float,
    check_fraction,
    check_in,
)
from .tables import Table

__all__ = [
    "ceil_div",
    "round_up",
    "is_power_of_two",
    "geometric_sizes",
    "check_positive_int",
    "check_non_negative_int",
    "check_positive_float",
    "check_fraction",
    "check_in",
    "Table",
]
