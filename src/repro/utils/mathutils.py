"""Small integer/float math helpers used across the tiling and cost code."""

from __future__ import annotations

from typing import Iterator

from ..errors import ShapeError


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ShapeError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ShapeError(f"ceil_div dividend must be non-negative, got {a}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def geometric_sizes(start: int, stop: int, factor: int = 2) -> Iterator[int]:
    """Yield ``start, start*factor, ...`` up to and including ``stop``.

    Used for the square-GEMM sweep of Fig. 12 (sizes 32..2048).
    """
    if start <= 0 or stop < start or factor <= 1:
        raise ShapeError(
            f"invalid geometric range start={start} stop={stop} factor={factor}"
        )
    size = start
    while size <= stop:
        yield size
        size *= factor


def harmonic_mean(a: float, b: float) -> float:
    """Harmonic mean of two positive numbers."""
    if a <= 0 or b <= 0:
        raise ShapeError("harmonic_mean requires positive inputs")
    return 2.0 * a * b / (a + b)
