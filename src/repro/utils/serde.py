"""JSON-serializable views of result objects.

Deployment tooling consumes the profiler's decisions programmatically
(e.g. to bake the per-layer scheme choice into an inference engine
config); these helpers provide stable dictionary schemas for that.
"""

from __future__ import annotations

import json
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.intensity_guided import LayerSelection, ModelSelection


def layer_selection_to_dict(selection: "LayerSelection") -> dict[str, Any]:
    """Stable dict schema for one layer's profiling result."""
    return {
        "layer": selection.layer_name,
        "gemm": {
            "m": selection.problem.m,
            "n": selection.problem.n,
            "k": selection.problem.k,
        },
        "arithmetic_intensity": selection.intensity,
        "baseline_s": selection.baseline_s,
        "scheme_times_s": dict(selection.scheme_times_s),
        "chosen": selection.chosen,
        "overheads_percent": {
            scheme: selection.overhead_percent(scheme)
            for scheme in selection.scheme_times_s
        },
    }


def model_selection_to_dict(selection: "ModelSelection") -> dict[str, Any]:
    """Stable dict schema for a whole-model selection result."""
    schemes = (
        list(selection.layers[0].scheme_times_s) if selection.layers else []
    )
    return {
        "model": selection.model_name,
        "device": selection.device,
        "baseline_s": selection.baseline_s,
        "guided": {
            "total_s": selection.guided_total_s,
            "overhead_percent": selection.guided_overhead_percent,
            "selection_counts": selection.selection_counts,
        },
        "schemes": {
            scheme: {
                "total_s": selection.scheme_total_s(scheme),
                "overhead_percent": selection.scheme_overhead_percent(scheme),
            }
            for scheme in schemes
        },
        "layers": [layer_selection_to_dict(l) for l in selection.layers],
    }


def model_selection_to_json(selection: "ModelSelection", *, indent: int = 2) -> str:
    """JSON string of :func:`model_selection_to_dict`."""
    return json.dumps(model_selection_to_dict(selection), indent=indent)
