"""Fig. 9 (and §6.4.1): overhead on the eight general-purpose CNNs.

Paper setting: HD 1080x1920 inputs at batch one, comparing thread-level
ABFT, global ABFT, and intensity-guided ABFT; reductions of 1.09-2.75x
versus global.  §6.4.1 repeats the experiment at 224x224, where the
reductions grow to 1.3-3.3x because aggregate intensity drops.

Like the Fig. 8 driver, every number is read off the
:class:`~repro.api.DeploymentPlan` an
:class:`~repro.api.IntensityGuidedPolicy` produces.
"""

from __future__ import annotations

from ..api import IntensityGuidedPolicy
from ..gpu import T4, GPUSpec
from ..nn import build_model
from ..nn.models.registry import GENERAL_CNNS
from ..utils import Table


def fig09_general_cnns(
    *, h: int = 1080, w: int = 1920, spec: GPUSpec = T4
) -> Table:
    """Regenerate Fig. 9's series at the given input resolution."""
    policy = IntensityGuidedPolicy()
    table = Table(
        [
            "model",
            "agg AI",
            "thread-level (%)",
            "global (%)",
            "intensity-guided (%)",
            "reduction vs global",
        ],
        title=f"Fig. 9 — overhead on general-purpose CNNs ({h}x{w}, batch 1, {spec.name})",
    )
    for name in GENERAL_CNNS:
        model = build_model(name, h=h, w=w)
        plan = policy.assign(model, spec)
        global_pct = plan.scheme_overhead_percent("global")
        guided_pct = plan.guided_overhead_percent
        table.add_row(
            [
                name,
                model.aggregate_intensity(),
                plan.scheme_overhead_percent("thread_onesided"),
                global_pct,
                guided_pct,
                global_pct / guided_pct if guided_pct > 0 else float("inf"),
            ]
        )
    return table


#: The CNNs whose resolution behaviour cleanly isolates the §6.4.1
#: mechanism (bandwidth-dominated at both resolutions).  For the
#: high-intensity models our latency model's fixed thread-level floor
#: also grows at 224p, partially offsetting the effect — a documented
#: deviation (EXPERIMENTS.md).
RESOLUTION_EFFECT_MODELS: tuple[str, ...] = (
    "squeezenet1_0",
    "shufflenet_v2_x1_0",
    "densenet161",
)


def resolution_effect_summary(
    spec: GPUSpec = T4, models: tuple[str, ...] = RESOLUTION_EFFECT_MODELS
) -> dict[str, float]:
    """§6.4.1: mean reduction factor at HD vs 224x224."""
    policy = IntensityGuidedPolicy()
    out = {}
    for tag, (h, w) in {"hd": (1080, 1920), "224": (224, 224)}.items():
        factors = []
        for name in models:
            plan = policy.assign(build_model(name, h=h, w=w), spec)
            guided_pct = plan.guided_overhead_percent
            if guided_pct > 0:
                factors.append(
                    plan.scheme_overhead_percent("global") / guided_pct
                )
        out[tag] = sum(factors) / len(factors)
    return out
