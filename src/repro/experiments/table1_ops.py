"""Table 1: per-K-step redundant work of the thread-level schemes.

Paper Table 1 (per thread per K-step, against a mainloop of Mt*Nt/2
MMAs):

    =================  ==============  =================
    scheme             Tensor Core     checksum ops
    =================  ==============  =================
    replication        Mt*Nt/2         0
    two-sided ABFT     1               O(Mt + Nt)
    one-sided ABFT     Mt/2            O(Nt)
    =================  ==============  =================

This driver derives the same quantities from the implemented schemes'
cost plans (rather than restating the formulas), so the table is a
regression check that the code's accounting matches the paper.
"""

from __future__ import annotations

from ..abft import get_scheme
from ..gemm import GemmProblem, TileConfig, mainloop_cost
from ..utils import Table

#: Scheme rows in the paper's order.
_ROWS = (
    ("replication_single", "Rep."),
    ("thread_twosided", "Two-sided"),
    ("thread_onesided", "One-sided"),
)


def table1_op_counts(
    tile: TileConfig | None = None, *, k: int = 4096
) -> Table:
    """Regenerate Table 1 from the implemented cost plans.

    MMA and checksum counts are recovered by dividing each scheme's
    extra work by (threads x K-steps); a large K makes the per-step
    amortization of final checks negligible.
    """
    tile = tile or TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
    problem = GemmProblem(tile.mb, tile.nb, k)
    base = mainloop_cost(problem, tile)
    steps_total = base.threads_total * base.ksteps

    table = Table(
        [
            "scheme",
            "extra MMAs/step (measured)",
            "extra MMAs/step (paper)",
            "checksum ops/step (measured)",
            "checksum ops/step (paper)",
        ],
        title=f"Table 1 — per-thread per-K-step redundant work (Mt={tile.mt}, Nt={tile.nt})",
    )
    paper_mma = {
        "replication_single": tile.mt * tile.nt / 2,
        "thread_twosided": 1,
        "thread_onesided": tile.mt / 2,
    }
    paper_chk = {
        "replication_single": "0",
        "thread_twosided": f"O(Mt+Nt) = O({tile.mt + tile.nt})",
        "thread_onesided": f"O(Nt) = O({tile.nt})",
    }
    for name, label in _ROWS:
        plan = get_scheme(name).plan(problem, tile)
        work = plan.kernels[0].work
        extra_tc = work.matmul_flops - base.tc_flops
        extra_alu = work.alu_ops - base.alu_lane_ops
        # Per-thread per-K-step MMA participations: the thread-level
        # view counts Mt*Nt/2 mainloop MMAs per step, so scale the
        # relative FLOP increase by that.
        mainloop_mmas_per_step = tile.mmas_per_thread_step
        mmas_per_step = extra_tc / base.tc_flops * mainloop_mmas_per_step
        chk_per_step = extra_alu / steps_total
        table.add_row([label, mmas_per_step, paper_mma[name], chk_per_step, paper_chk[name]])
    return table
