"""Fig. 12: all redundant-execution schemes on square GEMMs 32..2048.

Paper: sizes left of AI = CMR (203 on the T4, i.e. up to 512) are
bandwidth bound and favor thread-level ABFT by up to 6.5x; sizes right
of it favor global ABFT by up to 14x; one-sided beats two-sided almost
always; replication spikes past 512 and exceeds 70% for 1024/2048.
"""

from __future__ import annotations

from ..core.profiler import PredeploymentProfiler
from ..gemm import GemmProblem
from ..gpu import T4, GPUSpec
from ..utils import Table, geometric_sizes

#: The schemes Fig. 12 compares.
FIG12_SCHEMES: tuple[str, ...] = (
    "thread_onesided",
    "thread_twosided",
    "replication_single",
    "replication_traditional",
    "global",
)


def fig12_square_sweep(
    spec: GPUSpec = T4,
    *,
    start: int = 32,
    stop: int = 2048,
) -> Table:
    """Regenerate Fig. 12's series: size -> overhead per scheme."""
    profiler = PredeploymentProfiler(spec, schemes=FIG12_SCHEMES)
    table = Table(
        ["M=N=K", "AI", "side of CMR"]
        + [f"{s} (%)" for s in FIG12_SCHEMES],
        title=f"Fig. 12 — square-GEMM overhead sweep on {spec.name} (CMR {spec.cmr:.0f})",
    )
    for size in geometric_sizes(start, stop):
        problem = GemmProblem(size, size, size)
        entries = profiler.profile(problem)
        base = entries["none"].time_s
        intensity = problem.arithmetic_intensity()
        row: list[object] = [
            size,
            intensity,
            "bandwidth" if intensity <= spec.cmr else "compute",
        ]
        for scheme in FIG12_SCHEMES:
            row.append((entries[scheme].time_s / base - 1.0) * 100.0)
        table.add_row(row)
    return table
