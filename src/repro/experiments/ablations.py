"""Ablations over the design choices DESIGN.md calls out.

* ``ablation_check_overlap`` — how the global-ABFT check kernel's
  overlap fraction shifts the DLRM result (the paper's step 5 "can take
  place in parallel with the next layer").
* ``ablation_thread_tile`` — thread-tile shape sensitivity of one-sided
  ABFT's Tensor-Core premium (1/Nt, Table 1).
* ``ablation_device_sweep`` — §7.1: how the guided selection shifts
  with the device CMR across all registered GPUs.
"""

from __future__ import annotations

from ..config import DEFAULT_CONSTANTS
from ..core import IntensityGuidedABFT
from ..gemm import GemmProblem, TileConfig
from ..gpu import T4, get_gpu, list_gpus
from ..nn import build_model
from ..utils import Table


def ablation_check_overlap(
    *, fractions: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9)
) -> Table:
    """Global-ABFT overhead on MLP-Bottom vs check-kernel overlap."""
    table = Table(
        ["check overlap", "global (%)", "guided (%)", "reduction"],
        title="Ablation — check-kernel overlap fraction (MLP-Bottom, batch 1, T4)",
    )
    model = build_model("mlp_bottom")
    for fraction in fractions:
        constants = DEFAULT_CONSTANTS.with_overrides(check_kernel_overlap=fraction)
        sel = IntensityGuidedABFT(T4, constants=constants).select_for_model(model)
        global_pct = sel.scheme_overhead_percent("global")
        guided_pct = sel.guided_overhead_percent
        table.add_row(
            [fraction, global_pct, guided_pct,
             global_pct / guided_pct if guided_pct > 0 else float("inf")]
        )
    return table


def ablation_thread_tile(*, size: int = 256) -> Table:
    """One-sided ABFT premium vs thread-tile shape (the 1/Nt law)."""
    tiles = (
        TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8),
        TileConfig(mb=128, nb=64, kb=32, mw=64, nw=32, mt=8, nt=8),
        TileConfig(mb=64, nb=64, kb=32, mw=32, nw=32, mt=8, nt=4),
        TileConfig(mb=64, nb=32, kb=32, mw=32, nw=16, mt=4, nt=4),
    )
    from ..abft import get_scheme
    from ..gemm import mainloop_cost

    table = Table(
        ["thread tile", "extra TC work (%)", "paper law 1/Nt (%)"],
        title=f"Ablation — one-sided Tensor-Core premium vs tile shape ({size}^3 GEMM)",
    )
    problem = GemmProblem(size, size, size)
    scheme = get_scheme("thread_onesided")
    for tile in tiles:
        base = mainloop_cost(problem, tile).tc_flops
        plan = scheme.plan(problem, tile)
        extra = plan.kernels[0].work.matmul_flops - base
        table.add_row(
            [f"{tile.mt}x{tile.nt}", extra / base * 100.0, 100.0 / tile.nt]
        )
    return table


def ablation_device_sweep(*, model_name: str = "resnet50") -> Table:
    """§7.1: selections across all registered devices."""
    table = Table(
        ["device", "CMR", "thread layers", "global layers",
         "global (%)", "guided (%)"],
        title=f"Ablation — device sweep ({model_name})",
    )
    model = build_model(model_name)
    for name in list_gpus():
        spec = get_gpu(name)
        sel = IntensityGuidedABFT(spec).select_for_model(model)
        counts = sel.selection_counts
        table.add_row(
            [
                spec.name,
                spec.cmr,
                counts.get("thread_onesided", 0),
                counts.get("global", 0),
                sel.scheme_overhead_percent("global"),
                sel.guided_overhead_percent,
            ]
        )
    return table
