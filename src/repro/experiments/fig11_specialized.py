"""Fig. 11: overhead on the NoScope-style specialized CNNs at batch 64.

Paper: reductions of 1.6-5.3x; Coral's global-ABFT overhead drops from
17% to 4.6%.  The architectures themselves are synthesized to the
paper's envelope (see DESIGN.md §6 and ``repro.nn.models.noscope``).
"""

from __future__ import annotations

from ..core import IntensityGuidedABFT
from ..gpu import T4, GPUSpec
from ..nn import build_model
from ..nn.models.registry import SPECIALIZED_CNNS
from ..utils import Table


def fig11_specialized(spec: GPUSpec = T4, *, batch: int = 64) -> Table:
    """Regenerate Fig. 11's series."""
    guided = IntensityGuidedABFT(spec)
    table = Table(
        [
            "model",
            "agg AI",
            "thread-level (%)",
            "global (%)",
            "intensity-guided (%)",
            "reduction vs global",
        ],
        title=f"Fig. 11 — overhead on specialized CNNs (batch {batch}, {spec.name})",
    )
    for name in SPECIALIZED_CNNS:
        model = build_model(name, batch=batch)
        sel = guided.select_for_model(model)
        global_pct = sel.scheme_overhead_percent("global")
        guided_pct = sel.guided_overhead_percent
        table.add_row(
            [
                name,
                model.aggregate_intensity(),
                sel.scheme_overhead_percent("thread_onesided"),
                global_pct,
                guided_pct,
                global_pct / guided_pct if guided_pct > 0 else float("inf"),
            ]
        )
    return table
