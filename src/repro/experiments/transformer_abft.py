"""Transformer blocks under intensity-guided ABFT, FP16 and INT8.

The transformer zoo entries decompose a block into GEMMs of two very
different shapes: attention score/context products are small and
bandwidth bound (their K or N dimension is a head dimension or a KV
length), while the FFN projections are large and, at production sizes,
compute bound.  Intensity-guided ABFT should therefore *split* its
decision inside one block — thread-level ABFT on the attention GEMMs,
global ABFT on the FFN GEMMs — exactly the per-layer flip the paper
demonstrates across CNN layers (§6.2), now reproduced inside a single
transformer block and on both numeric pipelines.

The small presets (encoder/decoder at d_model=128) stay fully bandwidth
bound and pick thread-level ABFT everywhere; the GPT-2-medium-sized
block is where the flip appears.
"""

from __future__ import annotations

from ..core import IntensityGuidedABFT
from ..gpu import T4, GPUSpec
from ..nn import TransformerBlockSpec, build_transformer_graph
from ..nn.transformer import TRANSFORMER_PRESETS
from ..utils import Table

#: Swept block shapes: the two zoo presets plus a production-sized block
#: (GPT-2-medium-like: d_model=1024, 16 heads, d_ff=4096, 512 tokens)
#: whose FFN GEMMs cross the T4's compute/bandwidth boundary.
BLOCKS: dict[str, TransformerBlockSpec] = dict(
    TRANSFORMER_PRESETS,
    transformer_large=TransformerBlockSpec(
        d_model=1024, n_heads=16, d_ff=4096, seq_len=512
    ),
)

#: Numeric pipelines to sweep (requires a device with an INT8 pipe).
DTYPES: tuple[str, ...] = ("fp16", "int8")


def transformer_abft(spec: GPUSpec = T4) -> Table:
    """Sweep block shapes x dtype; show the per-layer scheme flip.

    The ``scores``/``fc1`` columns print the guided choice for one
    attention-shaped GEMM and one FFN GEMM of the same block on the
    same device — the rows where they differ are the intra-block flip.
    """
    table = Table(
        [
            "block",
            "dtype",
            "agg AI",
            "CMR",
            "thread (%)",
            "global (%)",
            "guided (%)",
            "scores choice",
            "fc1 choice",
        ],
        title=f"transformer blocks under intensity-guided ABFT ({spec.name})",
    )
    for block_name, block in BLOCKS.items():
        graph = build_transformer_graph(block_name, spec=block)
        for dtype in DTYPES:
            guided = IntensityGuidedABFT(spec, dtype=dtype)
            sel = guided.select_for_model(graph)
            by_layer = {
                layer.layer_name.rsplit("/", 1)[-1]: layer for layer in sel.layers
            }
            suffix = "" if dtype == "fp16" else f"@{dtype}"
            table.add_row(
                [
                    block_name,
                    dtype,
                    graph.aggregate_intensity(),
                    guided.spec.cmr,
                    sel.scheme_overhead_percent(f"thread_onesided{suffix}"),
                    sel.scheme_overhead_percent(f"global{suffix}"),
                    sel.guided_overhead_percent,
                    by_layer["attn.h0.scores"].chosen,
                    by_layer["ffn.fc1"].chosen,
                ]
            )
    return table
