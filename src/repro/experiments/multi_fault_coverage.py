"""Multi-fault detection coverage (the paper's §2.4 extension).

The paper notes that ABFT extends to detecting up to ``r`` simultaneous
faults via ``r`` independent weighted checksums.  This experiment
exercises that claim end to end on the sparse batched engine: for
``global_multi`` at several checksum counts ``r`` (with plain ``global``
as the 1-check baseline), it runs multi-fault campaigns sweeping the
per-trial simultaneous-fault count and reports detection coverage as a
function of it — the §2.4 guarantee being 100% coverage of significant
faults whenever the fault count stays within ``r``.

The sweep doubles as the prepared-cache acceptance proof: every
campaign of a variant (one per fault count) draws its prepared state
from one shared :class:`~repro.abft.PreparedCache`, so the whole
experiment runs exactly one clean GEMM per scheme variant — asserted
via ``EXECUTION_STATS`` rather than inferred from timings.
"""

from __future__ import annotations

import numpy as np

from ..abft import PreparedCache, scheme_from_token
from ..errors import ReproError
from ..faults import CampaignOptions, FaultCampaign
from ..gemm import EXECUTION_STATS
from ..utils import Table


def multi_fault_coverage_experiment(
    *,
    m: int = 96,
    n: int = 64,
    k: int = 80,
    trials: int = 40,
    max_faults: int = 6,
    checksum_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 29,
) -> Table:
    """Coverage vs. simultaneous-fault count for multi-checksum ABFT.

    One row per (scheme variant, per-trial fault count): ``global`` as
    the single-check baseline, then ``global_multi`` at each ``r`` in
    ``checksum_counts``, each swept over fault counts ``1..max_faults``
    through one shared :class:`~repro.abft.PreparedCache`.
    """
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((k, n)) * 0.5).astype(np.float16)

    tokens = ["global"] + [f"global_multi:{r}" for r in checksum_counts]
    variants = [
        (token, scheme_from_token(token), r)
        for token, r in zip(tokens, (1, *checksum_counts))
    ]

    table = Table(
        [
            "scheme",
            "checks r",
            "faults/trial",
            "trials",
            "significant",
            "coverage",
            "benign alarms",
        ],
        title=(
            f"Multi-fault detection coverage ({m}x{n}x{k}, {trials} trials "
            f"per fault count; §2.4 guarantee: 100% for counts <= r)"
        ),
    )

    cache = PreparedCache()
    EXECUTION_STATS.reset()
    for label, scheme, r in variants:
        for faults_per_trial in range(1, max_faults + 1):
            campaign = FaultCampaign(
                scheme, a, b, options=CampaignOptions(seed=seed, cache=cache)
            )
            result = campaign.run_batch(
                trials, faults_per_trial=faults_per_trial
            )
            table.add_row(
                [
                    label,
                    r,
                    faults_per_trial,
                    result.n_trials,
                    result.n_significant,
                    result.coverage,
                    result.n_benign_alarms,
                ]
            )
            if faults_per_trial <= r and result.coverage < 1.0:
                raise ReproError(
                    f"{label}: coverage {result.coverage:.3f} < 1.0 at "
                    f"{faults_per_trial} faults/trial — the §2.4 "
                    f"r-simultaneous-fault guarantee is violated"
                )
    if EXECUTION_STATS.gemms != len(variants):
        raise ReproError(
            f"prepared-cache amortization failed: {EXECUTION_STATS.gemms} "
            f"clean GEMMs for {len(variants)} scheme variants (expected "
            f"exactly one per variant across the whole sweep)"
        )
    return table
