"""Fig. 5: per-layer FP16 arithmetic intensity of ResNet-50 on HD images.

The paper shows a scatter over layer index with values ranging from ~1
(the batch-1 fully-connected classifier) to ~511 (the stage-4
downsample convolution).  This driver regenerates the full series plus
the summary statistics.
"""

from __future__ import annotations

from ..nn import build_model
from ..roofline import layer_intensities
from ..utils import Table


def fig05_resnet_layer_intensity(*, h: int = 1080, w: int = 1920) -> Table:
    """Regenerate Fig. 5's series: layer index -> arithmetic intensity."""
    model = build_model("resnet50", h=h, w=w)
    # Fig. 5 plots the unpadded per-layer view (its minimum of ~1 is the
    # unpadded batch-1 FC layer).
    breakdowns = layer_intensities(model.problems, padded=False)
    table = Table(
        ["idx", "layer", "M", "N", "K", "AI"],
        title=f"Fig. 5 — ResNet-50 per-layer arithmetic intensity ({h}x{w}, batch 1)",
    )
    for idx, (layer, brk) in enumerate(zip(model, breakdowns)):
        table.add_row(
            [idx, layer.name, layer.problem.m, layer.problem.n, layer.problem.k,
             brk.intensity]
        )
    return table


def fig05_summary(*, h: int = 1080, w: int = 1920) -> dict[str, float]:
    """Min/max/range of the Fig. 5 series (paper: ~1 to ~511)."""
    model = build_model("resnet50", h=h, w=w)
    values = [p.arithmetic_intensity(padded=False) for p in model.problems]
    return {"min": min(values), "max": max(values), "layers": float(len(values))}
