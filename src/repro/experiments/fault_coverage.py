"""Fault-detection coverage across schemes (the paper's §2.3 guarantee).

The paper's fault model is a single faulty output value per GEMM; every
ABFT scheme must detect it.  This experiment runs randomized
single-fault campaigns against each protecting scheme and reports
detection coverage over significant faults, plus each scheme's
numerical sensitivity floor.
"""

from __future__ import annotations

import numpy as np

from ..abft import get_scheme, list_schemes
from ..faults import FaultCampaign
from ..utils import Table


def fault_coverage_experiment(
    *,
    m: int = 96,
    n: int = 64,
    k: int = 80,
    trials: int = 60,
    seed: int = 42,
) -> Table:
    """Single-fault campaigns for every protecting scheme."""
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((k, n)) * 0.5).astype(np.float16)

    table = Table(
        [
            "scheme",
            "trials",
            "significant",
            "detected",
            "coverage",
            "sensitivity floor",
        ],
        title=f"Fault-injection coverage ({m}x{n}x{k}, {trials} single-fault trials)",
    )
    for name in list_schemes():
        scheme = get_scheme(name)
        if not scheme.protects:
            continue
        campaign = FaultCampaign(scheme, a, b, seed=seed)
        result = campaign.run_batch(trials)
        table.add_row(
            [
                name,
                result.n_trials,
                result.n_significant,
                result.n_detected,
                result.coverage,
                campaign.tolerance_scale,
            ]
        )
    return table
