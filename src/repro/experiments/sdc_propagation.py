"""End-to-end SDC propagation and recovery across the runnable zoo.

GEMM-level coverage (``fault_coverage``) scores detection at the struck
layer; this experiment asks the paper's system-level question: does an
undetected fault *silently corrupt the model output*?  For each
(model, struck layer, scheme, faults-per-trial) cell it runs a
:class:`~repro.faults.PropagationCampaign` — inject into the layer's
GEMM, carry corruption through the remaining layers, classify every
trial masked / detected / benign-alarm / undetected-SDC — under a
transient :class:`~repro.faults.RecoveryPolicy`, and reports the
cross-tabulation with the undetected-SDC and residual-SDC rates.

Two contracts are asserted per cell, not just reported:

* every detected trial recovers under the transient fault model
  (retries re-execute fault-free, so recovery is deterministic), and
* every recovered trial is bit-identical to the clean pass — at the
  layer boundary and end to end (``verify_recovery=True`` replays it) —
  enforced inside the campaign, which raises on violation.
"""

from __future__ import annotations

import numpy as np

from ..api import deploy
from ..faults import RecoveryPolicy
from ..nn import build_model, build_runnable, runnable_input_shape
from ..utils import Table

#: (model, scheme-policy) cells; ≥3 zoo models per the PR 6 contract.
MODELS: tuple[str, ...] = ("mlp_bottom", "mlp_top", "coral")
SCHEMES: tuple[str, ...] = ("global", "thread_onesided")
FAULTS_PER_TRIAL: tuple[int, ...] = (1, 2)


def _depth_layers(layer_names: list[str]) -> list[str]:
    """First / middle / last layer of a plan (deduplicated, in order)."""
    picks = [
        layer_names[0],
        layer_names[len(layer_names) // 2],
        layer_names[-1],
    ]
    seen: list[str] = []
    for name in picks:
        if name not in seen:
            seen.append(name)
    return seen


def sdc_propagation_experiment(
    *, trials: int = 24, seed: int = 7, batch: int = 1
) -> Table:
    """SDC propagation sweep: model x layer depth x scheme x fault count."""
    table = Table(
        [
            "model",
            "layer",
            "scheme",
            "f/trial",
            "trials",
            "masked",
            "benign",
            "detected",
            "sdc",
            "sdc rate",
            "recovered",
            "retries",
            "residual",
        ],
        title=(
            f"End-to-end SDC propagation with transient recovery "
            f"({trials} trials/cell, batch {batch}; every recovered "
            f"trial asserted bit-identical to clean)"
        ),
    )
    policy = RecoveryPolicy(max_retries=2, fault_model="transient")
    for model_name in MODELS:
        x = (
            np.random.default_rng([seed, len(model_name)])
            .standard_normal(runnable_input_shape(model_name, batch=batch))
            * 0.5
        ).astype(np.float16)
        for scheme in SCHEMES:
            session = deploy(
                build_model(model_name, batch=batch),
                "T4",
                policy=scheme,
                runnable=build_runnable(model_name, batch=batch, seed=seed),
                recovery=policy,
            )
            for layer in _depth_layers(session.plan.layer_names):
                for fpt in FAULTS_PER_TRIAL:
                    campaign = session.propagation_campaign(
                        layer, x=x, seed=seed
                    )
                    result = campaign.run_batch(trials, faults_per_trial=fpt)
                    crosstab = result.crosstab()
                    # Transient retries re-execute fault-free, so every
                    # detection must recover (and nothing may degrade);
                    # residual SDC is then exactly the undetected kind.
                    assert result.n_recovered == result.n_detected, (
                        model_name, layer, scheme, fpt,
                    )
                    assert result.n_degraded == 0
                    assert result.n_residual_sdc == result.n_undetected_sdc
                    table.add_row(
                        [
                            model_name,
                            layer,
                            scheme,
                            fpt,
                            result.n_trials,
                            crosstab[(False, False)],
                            crosstab[(True, False)],
                            crosstab[(True, True)],
                            crosstab[(False, True)],
                            result.undetected_sdc_rate,
                            result.n_recovered,
                            result.total_retries,
                            result.n_residual_sdc,
                        ]
                    )
    return table
