"""Fig. 8: execution-time overhead of global vs intensity-guided ABFT
across all fourteen evaluated NNs.

Paper headline: intensity-guided ABFT reduces overhead by 1.09-5.3x,
with labeled reductions MLP-Bottom 4.6x, MLP-Top 3.2x, Coral 3.7x,
Roundabout 5.3x, Taipei 2.0x, Amsterdam 1.6x, SqueezeNet 2.4x,
ShuffleNet 2.8x.

The driver runs through the deployment API: one
:class:`~repro.api.IntensityGuidedPolicy` produces each model's
:class:`~repro.api.DeploymentPlan`, and every reported overhead is read
off the plan — the same serializable artifact ``repro deploy`` ships.
"""

from __future__ import annotations

from ..api import DeploymentPlan, IntensityGuidedPolicy
from ..gpu import T4, GPUSpec
from ..nn import build_model, list_models
from ..utils import Table

#: Reduction factors the paper labels above Fig. 8's bars (plus the WRN
#: value stated in §6.3); None where the paper gives no number.
PAPER_REDUCTIONS: dict[str, float | None] = {
    "mlp_bottom": 4.55,
    "mlp_top": 3.24,
    "coral": 3.7,
    "roundabout": 5.3,
    "taipei": 2.0,
    "amsterdam": 1.6,
    "squeezenet1_0": 2.4,
    "shufflenet_v2_x1_0": 2.75,
    "densenet161": None,
    "resnet50": None,
    "alexnet": None,
    "vgg16": None,
    "resnext50_32x4d": None,
    "wide_resnet50_2": 1.5,
}


def fig08_plans(spec: GPUSpec = T4) -> dict[str, DeploymentPlan]:
    """Per-model intensity-guided deployment plans for all fourteen NNs.

    Fig. 8 is the paper's figure, so it spans exactly the paper's
    fourteen evaluation models — not later zoo additions like the
    transformer blocks (those have their own experiment,
    ``transformer_abft``).
    """
    policy = IntensityGuidedPolicy()
    paper_models = [name for name in list_models() if name in PAPER_REDUCTIONS]
    return {
        name: policy.assign(build_model(name), spec) for name in paper_models
    }


def fig08_all_models(spec: GPUSpec = T4) -> Table:
    """Regenerate Fig. 8's series for every model, in the paper's order."""
    table = Table(
        [
            "model",
            "agg AI",
            "global (%)",
            "intensity-guided (%)",
            "reduction (measured)",
            "reduction (paper)",
        ],
        title=f"Fig. 8 — execution-time overhead on {spec.name} (global vs intensity-guided)",
    )
    for name, plan in fig08_plans(spec).items():
        global_pct = plan.scheme_overhead_percent("global")
        guided_pct = plan.guided_overhead_percent
        paper = PAPER_REDUCTIONS[name]
        table.add_row(
            [
                name,
                build_model(name).aggregate_intensity(),
                global_pct,
                guided_pct,
                global_pct / guided_pct if guided_pct > 0 else float("inf"),
                paper if paper is not None else "-",
            ]
        )
    return table
