"""Fig. 4: FP16 aggregate arithmetic intensity of eight CNNs.

Paper setting: images of 1080x1920 at batch size one.  Reported values
(read off the figure / §3.2): SqueezeNet 71.1, ShuffleNet 76.6,
DenseNet-161 79.0, ResNet-50 122.0, AlexNet 125.5, VGG-16 155.5,
ResNeXt-50 220.8, Wide-ResNet-50 220.8.
"""

from __future__ import annotations

from ..nn import build_model
from ..nn.models.registry import GENERAL_CNNS
from ..utils import Table

#: Values the paper prints under each bar (Figs. 4 and 8).
PAPER_VALUES: dict[str, float] = {
    "squeezenet1_0": 71.1,
    "shufflenet_v2_x1_0": 76.6,
    "densenet161": 79.0,
    "resnet50": 122.0,
    "alexnet": 125.5,
    "vgg16": 155.5,
    "resnext50_32x4d": 220.8,
    "wide_resnet50_2": 220.8,
}


def fig04_aggregate_intensity(*, h: int = 1080, w: int = 1920, batch: int = 1) -> Table:
    """Regenerate Fig. 4's series: model -> aggregate intensity."""
    table = Table(
        ["model", "layers", "GFLOPs", "MB moved", "agg AI (measured)", "agg AI (paper)"],
        title=f"Fig. 4 — FP16 aggregate arithmetic intensity ({h}x{w}, batch {batch})",
    )
    for name in GENERAL_CNNS:
        model = build_model(name, batch=batch, h=h, w=w)
        table.add_row(
            [
                name,
                len(model),
                model.total_flops() / 1e9,
                model.total_bytes() / 1e6,
                model.aggregate_intensity(),
                PAPER_VALUES[name],
            ]
        )
    return table
