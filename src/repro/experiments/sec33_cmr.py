"""§3.3: compute-to-memory-bandwidth ratios of the discussed GPUs.

Paper values: T4 = 203 (FP16), P4 = 58 (FP16), V100 = 139 (FP16),
A100 = 201 (FP16), Jetson AGX Xavier = 235 (INT8).
"""

from __future__ import annotations

from ..roofline import cmr_table
from ..utils import Table

#: CMRs the paper states in §3.3.
PAPER_CMRS: dict[str, float] = {
    "T4": 203.0,
    "P4": 58.0,
    "V100": 139.0,
    "A100": 201.0,
    "Jetson-AGX-Xavier": 235.0,
}


def sec33_cmr_table() -> Table:
    """Regenerate the §3.3 CMR comparison."""
    return cmr_table(list(PAPER_CMRS))
