"""Fig. 10: overhead on the DLRM MLPs at batch sizes 1 and 2048.

Paper: at batch 1 intensity-guided ABFT reduces overhead by 4.55x
(MLP-Bottom) and 3.24x (MLP-Top); at batch 2048 MLP-Top's intensity
reaches 175.8 and the thread-vs-global gap narrows, while MLP-Bottom
(92.0) keeps preferring thread-level ABFT.
"""

from __future__ import annotations

from ..core import IntensityGuidedABFT
from ..gpu import T4, GPUSpec
from ..nn import build_model
from ..utils import Table


def fig10_dlrm(spec: GPUSpec = T4, *, batches: tuple[int, ...] = (1, 2048)) -> Table:
    """Regenerate Fig. 10's four bars (two MLPs x two batch sizes)."""
    guided = IntensityGuidedABFT(spec)
    table = Table(
        [
            "model",
            "batch",
            "agg AI",
            "thread-level (%)",
            "global (%)",
            "intensity-guided (%)",
            "reduction vs global",
        ],
        title=f"Fig. 10 — overhead on DLRM MLPs ({spec.name})",
    )
    for name in ("mlp_bottom", "mlp_top"):
        for batch in batches:
            model = build_model(name, batch=batch)
            sel = guided.select_for_model(model)
            global_pct = sel.scheme_overhead_percent("global")
            guided_pct = sel.guided_overhead_percent
            table.add_row(
                [
                    name,
                    batch,
                    model.aggregate_intensity(),
                    sel.scheme_overhead_percent("thread_onesided"),
                    global_pct,
                    guided_pct,
                    global_pct / guided_pct if guided_pct > 0 else float("inf"),
                ]
            )
    return table
