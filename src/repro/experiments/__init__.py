"""Experiment drivers regenerating every table and figure of the paper.

Each module computes one evaluation artifact and renders it as an ASCII
table whose rows/series mirror what the paper reports.  The benchmark
harness (``benchmarks/``) wraps these drivers with pytest-benchmark;
``runner.run_all`` regenerates everything at once (used to produce
EXPERIMENTS.md).
"""

from .fig04_intensity import fig04_aggregate_intensity
from .fig05_layers import fig05_resnet_layer_intensity
from .sec33_cmr import sec33_cmr_table
from .table1_ops import table1_op_counts
from .fig08_models import fig08_all_models
from .fig09_cnns import fig09_general_cnns
from .fig10_dlrm import fig10_dlrm
from .fig11_specialized import fig11_specialized
from .fig12_square import fig12_square_sweep
from .fault_coverage import fault_coverage_experiment
from .multi_fault_coverage import multi_fault_coverage_experiment
from .ablations import (
    ablation_check_overlap,
    ablation_device_sweep,
    ablation_thread_tile,
)
from .agreement import agreement_fraction, agreement_study
from .sdc_propagation import sdc_propagation_experiment
from .transformer_abft import transformer_abft
from .runner import run_all

__all__ = [
    "fig04_aggregate_intensity",
    "fig05_resnet_layer_intensity",
    "sec33_cmr_table",
    "table1_op_counts",
    "fig08_all_models",
    "fig09_general_cnns",
    "fig10_dlrm",
    "fig11_specialized",
    "fig12_square_sweep",
    "fault_coverage_experiment",
    "multi_fault_coverage_experiment",
    "ablation_check_overlap",
    "ablation_device_sweep",
    "ablation_thread_tile",
    "agreement_study",
    "agreement_fraction",
    "sdc_propagation_experiment",
    "transformer_abft",
    "run_all",
]
