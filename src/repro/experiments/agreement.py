"""§7.2: analytical model vs empirical profiling for scheme selection.

The paper selects schemes by empirical profiling but notes that an
analytical AI-vs-CMR rule would preserve the core insight.  This
experiment quantifies how often the two agree across every linear layer
of every evaluation model, and how much overhead the purely analytical
rule would sacrifice.
"""

from __future__ import annotations

from ..core import IntensityGuidedABFT, analytical_choice
from ..gpu import T4, GPUSpec
from ..nn import build_model, list_models
from ..utils import Table


def agreement_study(spec: GPUSpec = T4) -> Table:
    """Per-model agreement between analytical and profiled selection."""
    guided = IntensityGuidedABFT(spec)
    table = Table(
        [
            "model",
            "layers",
            "agreement",
            "profiled guided (%)",
            "analytical guided (%)",
            "sacrifice (pp)",
        ],
        title=f"§7.2 — analytical (AI vs CMR) vs empirical selection on {spec.name}",
    )
    for name in list_models():
        selection = guided.select_for_model(build_model(name))
        agree = 0
        analytical_total = 0.0
        for layer in selection.layers:
            rule = analytical_choice(layer.problem, spec)
            if rule == layer.chosen:
                agree += 1
            analytical_total += layer.scheme_times_s[rule]
        profiled_pct = selection.guided_overhead_percent
        analytical_pct = (analytical_total / selection.baseline_s - 1.0) * 100.0
        table.add_row(
            [
                name,
                len(selection.layers),
                f"{agree}/{len(selection.layers)}",
                profiled_pct,
                analytical_pct,
                analytical_pct - profiled_pct,
            ]
        )
    return table


def agreement_fraction(spec: GPUSpec = T4) -> float:
    """Overall layer-level agreement fraction across all models."""
    guided = IntensityGuidedABFT(spec)
    agree = total = 0
    for name in list_models():
        selection = guided.select_for_model(build_model(name))
        for layer in selection.layers:
            total += 1
            if analytical_choice(layer.problem, spec) == layer.chosen:
                agree += 1
    return agree / total
