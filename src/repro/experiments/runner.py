"""Run every experiment and emit one consolidated report.

``python -m repro.experiments.runner`` regenerates all the paper's
tables and figures (as ASCII series) in one pass — this is the script
that produced EXPERIMENTS.md's measured columns.
"""

from __future__ import annotations

from typing import Callable

from ..utils import Table
from .agreement import agreement_study
from .ablations import ablation_check_overlap, ablation_device_sweep, ablation_thread_tile
from .fault_coverage import fault_coverage_experiment
from .fig04_intensity import fig04_aggregate_intensity
from .multi_fault_coverage import multi_fault_coverage_experiment
from .fig05_layers import fig05_resnet_layer_intensity, fig05_summary
from .fig08_models import fig08_all_models
from .fig09_cnns import fig09_general_cnns
from .fig10_dlrm import fig10_dlrm
from .fig11_specialized import fig11_specialized
from .fig12_square import fig12_square_sweep
from .sdc_propagation import sdc_propagation_experiment
from .sec33_cmr import sec33_cmr_table
from .table1_ops import table1_op_counts
from .transformer_abft import transformer_abft

#: Every experiment keyed by its paper artifact, in paper order.
EXPERIMENTS: dict[str, Callable[[], Table]] = {
    "fig04": fig04_aggregate_intensity,
    "fig05": fig05_resnet_layer_intensity,
    "sec33": sec33_cmr_table,
    "table1": table1_op_counts,
    "fig08": fig08_all_models,
    "fig09_hd": fig09_general_cnns,
    "fig09_224": lambda: fig09_general_cnns(h=224, w=224),
    "fig10": fig10_dlrm,
    "fig11": fig11_specialized,
    "fig12": fig12_square_sweep,
    "fault_coverage": fault_coverage_experiment,
    "multi_fault_coverage": multi_fault_coverage_experiment,
    "sdc_propagation": sdc_propagation_experiment,
    "ablation_overlap": ablation_check_overlap,
    "ablation_tile": ablation_thread_tile,
    "ablation_devices": ablation_device_sweep,
    "sec72_agreement": agreement_study,
    "transformer_abft": transformer_abft,
}


def run_all(*, skip: tuple[str, ...] = ()) -> dict[str, Table]:
    """Run every registered experiment; returns artifact -> table."""
    return {
        name: build()
        for name, build in EXPERIMENTS.items()
        if name not in skip
    }


def main() -> None:  # pragma: no cover - CLI entry
    for name, table in run_all().items():
        print(f"\n===== {name} =====")
        if name == "fig05":
            # The full per-layer table is long; print the summary.
            summary = fig05_summary()
            print(
                f"ResNet-50 per-layer AI: min={summary['min']:.2f} "
                f"max={summary['max']:.1f} over {int(summary['layers'])} layers "
                f"(paper: ~1 to ~511)"
            )
            continue
        print(table.render())


if __name__ == "__main__":  # pragma: no cover
    main()
