"""repro: Arithmetic-Intensity-Guided Fault Tolerance for NN Inference.

A full-system reproduction of Kosaian & Rashmi, SC '21 (see DESIGN.md
for the system inventory and the documented GPU-simulation substitution).

Quickstart
----------
>>> import repro
>>> session = repro.deploy("resnet50", "T4", h=224, w=224)
>>> plan = session.plan  # per-layer scheme assignment + overheads
>>> plan.guided_overhead_percent <= plan.scheme_overhead_percent("global")
True
>>> session.campaign(layer="fc", seed=1).run_batch(50).coverage
1.0
"""

from .config import DEFAULT_CONSTANTS, DEFAULT_DETECTION, DetectionConstants, ModelConstants
from .errors import (
    CampaignError,
    ConfigurationError,
    DetectionError,
    FaultInjectionError,
    ModelZooError,
    OccupancyError,
    PlanError,
    ProfilingError,
    RecoveryError,
    ReproError,
    ShapeError,
    TilingError,
)
from .gpu import GPUSpec, get_gpu, list_gpus
from .gemm import GemmProblem, TileConfig, TiledGemm, select_tile
from .abft import (
    GlobalABFT,
    MultiChecksumGlobalABFT,
    NoProtection,
    PreparedCache,
    PreparedExecution,
    PreparedWeights,
    ReplicationSingleAccumulator,
    ReplicationTraditional,
    Scheme,
    ThreadLevelOneSided,
    ThreadLevelTwoSided,
    get_scheme,
    list_schemes,
    scheme_from_token,
    scheme_token,
    split_dtype_token,
)
from .faults import (
    CampaignOptions,
    FaultCampaign,
    FaultKind,
    FaultPath,
    FaultSpec,
    PropagationCampaign,
    PropagationOutcome,
    PropagationResult,
    RecoveryPolicy,
)
from .roofline import aggregate_intensity, classify_problem, cmr_table, layer_intensities
from .nn import (
    ModelGraph,
    ProtectedInference,
    SequentialModel,
    TransformerBlockSpec,
    build_model,
    build_transformer_graph,
    build_transformer_runnable,
    list_models,
    transformer_models,
)
from .core import (
    IntensityGuidedABFT,
    ModelSelection,
    PredeploymentProfiler,
    analytical_choice,
    overhead_percent,
    reduction_factor,
)
from .api import (
    CallablePolicy,
    DeploymentPlan,
    FixedPolicy,
    IntensityGuidedPolicy,
    LayerPlan,
    ProtectedSession,
    SchemePolicy,
    as_policy,
    deploy,
)
from .fleet import (
    FleetDeployment,
    PlanDiff,
    PlanRegistry,
    ServingReport,
    SessionServer,
    deploy_fleet,
    plan_diff,
    serve_session,
)
from . import api, fleet

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # configuration
    "DEFAULT_CONSTANTS",
    "DEFAULT_DETECTION",
    "ModelConstants",
    "DetectionConstants",
    # errors
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "TilingError",
    "OccupancyError",
    "FaultInjectionError",
    "CampaignError",
    "DetectionError",
    "ProfilingError",
    "ModelZooError",
    "PlanError",
    "RecoveryError",
    # gpu
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    # gemm
    "GemmProblem",
    "TileConfig",
    "TiledGemm",
    "select_tile",
    # abft
    "Scheme",
    "PreparedCache",
    "PreparedExecution",
    "PreparedWeights",
    "NoProtection",
    "GlobalABFT",
    "ThreadLevelOneSided",
    "ThreadLevelTwoSided",
    "ReplicationTraditional",
    "ReplicationSingleAccumulator",
    "MultiChecksumGlobalABFT",
    "get_scheme",
    "list_schemes",
    "scheme_from_token",
    "scheme_token",
    "split_dtype_token",
    # faults
    "FaultSpec",
    "FaultKind",
    "FaultPath",
    "CampaignOptions",
    "FaultCampaign",
    "PropagationCampaign",
    "PropagationOutcome",
    "PropagationResult",
    "RecoveryPolicy",
    # roofline
    "aggregate_intensity",
    "layer_intensities",
    "classify_problem",
    "cmr_table",
    # nn
    "ModelGraph",
    "build_model",
    "list_models",
    "SequentialModel",
    "ProtectedInference",
    "TransformerBlockSpec",
    "build_transformer_graph",
    "build_transformer_runnable",
    "transformer_models",
    # core
    "IntensityGuidedABFT",
    "PredeploymentProfiler",
    "ModelSelection",
    "analytical_choice",
    "overhead_percent",
    "reduction_factor",
    # deployment api
    "api",
    "SchemePolicy",
    "IntensityGuidedPolicy",
    "FixedPolicy",
    "CallablePolicy",
    "as_policy",
    "DeploymentPlan",
    "LayerPlan",
    "ProtectedSession",
    "deploy",
    # fleet
    "fleet",
    "FleetDeployment",
    "PlanDiff",
    "PlanRegistry",
    "ServingReport",
    "SessionServer",
    "deploy_fleet",
    "plan_diff",
    "serve_session",
]
