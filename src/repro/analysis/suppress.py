"""``# repro: ignore[RLxxx]`` suppression comments.

A finding is suppressed when its line carries an ignore comment naming
its rule code::

    cached = self._entries  # repro: ignore[RL002] caller holds the lock

Multiple codes separate with commas (``ignore[RL002,RL005]``); the
free text after the bracket is the *reason* and is required by review
convention (the linter does not enforce prose, but it does reject an
empty code list — a bare ``ignore[]`` suppresses nothing and is
reported as a malformed comment so it cannot rot silently).

Scope: an ignore comment on a ``def`` or ``class`` header line extends
to that whole definition body — the idiom for helpers whose contract
is established by their callers (e.g. "caller holds the lock").
Everywhere else the comment covers exactly its own line, so deleting a
guard *inside* an annotated function still trips the rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass

#: Matches the ignore marker inside a comment token.
_IGNORE_RE = re.compile(r"repro:\s*ignore\[(?P<codes>[^\]]*)\]")
#: A marker that looks like an attempt but lacks the bracketed codes.
_MALFORMED_RE = re.compile(r"repro:\s*ignore(?!\[)")
#: One well-formed rule code.
_CODE_RE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class Suppressions:
    """Per-line suppressed codes plus the malformed comments found."""

    by_line: dict[int, frozenset[str]]
    #: ``(line, message)`` of every unusable ignore comment.
    malformed: tuple[tuple[int, str], ...]

    def covers(self, line: int, code: str) -> bool:
        """Whether a finding of ``code`` at ``line`` is suppressed."""
        return code in self.by_line.get(line, frozenset())


def scan(source: str, tree: ast.Module | None = None) -> Suppressions:
    """Collect suppression comments (and their def/class scopes)."""
    by_line: dict[int, set[str]] = {}
    malformed: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line = token.start[0]
        match = _IGNORE_RE.search(token.string)
        if match is None:
            if _MALFORMED_RE.search(token.string):
                malformed.append(
                    (line, "malformed suppression: expected "
                           "'# repro: ignore[RLxxx] reason'")
                )
            continue
        codes = [c.strip() for c in match.group("codes").split(",") if c.strip()]
        bad = [c for c in codes if not _CODE_RE.match(c)]
        if not codes or bad:
            malformed.append(
                (line, f"malformed suppression: "
                       f"{'empty code list' if not codes else f'bad codes {bad}'}")
            )
            continue
        by_line.setdefault(line, set()).update(codes)

    if tree is not None and by_line:
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            header_codes = by_line.get(node.lineno)
            if not header_codes:
                continue
            for line in range(node.lineno + 1, (node.end_lineno or node.lineno) + 1):
                by_line.setdefault(line, set()).update(header_codes)

    return Suppressions(
        by_line={line: frozenset(codes) for line, codes in by_line.items()},
        malformed=tuple(malformed),
    )
