"""Core of the AST invariant linter: findings, rules, the registry.

The linter enforces *contracts*, not style: every rule in
:mod:`repro.analysis.rules` guards an invariant the engine's
correctness arguments depend on (DESIGN.md §9) — worker-count-invariant
RNG streams, lock discipline around shared mutable state, shared-memory
segment lifecycle, read-only prepared state, deterministic verdict
assembly, and a truthful ``repro.__all__``.  Each rule is an AST pass
over one module; the engine (:mod:`repro.analysis.engine`) parses each
file once and hands every selected rule the same
:class:`ModuleContext`.

Rules are registered by the :func:`register` decorator and looked up by
code (``RL001`` ... ``RL006``); ``RL000`` is reserved for the linter's
own diagnostics (syntax errors, malformed suppression comments) and is
neither selectable nor suppressible.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import AnalysisConfig

#: Code under which the linter reports its own problems (unparseable
#: file, malformed ignore comment).  Not a registered rule: it cannot
#: be deselected or suppressed.
META_CODE = "RL000"


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``--json`` reporter's row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class ModuleContext:
    """Everything a rule needs to check one parsed module."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        config: "AnalysisConfig",
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config

    @property
    def module_name(self) -> str:
        """Dotted module name derived from the file path.

        ``src/repro/faults/parallel.py`` → ``repro.faults.parallel``;
        an ``__init__.py`` names its package.  Paths outside a ``src``
        layout fall back to the stem, which is what fixture files in
        tests resolve to.
        """
        parts = self.path.replace("\\", "/").split("/")
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        elif "repro" in parts:
            parts = parts[parts.index("repro") :]
        else:
            parts = parts[-1:] if parts else []
        return ".".join(p for p in parts if p)


class Rule(abc.ABC):
    """One statically checkable contract.

    Subclasses set the identifying ``code`` (``RLxxx``), a kebab-case
    ``name``, a one-line ``contract`` (the invariant guarded — surfaced
    by ``repro lint --list-rules`` and the step-summary table), and
    ``backstops`` (the dynamic test suite the rule complements).
    """

    code: str = "RL000"
    name: str = "abstract"
    contract: str = ""
    backstops: str = ""

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in one module."""

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """A finding of this rule anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


#: Registry of selectable rules, keyed by code.
RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (import-time)."""
    if cls.code in RULES or cls.code == META_CODE:
        raise ValueError(f"duplicate or reserved rule code {cls.code!r}")
    RULES[cls.code] = cls
    return cls


def all_codes() -> tuple[str, ...]:
    """Every registered rule code, sorted."""
    return tuple(sorted(RULES))


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
class ImportMap:
    """Resolves names in one module back to dotted import paths.

    Tracks ``import numpy as np`` / ``from numpy import random as r`` /
    ``from numpy.random import default_rng`` style bindings so rules can
    ask what ``np.random.seed`` or a bare ``default_rng`` call actually
    refers to, without caring how the module spelled the import.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local name -> dotted module ("np" -> "numpy")
        self.modules: dict[str, str] = {}
        #: local name -> dotted member ("default_rng" -> "numpy.random.default_rng")
        self.members: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.members[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of an expression, or None if it isn't import-rooted.

        ``np.random.seed`` → ``numpy.random.seed`` (given ``import
        numpy as np``); a bare ``default_rng`` → its from-import path;
        anything rooted at a non-import name resolves to None.
        """
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.reverse()
        base = node.id
        if base in self.modules:
            return ".".join([self.modules[base], *chain])
        if base in self.members:
            return ".".join([self.members[base], *chain])
        return None


def walk_functions(
    tree: ast.AST,
) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    """Every function/method definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def attribute_root(node: ast.expr) -> ast.expr:
    """Peel subscripts/attributes down to the base expression.

    ``prepared.c_clean[0, 1]`` → the ``prepared`` Name;
    ``self._entries[key]`` → the ``self`` Name.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def contains_name(tree: ast.AST, name: str) -> bool:
    """Whether ``name`` is loaded anywhere inside ``tree``."""
    return any(
        isinstance(node, ast.Name) and node.id == name for node in ast.walk(tree)
    )


def iter_call_attrs(tree: ast.AST, receiver: str) -> Iterator[tuple[str, ast.Call]]:
    """``(method_name, call_node)`` for every ``receiver.method(...)``."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == receiver
        ):
            yield node.func.attr, node


def literal_str_elements(node: ast.expr) -> list[tuple[str, ast.expr]] | None:
    """``(value, element_node)`` pairs of a static string list/tuple.

    Returns None when the expression is not a list/tuple of plain
    string constants — the caller decides whether that is itself a
    violation (RL006 requires ``__all__`` to be static).
    """
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: list[tuple[str, ast.expr]] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        out.append((element.value, element))
    return out


def dotted_endswith(dotted: str | None, suffixes: Iterable[str]) -> bool:
    """Whether a resolved dotted path ends with any of ``suffixes``."""
    return dotted is not None and any(dotted.endswith(s) for s in suffixes)
