"""Configuration of the invariant linter: ``[tool.repro.analysis]``.

The rule set, path exclusions, and the per-rule knobs all live in
``pyproject.toml`` under ``[tool.repro.analysis]`` so the configuration
rides the repo like the ruff config does.  Loading prefers the standard
:mod:`tomllib` parser (Python 3.11+); on 3.10 — which CI's matrix still
runs — a deliberately minimal fallback parser handles the subset this
section uses (string/bool scalars and arrays of strings, one table).

Unknown keys in the section raise :class:`~repro.errors.
ConfigurationError` rather than being silently dropped: a typo'd knob
that quietly disables a gate is exactly the failure mode this linter
exists to prevent.
"""

from __future__ import annotations

import ast as _pyast
import re
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError

#: The pyproject table the linter reads.
SECTION = ("tool", "repro", "analysis")

#: Default prepared-state accessor attributes RL004 treats as read-only.
DEFAULT_RL004_ATTRS = ("c_clean", "a_pad", "b_pad", "clean_reductions")

#: Default module-path fragments RL005 (determinism of record/verdict
#: assembly) applies to: fault drawing, campaign records, and verdict
#: rendering all live under these packages.
DEFAULT_RL005_PATHS = ("repro/faults", "repro/abft")

#: Modules whose ``__all__`` must be *complete* (every public from-import
#: listed), not merely resolvable.  The root package is the enforced
#: supported surface (see tests/test_doctests.py).
DEFAULT_RL006_COMPLETE = ("repro",)


@dataclass(frozen=True)
class AnalysisConfig:
    """Resolved linter configuration."""

    #: Rule codes to run (default: every registered rule).
    select: tuple[str, ...] = ()
    #: Rule codes to drop from ``select``.
    ignore: tuple[str, ...] = ()
    #: Path fragments excluded from linting (posix, substring match).
    exclude: tuple[str, ...] = ("__pycache__/", "/tests/", "/.git/")
    #: Function names inside which RL004 permits prepared-state mutation.
    rl004_allow: tuple[str, ...] = ()
    #: Accessor attributes RL004 protects.
    rl004_attrs: tuple[str, ...] = DEFAULT_RL004_ATTRS
    #: Module-path fragments RL005 applies to.
    rl005_paths: tuple[str, ...] = DEFAULT_RL005_PATHS
    #: Dotted module names whose ``__all__`` must be complete (RL006).
    rl006_complete: tuple[str, ...] = DEFAULT_RL006_COMPLETE

    def enabled(self) -> tuple[str, ...]:
        """The codes to run: ``select`` (or all) minus ``ignore``."""
        from .core import all_codes

        codes = self.select or all_codes()
        unknown = [c for c in (*codes, *self.ignore) if c not in all_codes()]
        if unknown:
            raise ConfigurationError(
                f"unknown rule codes {sorted(set(unknown))}; "
                f"known rules are {list(all_codes())}"
            )
        return tuple(c for c in codes if c not in self.ignore)

    def excluded(self, posix_path: str) -> bool:
        """Whether a file path is excluded from linting."""
        return any(fragment in posix_path for fragment in self.exclude)

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "AnalysisConfig":
        """Build from the raw ``[tool.repro.analysis]`` table."""
        known = {f.name: f for f in fields(cls)}
        kwargs: dict[str, Any] = {}
        for raw_key, value in data.items():
            key = raw_key.replace("-", "_")
            if key not in known:
                raise ConfigurationError(
                    f"[tool.repro.analysis] has no option {raw_key!r}; "
                    f"known options are {sorted(known)}"
                )
            if not (
                isinstance(value, (list, tuple))
                and all(isinstance(v, str) for v in value)
            ):
                raise ConfigurationError(
                    f"[tool.repro.analysis] {raw_key} must be an array "
                    f"of strings, got {value!r}"
                )
            kwargs[key] = tuple(value)
        return cls(**kwargs)

    @classmethod
    def load(cls, start: "str | Path | None" = None) -> "AnalysisConfig":
        """Find and read ``pyproject.toml`` at/above ``start`` (or cwd).

        A missing file or a file without the section yields the
        defaults; a malformed section raises.
        """
        base = Path(start) if start is not None else Path.cwd()
        if base.is_file():
            base = base.parent
        for directory in (base, *base.parents):
            candidate = directory / "pyproject.toml"
            if candidate.is_file():
                return cls.from_pyproject(candidate)
        return cls()

    @classmethod
    def from_pyproject(cls, path: "str | Path") -> "AnalysisConfig":
        """Read the section out of one concrete ``pyproject.toml``."""
        text = Path(path).read_text(encoding="utf-8")
        table = _load_section(text)
        if table is None:
            return cls()
        return cls.from_mapping(table)

    def with_overrides(
        self,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
    ) -> "AnalysisConfig":
        """CLI-flag overrides layered over the file configuration."""
        updated = self
        if select is not None:
            updated = replace(updated, select=tuple(select))
        if ignore is not None:
            updated = replace(updated, ignore=tuple(ignore))
        return updated


# ----------------------------------------------------------------------
# TOML section extraction (tomllib when available, minimal fallback)
# ----------------------------------------------------------------------
def _load_section(text: str) -> dict[str, Any] | None:
    """The raw ``[tool.repro.analysis]`` table of a pyproject text."""
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - exercised on py3.10 CI
        return _parse_section_minimal(text)
    data = tomllib.loads(text)
    table: Any = data
    for key in SECTION:
        if not isinstance(table, dict) or key not in table:
            return None
        table = table[key]
    return table if isinstance(table, dict) else None


_HEADER_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*(#.*)?$")
_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_-]+)\s*=\s*(?P<value>.+)$", re.S)


def _parse_section_minimal(text: str) -> dict[str, Any] | None:
    """Fallback parser for the one table the linter needs.

    Handles exactly the shapes this section uses — ``key = "str"``,
    ``key = true``, and (possibly multi-line) ``key = ["a", "b"]`` —
    by splitting the section into ``key = value`` chunks and evaluating
    each value as a Python literal (TOML strings and string arrays are
    literal-compatible; ``true``/``false`` are mapped first).  Anything
    richer raises rather than guessing.
    """
    section_lines: list[str] | None = None
    collected: list[str] = []
    for line in text.splitlines():
        header = _HEADER_RE.match(line)
        if header is not None:
            if section_lines is not None:
                break
            if header.group("name").strip() == ".".join(SECTION):
                section_lines = collected
            continue
        if section_lines is not None:
            stripped = line.split("#", 1)[0].rstrip()
            if stripped:
                collected.append(stripped)
    if section_lines is None:
        return None

    table: dict[str, Any] = {}
    chunk: list[str] = []
    for line in [*collected, None]:
        starts_key = line is not None and _KEY_RE.match(line) is not None
        if (starts_key or line is None) and chunk:
            match = _KEY_RE.match("\n".join(chunk))
            if match is None:
                raise ConfigurationError(
                    f"[tool.repro.analysis] fallback parser cannot read: "
                    f"{' '.join(chunk)!r}"
                )
            table[match.group("key")] = _literal(match.group("value"))
            chunk = []
        if line is not None:
            chunk.append(line)
    return table


def _literal(value: str) -> Any:
    normalized = re.sub(r"\btrue\b", "True", re.sub(r"\bfalse\b", "False", value))
    try:
        return _pyast.literal_eval(normalized.strip())
    except (ValueError, SyntaxError) as exc:
        raise ConfigurationError(
            f"[tool.repro.analysis] fallback parser cannot evaluate "
            f"{value.strip()!r} (use plain strings, booleans, or string "
            f"arrays): {exc}"
        ) from None
