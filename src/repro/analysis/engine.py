"""Per-file rule dispatch: parse once, run every selected rule.

:func:`lint_paths` is the programmatic entry point the CLI wraps:
it expands files/directories into sorted ``.py`` files (honoring the
config's excludes), parses each exactly once, hands the shared
:class:`~repro.analysis.core.ModuleContext` to every selected rule,
filters findings through the file's suppression comments, and returns
one deterministic, sorted result.  :func:`lint_source` is the same
pipeline over an in-memory string — what the fixture tests drive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from . import rules as _rules  # noqa: F401 - registers every rule
from .config import AnalysisConfig
from .core import META_CODE, RULES, Finding, ModuleContext
from .suppress import scan as scan_suppressions


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced."""

    findings: tuple[Finding, ...]
    n_files: int
    #: Codes that were run (for the reporters' rule table).
    codes: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Findings per rule code (zero-count rules included)."""
        out = {code: 0 for code in self.codes}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out


def iter_python_files(
    paths: Sequence[str | Path], config: AnalysisConfig
) -> list[Path]:
    """Sorted ``.py`` files under ``paths``, minus config excludes.

    A path that does not exist raises — a CI invocation naming a
    missing directory must fail loudly, not pass on an empty file set.
    """
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        files.extend(
            candidate
            for candidate in sorted(path.rglob("*.py"))
            if not config.excluded(candidate.as_posix())
        )
    # De-duplicate while keeping the deterministic order.
    seen: set[Path] = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_source(
    source: str,
    path: str = "<string>",
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Run the selected rules over one in-memory module."""
    config = config if config is not None else AnalysisConfig()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule=META_CODE,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, source=source, tree=tree, config=config)
    suppressions = scan_suppressions(source, tree)

    findings: list[Finding] = [
        Finding(path=path, line=line, col=1, rule=META_CODE, message=message)
        for line, message in suppressions.malformed
    ]
    for code in config.enabled():
        rule = RULES[code]()
        for finding in rule.check(ctx):
            if not suppressions.covers(finding.line, finding.rule):
                findings.append(finding)
    return sorted(set(findings))


def lint_file(path: str | Path, config: AnalysisConfig | None = None) -> list[Finding]:
    """Run the selected rules over one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from None
    return lint_source(source, path=path.as_posix(), config=config)


def lint_paths(
    paths: Iterable[str | Path],
    config: AnalysisConfig | None = None,
) -> LintResult:
    """Lint every python file under ``paths``; one sorted result."""
    config = config if config is not None else AnalysisConfig()
    codes = config.enabled()  # validates the selection up front
    files = iter_python_files(list(paths), config)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, config=config))
    return LintResult(
        findings=tuple(sorted(findings)), n_files=len(files), codes=codes
    )
