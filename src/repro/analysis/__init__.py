"""Static analysis of the repo's own invariants (``repro lint``).

An AST linter whose rules are this codebase's *contracts*, not style:
seeded-RNG determinism (RL001), lock discipline around shared state
(RL002), shared-memory segment lifecycle (RL003), read-only prepared
state (RL004), deterministic record assembly (RL005), and a truthful
``__all__`` (RL006).  See DESIGN.md §9 for the rule-by-rule table and
:mod:`repro.analysis.rules` for the implementations.

Programmatic surface::

    from repro.analysis import AnalysisConfig, lint_paths
    result = lint_paths(["src"], AnalysisConfig.load())
    assert result.ok, [f.render() for f in result.findings]

Suppression is per line (or per def/class header) with
``# repro: ignore[RLxxx] reason``; configuration lives in
``[tool.repro.analysis]`` in ``pyproject.toml``.
"""

from .config import AnalysisConfig
from .core import META_CODE, RULES, Finding, Rule, all_codes, register
from .engine import LintResult, lint_file, lint_paths, lint_source
from .report import (
    list_rules,
    render_json,
    render_step_summary,
    render_text,
    write_step_summary,
)
from .suppress import Suppressions, scan

__all__ = [
    "AnalysisConfig",
    "Finding",
    "LintResult",
    "META_CODE",
    "RULES",
    "Rule",
    "Suppressions",
    "all_codes",
    "lint_file",
    "lint_paths",
    "lint_source",
    "list_rules",
    "register",
    "render_json",
    "render_step_summary",
    "render_text",
    "scan",
    "write_step_summary",
]
