"""Reporters: terminal text, machine JSON, Actions step summary.

Mirrors the conventions of ``benchmarks/check_regression.py``: the
text reporter prints one conventional ``path:line:col: CODE message``
line per finding plus a one-line tally; the JSON reporter emits a
stable document for tooling; and when ``$GITHUB_STEP_SUMMARY`` is set
the per-rule table is appended there so a failing invariants gate is
readable from the run's Summary page without digging through logs.
"""

from __future__ import annotations

import json
import os

from .core import RULES
from .engine import LintResult

#: Columns of the step-summary rule table.
_COLUMNS = ("rule", "contract", "findings")


def render_text(result: LintResult) -> str:
    """The terminal report: findings, then a one-line tally."""
    lines = [finding.render() for finding in result.findings]
    counts = result.counts()
    ran = ", ".join(counts) or "no rules"
    if result.ok:
        lines.append(
            f"repro lint: {result.n_files} file(s) clean under {ran}"
        )
    else:
        per_rule = ", ".join(
            f"{code}: {n}" for code, n in counts.items() if n
        )
        lines.append(
            f"repro lint: {len(result.findings)} finding(s) in "
            f"{result.n_files} file(s) ({per_rule})"
        )
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Stable JSON document (``repro lint --json``)."""
    return json.dumps(
        {
            "ok": result.ok,
            "files": result.n_files,
            "rules": result.counts(),
            "findings": [f.to_dict() for f in result.findings],
        },
        indent=2,
        sort_keys=True,
    ) + "\n"


def render_step_summary(result: LintResult) -> str:
    """Markdown table of the invariants gate for the Actions UI."""
    lines = [
        "### Invariant lint (`repro lint`)",
        "",
        "| " + " | ".join(_COLUMNS) + " |",
        "| " + " | ".join("---" for _ in _COLUMNS) + " |",
    ]
    counts = result.counts()
    for code, count in counts.items():
        rule = RULES.get(code)
        contract = rule.contract if rule is not None else ""
        marker = f"**{count}**" if count else "0"
        lines.append(f"| {code} ({rule.name if rule else '?'}) | {contract} | {marker} |")
    if result.ok:
        lines += ["", f"Gate passed: {result.n_files} file(s), no findings."]
    else:
        lines += ["", f"Gate failed: {len(result.findings)} finding(s)."]
        lines += [f"- `{finding.render()}`" for finding in result.findings]
    return "\n".join(lines) + "\n"


def write_step_summary(result: LintResult) -> None:
    """Append the markdown table to ``$GITHUB_STEP_SUMMARY`` if set."""
    target = os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return
    with open(target, "a", encoding="utf-8") as fh:
        fh.write(render_step_summary(result))


def list_rules() -> str:
    """Human-readable registry dump (``repro lint --list-rules``)."""
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name}")
        lines.append(f"      contract:  {rule.contract}")
        lines.append(f"      backstops: {rule.backstops}")
    return "\n".join(lines) + "\n"
