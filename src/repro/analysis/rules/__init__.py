"""The repo-specific invariant rules (RL001-RL006).

Importing this package registers every rule with
:data:`repro.analysis.core.RULES`; the engine imports it for exactly
that side effect.  Each module holds one rule and documents the
contract it guards plus the dynamic test suite it backstops — the same
text DESIGN.md §9 tabulates.
"""

from __future__ import annotations

from . import determinism, exports, locks, mutation, rng, shm

__all__ = [
    "determinism",
    "exports",
    "locks",
    "mutation",
    "rng",
    "shm",
]
