"""RL002 — lock discipline around shared mutable state.

Contract guarded (DESIGN.md §1/§5): classes that create a lock
(``self._lock = threading.Lock()`` and friends) do so because their
mutable state is shared across threads — ``PreparedCache`` entries and
hit counters, ``PreparedExecution``'s lazily built sparse-path caches,
``ProtectedSession``'s synthesized-operand memo, the serving layer's
latency stats.  Every access to that state must happen inside a
``with self.<lock>`` block, or a racing reader can observe a
half-built entry.

The *guarded* attribute set is inferred, deliberately redundantly, as
the union of

* attributes write-accessed inside any ``with self.<lock>`` block, and
* attributes written in **any** ordinary method of the class
  (constructors and pickle plumbing — ``__init__``, ``__setstate__``,
  ... — are exempt: the object is not yet shared there).

The second clause is what makes the rule robust to the very bug it
hunts: deleting the only ``with self._lock:`` guard around a write
does not shrink the guarded set, so the now-naked access is still
flagged.  Deliberate lock-free fast paths (double-checked reads of
GIL-atomic dict gets) are annotated ``# repro: ignore[RL002]`` at the
exact line, so the suppression never outlives the pattern.

Backstops: ``tests/abft`` threaded PreparedCache stress tests and the
concurrent serving tests in ``tests/fleet``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..core import Finding, ImportMap, ModuleContext, Rule, register

#: Calls whose result is a lock when assigned to a self attribute.
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}

#: Attribute names treated as locks regardless of how they were built.
_LOCK_NAMES = {"_lock", "_lazy_lock"}

#: Methods where the instance is not yet (or no longer) shared.
_EXEMPT_METHODS = {
    "__init__",
    "__new__",
    "__post_init__",
    "__getstate__",
    "__setstate__",
    "__reduce__",
    "__reduce_ex__",
    "__del__",
    "__copy__",
    "__deepcopy__",
}

#: Method calls that mutate their receiver in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "clear",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "move_to_end",
    "sort",
    "reverse",
    "fill",
    "put",
}

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class _Access:
    """One ``self.<attr>`` touch inside a method."""

    attr: str
    node: ast.Attribute
    is_write: bool
    under_lock: bool


@register
class LockDiscipline(Rule):
    code = "RL002"
    name = "lock-discipline"
    contract = (
        "state written by methods of a lock-owning class is only "
        "touched inside `with self.<lock>` blocks"
    )
    backstops = "tests/abft threaded-cache and tests/fleet serving stress tests"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for klass in ast.walk(ctx.tree):
            if isinstance(klass, ast.ClassDef):
                yield from self._check_class(ctx, klass, imports)

    def _check_class(
        self, ctx: ModuleContext, klass: ast.ClassDef, imports: ImportMap
    ) -> Iterator[Finding]:
        methods = [n for n in klass.body if isinstance(n, _FUNC_NODES)]
        lock_names = _lock_attributes(methods, imports)
        if not lock_names:
            return
        accesses = {m.name: list(_self_accesses(m, lock_names)) for m in methods}

        locked_writes = {
            a.attr
            for per_method in accesses.values()
            for a in per_method
            if a.is_write and a.under_lock
        }
        method_writes = {
            a.attr
            for method in methods
            if method.name not in _EXEMPT_METHODS
            for a in accesses[method.name]
            if a.is_write
        }
        guarded = (locked_writes | method_writes) - lock_names
        if not guarded:
            return

        for method in methods:
            if method.name in _EXEMPT_METHODS:
                continue
            for access in accesses[method.name]:
                if access.attr in guarded and not access.under_lock:
                    lock = sorted(lock_names)[0]
                    verb = "written" if access.is_write else "read"
                    yield self.finding(
                        ctx,
                        access.node,
                        f"self.{access.attr} is lock-guarded state of "
                        f"{klass.name} but is {verb} outside "
                        f"`with self.{lock}`",
                    )


def _lock_attributes(methods: list, imports: ImportMap) -> set[str]:
    """Attributes of ``self`` holding locks, across every method."""
    names: set[str] = set()
    for method in methods:
        for node in ast.walk(method):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                dotted = imports.resolve(node.value.func)
                if dotted in _LOCK_FACTORIES or attr in _LOCK_NAMES:
                    names.add(attr)
    return names


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_accesses(method: ast.AST, lock_names: set[str]) -> Iterator[_Access]:
    """Classify every ``self.<attr>`` node in one method."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(method):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    for node in ast.walk(method):
        attr = _self_attr(node)
        if attr is None:
            continue
        yield _Access(
            attr=attr,
            node=node,  # type: ignore[arg-type]
            is_write=_is_write(node, parents),
            under_lock=_under_lock(node, parents, lock_names),
        )


def _is_write(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Whether this attribute access mutates the attribute's value.

    Covers plain/augmented/annotated assignment and deletion
    (``self.x = ...``, ``self.x += ...``), stores through a subscript
    (``self.x[k] = ...``), stores through a sub-attribute
    (``self.x.flag = ...``), and in-place mutator calls
    (``self.x.append(...)``).
    """
    if isinstance(getattr(node, "ctx", None), (ast.Store, ast.Del)):
        return True
    parent = parents.get(node)
    if (
        isinstance(parent, ast.Subscript)
        and parent.value is node
        and isinstance(parent.ctx, (ast.Store, ast.Del))
    ):
        return True
    if isinstance(parent, ast.Attribute) and parent.value is node:
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
        grandparent = parents.get(parent)
        if (
            isinstance(grandparent, ast.Call)
            and grandparent.func is parent
            and parent.attr in _MUTATORS
        ):
            return True
    return False


def _under_lock(
    node: ast.AST, parents: dict[ast.AST, ast.AST], lock_names: set[str]
) -> bool:
    """Whether the node sits lexically inside ``with self.<lock>``."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                attr = _self_attr(item.context_expr)
                if attr in lock_names:
                    return True
        current = parents.get(current)
    return False
