"""RL004 — prepared state is read-only.

Contract guarded (DESIGN.md §1/§4): a :class:`~repro.abft.base.
PreparedExecution` is shared — across campaigns through
:class:`~repro.abft.base.PreparedCache`, and across *processes* as
read-only zero-copy shared-memory views in sharded runs.  In-place
mutation of its arrays (``c_clean``, ``a_pad``, ``b_pad``, the cached
``clean_reductions``) passes single-process tests, silently corrupts
every other consumer of the cache entry, and hard-crashes sharded
workers (the views are mapped read-only).

Flagged, for the configured accessor attributes (``rl004-attrs``) and
any local alias bound from one:

* augmented assignment (``prepared.c_clean += ...``),
* subscript stores (``prepared.c_clean[i, j] = ...``),
* in-place mutator calls (``.fill(...)``, ``.sort()``, ``.setflags``,
  ``.resize``, ``.partial``-style receivers),
* use as a NumPy ``out=`` target.

Functions named in ``rl004-allow`` (pyproject) are exempt — the one
place the engine legitimately builds these arrays.  Writes through
``self`` are construction by the owning class and are not flagged.

Backstops: ``tests/abft`` cache-sharing bit-identity assertions and
the read-only-view crash tests in ``tests/faults``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, register, walk_functions

#: ndarray methods that mutate in place.
_ARRAY_MUTATORS = {"fill", "sort", "partition", "put", "itemset", "resize", "setflags"}

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@register
class NoPreparedMutation(Rule):
    code = "RL004"
    name = "no-prepared-mutation"
    contract = (
        "arrays reached through PreparedExecution/PreparedCache "
        "accessors are never mutated in place"
    )
    backstops = "tests/abft cache bit-identity; sharded read-only view tests"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        attrs = set(ctx.config.rl004_attrs)
        allow = set(ctx.config.rl004_allow)
        if not attrs:
            return
        for func in walk_functions(ctx.tree):
            if func.name in allow:
                continue
            yield from self._check_function(ctx, func, attrs)
        # Module-level statements (scripts, examples) get the same scan.
        module_stmts = [
            n for n in ctx.tree.body if not isinstance(n, _FUNC_NODES + (ast.ClassDef,))
        ]
        fake_module = ast.Module(body=module_stmts, type_ignores=[])
        yield from self._check_body(ctx, fake_module, attrs)

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST, attrs: set[str]
    ) -> Iterator[Finding]:
        yield from self._check_body(ctx, func, attrs)

    def _check_body(
        self, ctx: ModuleContext, scope: ast.AST, attrs: set[str]
    ) -> Iterator[Finding]:
        aliases = self._aliases(scope, attrs)

        def protected(node: ast.expr) -> str | None:
            """The protected attr an expression denotes, if any."""
            if isinstance(node, ast.Attribute) and node.attr in attrs:
                if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
                    return node.attr
            if isinstance(node, ast.Name) and node.id in aliases:
                return aliases[node.id]
            return None

        for node in ast.walk(scope):
            if isinstance(node, ast.AugAssign):
                attr = protected(node.target)
                if attr is not None:
                    yield self.finding(
                        ctx, node,
                        f"augmented assignment mutates prepared array "
                        f"{attr!r} in place; copy before writing",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = protected(target.value)
                        if attr is not None:
                            yield self.finding(
                                ctx, target,
                                f"subscript store mutates prepared array "
                                f"{attr!r} in place; copy before writing",
                            )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ARRAY_MUTATORS
                ):
                    attr = protected(node.func.value)
                    if attr is not None:
                        yield self.finding(
                            ctx, node,
                            f".{node.func.attr}() mutates prepared array "
                            f"{attr!r} in place; copy before writing",
                        )
                for kw in node.keywords:
                    if kw.arg == "out":
                        attr = protected(kw.value)
                        if attr is not None:
                            yield self.finding(
                                ctx, kw.value,
                                f"out= targets prepared array {attr!r}; "
                                f"allocate a private output buffer",
                            )

    @staticmethod
    def _aliases(scope: ast.AST, attrs: set[str]) -> dict[str, str]:
        """Locals bound directly from a protected accessor attribute.

        ``baseline = prepared.c_clean`` makes ``baseline`` carry the
        protection; rebinding to anything else is not tracked (one
        level of aliasing catches the idioms this repo uses).
        """
        out: dict[str, str] = {}
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            if isinstance(node.value, ast.Attribute) and node.value.attr in attrs:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.attr
        return out
