"""RL003 — shared-memory segment lifecycle.

Contract guarded (DESIGN.md §4, failure contract): every
``SharedMemory(create=True)`` segment is eventually both ``close()``d
and ``unlink()``ed, on success *and* failure paths — otherwise sharded
campaigns leak ``/dev/shm`` space (bounded by the kernel, so leaks
eventually fail unrelated runs).  The PR 7 resource-tracker asymmetry
(cpython#82300 — attachments registered as if owned) is exactly this
bug class.

Two checks per function:

* **creation** — a name assigned from ``SharedMemory(create=True, ...)``
  must either *escape* the function (returned/yielded, stored on an
  object or into a container, or handed to another call — ownership
  transfer, as ``export_payload`` does) or be closed *and* unlinked in
  a ``finally`` block so exception paths clean up too;
* **pairing** — for any shm-like name (a parameter named ``shm`` /
  ``*_shm`` / ``shm_*``, or a local bound from a ``SharedMemory(...)``
  call), a ``finally`` that ``close()``s it while the function never
  ``unlink()``s it leaks the segment (and unlink-without-close leaks
  the mapping).  Attach-only handles that are merely closed outside a
  ``finally`` — worker-side caches — are not flagged.

Backstops: ``tests/faults`` sharded-campaign leak assertions over
``/dev/shm`` before/after.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ImportMap, ModuleContext, Rule, register, walk_functions


def _is_shm_like_name(name: str) -> bool:
    return name == "shm" or name.startswith("shm_") or name.endswith("_shm")


def _method_calls(tree: ast.AST, name: str) -> set[str]:
    """Method names called on the bare name (``name.close()`` → close)."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            out.add(node.func.attr)
    return out


def _finally_calls(func: ast.AST, name: str) -> dict[str, ast.Call]:
    """Calls on ``name`` reachable inside any ``finally`` block."""
    out: dict[str, ast.Call] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == name
                ):
                    out.setdefault(sub.func.attr, sub)
    return out


def _escapes(func: ast.AST, name: str) -> bool:
    """Whether the bare name leaves the function (ownership transfer)."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and _contains_bare(value, name):
                return True
        elif isinstance(node, ast.Assign):
            if _contains_bare(node.value, name) and any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
            ):
                return True
        elif isinstance(node, ast.Call):
            receiver = (
                node.func.value.id
                if isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                else None
            )
            if receiver == name:  # its own methods do not transfer it
                continue
            args = [*node.args, *(kw.value for kw in node.keywords)]
            if any(isinstance(a, ast.Name) and a.id == name for a in args):
                return True
    return False


def _contains_bare(tree: ast.expr, name: str) -> bool:
    """Whether the expression carries the handle itself.

    ``shm`` inside a tuple/list/call does; ``shm.name`` / ``shm.buf[...]``
    expose data *derived from* the handle, not the handle, so attribute
    and subscript bases do not count as escapes.
    """
    if isinstance(tree, ast.Name):
        return tree.id == name
    if isinstance(tree, (ast.Attribute, ast.Subscript)):
        return False
    return any(
        _contains_bare(child, name) for child in ast.iter_child_nodes(tree)
    )


@register
class ShmLifecycle(Rule):
    code = "RL003"
    name = "shm-lifecycle"
    contract = (
        "every SharedMemory(create=True) segment is closed and "
        "unlinked on all exception paths (or ownership escapes)"
    )
    backstops = "tests/faults /dev/shm leak checks around sharded campaigns"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for func in walk_functions(ctx.tree):
            yield from self._check_function(ctx, func, imports)

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST, imports: ImportMap
    ) -> Iterator[Finding]:
        created: dict[str, ast.Call] = {}
        shm_like: set[str] = set()

        args = getattr(func, "args", None)
        if args is not None:
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg)),
            ):
                if _is_shm_like_name(arg.arg):
                    shm_like.add(arg.arg)

        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            dotted = imports.resolve(node.value.func)
            if not (dotted and dotted.endswith(".SharedMemory")):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    shm_like.add(target.id)
                    if any(
                        kw.arg == "create"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in node.value.keywords
                    ):
                        created[target.id] = node.value

        for name, call in created.items():
            cleanup = _finally_calls(func, name)
            if "close" in cleanup and "unlink" in cleanup:
                continue
            if _escapes(func, name):
                continue
            yield self.finding(
                ctx,
                call,
                f"SharedMemory(create=True) bound to {name!r} is neither "
                f"closed+unlinked in a finally block nor handed off; "
                f"exception paths leak the /dev/shm segment",
            )

        for name in sorted(shm_like):
            cleanup = _finally_calls(func, name)
            everywhere = _method_calls(func, name)
            if "close" in cleanup and "unlink" not in everywhere:
                yield self.finding(
                    ctx,
                    cleanup["close"],
                    f"finally closes shared segment {name!r} but the "
                    f"function never unlink()s it; the segment outlives "
                    f"every mapping",
                )
            elif "unlink" in cleanup and "close" not in everywhere:
                yield self.finding(
                    ctx,
                    cleanup["unlink"],
                    f"finally unlinks shared segment {name!r} without "
                    f"close(); the mapping (and its pages) leak",
                )
