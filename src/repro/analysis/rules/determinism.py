"""RL005 — no nondeterminism in record/verdict assembly paths.

Contract guarded (DESIGN.md §4): campaign records and fault verdicts
are pure functions of ``(prepared state, seed, trial index)`` — that
is what makes a record stream comparable across runs, worker counts,
and machines.  Two easy ways to silently break it:

* **wall-clock reads** (``time.time``, ``datetime.now``) folded into a
  record or verdict — every run differs by construction
  (``time.perf_counter`` for throughput *measurement* is fine and not
  flagged);
* **bare set iteration** — ``for x in {…}`` / ``for x in set(...)``
  hashes by object identity for some key types, so iteration order can
  vary between processes; assemble ordered output via ``sorted(...)``.

The rule applies only to modules under the configured ``rl005-paths``
fragments (the fault-drawing and verdict-assembly packages) — wall
clocks are legitimate elsewhere (serving latency, benchmark timing).

Backstops: ``tests/properties`` record-stream equality properties.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ImportMap, ModuleContext, Rule, register

#: Wall-clock calls that make a value run-dependent.
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Wrappers whose first argument's iteration order they preserve.
_ORDER_PRESERVING = {"enumerate", "list", "tuple", "iter"}


@register
class DeterministicAssembly(Rule):
    code = "RL005"
    name = "deterministic-assembly"
    contract = (
        "record/verdict assembly reads no wall clock and iterates no "
        "bare set"
    )
    backstops = "tests/properties record-stream equality"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        fragments = ctx.config.rl005_paths
        posix = ctx.path.replace("\\", "/")
        if not any(fragment in posix for fragment in fragments):
            return
        imports = ImportMap(ctx.tree)
        set_aliases = self._set_aliases(ctx.tree)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = imports.resolve(node.func)
                if dotted in _WALL_CLOCKS:
                    yield self.finding(
                        ctx, node,
                        f"{dotted} makes the assembled value "
                        f"run-dependent; derive it from the seed or drop "
                        f"it from the record",
                    )
            iterables: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for candidate in iterables:
                target = self._unwrap(candidate)
                if self._is_set_expr(target, set_aliases):
                    yield self.finding(
                        ctx, candidate,
                        "iterating a set has no deterministic order; "
                        "iterate sorted(...) instead",
                    )

    @staticmethod
    def _unwrap(node: ast.expr) -> ast.expr:
        """Peel order-preserving wrappers: ``enumerate(s)`` → ``s``."""
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_PRESERVING
            and node.args
        ):
            node = node.args[0]
        return node

    @staticmethod
    def _is_set_expr(node: ast.expr, aliases: set[str]) -> bool:
        if isinstance(node, ast.Set):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            # set algebra (a & b, seen - done) stays a set
            return DeterministicAssembly._is_set_expr(
                node.left, aliases
            ) or DeterministicAssembly._is_set_expr(node.right, aliases)
        return isinstance(node, ast.Name) and node.id in aliases

    @staticmethod
    def _set_aliases(tree: ast.AST) -> set[str]:
        """Names bound to set displays / ``set(...)`` calls anywhere."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and DeterministicAssembly._is_set_expr(
                node.value, aliases
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases
