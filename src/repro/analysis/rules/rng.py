"""RL001 — no global or unseeded randomness.

Contract guarded (DESIGN.md §4): the sharded campaign path draws the
*entire* spec stream from one seeded ``np.random.default_rng`` in the
parent, so records are bit-identical at any worker count.  One call
into the global NumPy RNG, the stdlib :mod:`random` module, or
``os.urandom`` anywhere campaigns can reach silently breaks that —
the run still passes, it is just no longer reproducible.

Flagged:

* ``np.random.<fn>(...)`` module-level calls (``seed``, ``rand``,
  ``normal``, ``shuffle``, ...) — global hidden state;
* seedable constructors called without a seed —
  ``np.random.default_rng()``, ``SeedSequence()``, ``PCG64()``, bare
  ``RandomState()``;
* stdlib ``random.*`` calls (``random.random``, ``random.seed``,
  ``random.SystemRandom()``, ...) — module-global or entropy-backed
  state; a seeded ``random.Random(seed)`` instance is permitted;
* ``os.urandom(...)`` — fresh entropy per call by construction.

Backstops: ``tests/properties`` worker-count-invariance properties and
the determinism assertions in ``tests/faults``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ImportMap, ModuleContext, Rule, register

#: numpy.random constructors that are fine *when given a seed*.
_SEEDABLE = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "RandomState",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


@register
class NoGlobalRng(Rule):
    code = "RL001"
    name = "no-global-rng"
    contract = (
        "all randomness flows from explicitly seeded generators, so "
        "campaign records are bit-identical at any worker count"
    )
    backstops = "tests/properties worker-count invariance"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None:
                continue
            message = self._violation(dotted, node)
            if message is not None:
                yield self.finding(ctx, node, message)

    @staticmethod
    def _violation(dotted: str, call: ast.Call) -> str | None:
        seeded = bool(call.args or call.keywords)
        if dotted == "os.urandom":
            return "os.urandom draws fresh entropy per call; derive bytes from a seeded rng"
        if dotted.startswith("numpy.random."):
            tail = dotted[len("numpy.random.") :]
            if tail in _SEEDABLE:
                if not seeded:
                    return (
                        f"unseeded numpy.random.{tail}(); pass an explicit "
                        f"seed so runs are reproducible"
                    )
                return None
            if "." in tail:  # e.g. numpy.random.mtrand internals
                tail = tail.split(".", 1)[0]
            return (
                f"numpy.random.{tail} uses the global RNG; use a seeded "
                f"np.random.default_rng(...) instead"
            )
        if dotted.startswith("random."):
            tail = dotted[len("random.") :]
            if tail == "Random" and seeded:
                return None
            return (
                f"stdlib random.{tail} is module-global or entropy-backed; "
                f"use a seeded np.random.default_rng(...) instead"
            )
        return None
