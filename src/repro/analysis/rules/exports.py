"""RL006 — ``__all__`` tells the truth.

Contract guarded: ``repro.__all__`` is the supported public surface —
PR 8 made it the *executable* contract (every entry doctest-verified),
and downstream ``from repro import *`` consumers see exactly it.  The
runtime doctest suite catches entries that do not import; this rule
catches the drift classes that still slip through statically:

* ``__all__`` that is not a static list/tuple of string literals
  (a computed ``__all__`` cannot be audited or checked at all);
* duplicate entries;
* entries that resolve to no top-level binding of the module
  (typo, or the name was removed but the export list kept it);
* for modules configured in ``rl006-complete`` (the root package),
  public top-level bindings *missing* from ``__all__`` — a new
  re-export that silently never became part of the surface.

Backstops: ``tests/test_doctests.py`` (imports and doctests every
``repro.__all__`` entry at runtime).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, literal_str_elements, register


def _top_level_bindings(tree: ast.Module) -> tuple[set[str], set[str]]:
    """``(all bindings, public from-import/def bindings)`` of a module.

    Walks one level into ``if``/``try`` so conditionally bound names
    (version-gated imports) count.  The second set drives the
    completeness check: plain ``import x`` module bindings are
    deliberately not required to be exported.
    """
    bound: set[str] = set()
    exportable: set[str] = set()

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    bound.add(name)
                    exportable.add(name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
                exportable.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            bound.add(node.id)
                            exportable.add(node.id)
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)
                for handler in stmt.handlers:
                    visit(handler.body)

    visit(tree.body)
    return bound, exportable


@register
class AllDrift(Rule):
    code = "RL006"
    name = "all-drift"
    contract = (
        "__all__ is static, duplicate-free, resolvable, and (for the "
        "root package) complete"
    )
    backstops = "tests/test_doctests.py runtime import of every entry"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        assignment = next(
            (
                stmt
                for stmt in ctx.tree.body
                if isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                )
            ),
            None,
        )
        must_be_complete = ctx.module_name in ctx.config.rl006_complete
        if assignment is None:
            if must_be_complete:
                yield self.finding(
                    ctx, ctx.tree,
                    f"module {ctx.module_name!r} must define a static "
                    f"__all__ (it is a configured public surface)",
                )
            return

        elements = literal_str_elements(assignment.value)
        if elements is None:
            yield self.finding(
                ctx, assignment,
                "__all__ must be a static list/tuple of string literals "
                "so the surface is auditable",
            )
            return

        seen: set[str] = set()
        for name, node in elements:
            if name in seen:
                yield self.finding(
                    ctx, node, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)

        bound, exportable = _top_level_bindings(ctx.tree)
        for name, node in elements:
            if name not in bound:
                yield self.finding(
                    ctx, node,
                    f"__all__ entry {name!r} does not resolve to any "
                    f"top-level binding of {ctx.module_name}",
                )

        if must_be_complete:
            missing = sorted(
                name
                for name in exportable
                if not name.startswith("_") and name not in seen
            )
            for name in missing:
                yield self.finding(
                    ctx, assignment,
                    f"public binding {name!r} is missing from "
                    f"{ctx.module_name}.__all__ — exported surface drifted",
                )
