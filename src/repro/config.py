"""Tunable constants of the analytic GPU performance model.

The paper measures execution time on a physical NVIDIA T4.  This
reproduction replaces the stopwatch with an analytic multi-pipe latency
model (see ``repro.gpu.timing``).  Every constant that shapes that model is
collected here, with its rationale, so that the calibration surface is
explicit and auditable.

The constants are deliberately *not* magic numbers scattered through the
code: the paper's qualitative results (which ABFT scheme wins where, and
roughly by how much) must be robust to reasonable perturbations of these
values, and the ablation benchmarks exercise exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from .errors import ConfigurationError


@dataclass(frozen=True)
class ModelConstants:
    """Calibration constants for the kernel latency model.

    Attributes
    ----------
    launch_overhead_s:
        Fixed host-side + hardware cost of launching one CUDA kernel.
        Microbenchmarks on Turing-class parts put this at 2.5--5 us; we
        use 3 us.  This term dominates tiny GEMMs (e.g. DLRM at batch 1)
        and is why global ABFT's separate check kernel is expensive for
        them.
    tensor_core_efficiency:
        Fraction of peak Tensor-Core FLOPs/s a well-tuned CUTLASS kernel
        sustains.  The paper observes CUTLASS reaching the best published
        T4 numbers (~85% of peak) at M=N=K=2048.
    alu_efficiency:
        Same for the CUDA-core (FP16x2 "HADD2/HFMA2") pipe.
    memory_efficiency:
        Fraction of peak DRAM bandwidth sustained by a streaming GEMM at
        full occupancy.
    issue_efficiency:
        Fraction of peak warp-instruction issue slots usable by dense
        math kernels.
    alu_ops_per_kstep_base:
        Baseline CUDA-core work (fp16-lane operations) a thread performs
        per K-step of the GEMM mainloop *in addition to* Tensor-Core
        math: address arithmetic, predicate updates, loop bookkeeping,
        and its share of load/store instruction overhead.  Expressed per
        loaded fragment element (the thread loads ``Mt*2 + 2*Nt``
        fp16 elements per K-step); the paper's §5.2.2 argument that
        "traditional arithmetic units are likely not as underutilized"
        is this term.
    issue_slots_per_mma:
        Issue-slot cost of one warp-wide MMA instruction, measured in
        the same units as one CUDA-core instruction slot (Tensor-Core
        ops occupy the single warp scheduler port while issuing).
    mem_latency_occupancy_knee:
        Occupancy (fraction of max resident warps per SM) below which
        the achievable memory bandwidth degrades linearly.  DRAM latency
        hiding needs enough warps in flight; traditional thread-level
        replication's register doubling trips this knee (paper §4).
    check_kernel_overlap:
        Fraction of the global-ABFT check kernel (paper step 5) hidden
        by overlap with the next layer.  The paper notes step 5 "can
        take place in parallel with the next layer" but still reports
        measurable overhead for launch-bound layers; the calibrated
        value reproduces the reported ~21% global-ABFT overhead on the
        batch-1 DLRM MLPs, whose layers are pure launch overhead.
    global_epilogue_c_traffic:
        Effective extra DRAM round-trips of the output tile incurred by
        global ABFT's fused epilogue, as a fraction of the C-matrix
        bytes.  The fused output summation and next-layer activation
        checksum are cross-threadblock reductions: blocks store partial
        checksums to global memory (atomics/partial vectors) that the
        check kernel re-reads, and the widened epilogue lowers store
        efficiency.  Hari et al.'s measured overheads on
        bandwidth-bound layers (and this paper's Figs. 9-11 global
        bars, e.g. 17% on Coral) are of exactly this C-proportional
        magnitude; pure launch overhead cannot explain them.
    thread_abft_fixed_fraction:
        Small fixed per-kernel relative cost of thread-level ABFT that
        does not scale with the mainloop: the final per-thread reduction
        of output registers and the checksum-compare epilogue.  The
        paper's thread-level ABFT floors at a few percent even on
        fully bandwidth-bound layers (Figs. 9-11).
    epilogue_alu_per_output:
        CUDA-core ops per output element added by a fused epilogue pass
        (e.g. global ABFT's fused output summation, or fused next-layer
        activation checksum generation): one add plus its share of
        address math, on fp16x2 lanes.
    fp16_bytes:
        Bytes per element for FP16 operands (the paper evaluates FP16).
    """

    launch_overhead_s: float = 3.0e-6
    tensor_core_efficiency: float = 0.85
    alu_efficiency: float = 0.75
    memory_efficiency: float = 0.72
    issue_efficiency: float = 0.80
    alu_ops_per_kstep_base: float = 1.9
    issue_slots_per_mma: float = 1.0
    mem_latency_occupancy_knee: float = 0.25
    check_kernel_overlap: float = 0.6
    global_epilogue_c_traffic: float = 0.4
    thread_abft_fixed_fraction: float = 0.055
    epilogue_alu_per_output: float = 2.0
    fp16_bytes: int = 2

    def __post_init__(self) -> None:
        for name in (
            "tensor_core_efficiency",
            "alu_efficiency",
            "memory_efficiency",
            "issue_efficiency",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value!r}")
        if self.launch_overhead_s < 0:
            raise ConfigurationError("launch_overhead_s must be non-negative")
        if not 0.0 <= self.check_kernel_overlap <= 1.0:
            raise ConfigurationError("check_kernel_overlap must be in [0, 1]")
        if not 0.0 <= self.mem_latency_occupancy_knee <= 1.0:
            raise ConfigurationError("mem_latency_occupancy_knee must be in [0, 1]")
        if self.alu_ops_per_kstep_base < 0:
            raise ConfigurationError("alu_ops_per_kstep_base must be non-negative")
        if self.thread_abft_fixed_fraction < 0:
            raise ConfigurationError("thread_abft_fixed_fraction must be non-negative")
        if self.global_epilogue_c_traffic < 0:
            raise ConfigurationError("global_epilogue_c_traffic must be non-negative")
        if self.fp16_bytes <= 0:
            raise ConfigurationError("fp16_bytes must be positive")

    def with_overrides(self, **kwargs: Any) -> "ModelConstants":
        """Return a copy with the given attributes replaced (validated)."""
        return replace(self, **kwargs)


DEFAULT_CONSTANTS = ModelConstants()

#: Latency-model constants for the INT8 quantized pipeline.  Operands
#: are one byte wide, which doubles every GEMM's arithmetic intensity
#: at fixed shape; ``fp16_bytes`` names the operand width throughout
#: the cost model, so only its value changes.
INT8_CONSTANTS = DEFAULT_CONSTANTS.with_overrides(fp16_bytes=1)


@dataclass(frozen=True)
class DetectionConstants:
    """Numerical-tolerance policy for ABFT equality checks.

    Checksum dot products and output summations accumulate the same
    values in different orders, so in floating point they differ by
    rounding noise that must not be flagged as a fault.  Products of
    FP16 operands are exact in FP32, and both sides of every comparison
    accumulate in FP32 (checksum accumulators live in FP32 registers,
    as in Hari et al.), so the noise is FP32 accumulation error.  GPU
    reductions — and NumPy's summation in the numeric executor — are
    tree-structured, whose forward error grows like ``log2(n)`` rather
    than ``n``:

        |computed - exact| <= slack * (log2(n) + 1) * u32 * sum(|terms|)

    ``rtol_slack`` covers the gap between the two sides' different
    reduction shapes.  The resulting sensitivity hierarchy is physical:
    a global scalar check (whose magnitude term spans the entire output)
    is less sensitive to small corruptions than thread-level per-tile
    checks — one more, numerical, argument for thread-level ABFT.
    """

    fp32_unit_roundoff: float = 2.0 ** -24
    fp16_unit_roundoff: float = 2.0 ** -11
    rtol_slack: float = 24.0
    atol_floor: float = 1.0e-5

    def tolerance(self, n_terms: int, magnitude: float) -> float:
        """Detection threshold for one checksum comparison.

        Parameters
        ----------
        n_terms:
            Number of floating-point accumulations feeding the larger of
            the two compared quantities (e.g. ``K`` for a dot-product
            check, ``M*N`` for a full output summation).
        magnitude:
            An upper proxy for ``sum(|terms|)`` — callers pass the sum of
            absolute values actually accumulated.
        """
        n = max(int(n_terms), 2)
        gamma = (math.log2(n) + 1.0) * self.fp32_unit_roundoff
        return max(self.atol_floor, self.rtol_slack * gamma * abs(magnitude))


DEFAULT_DETECTION = DetectionConstants()

#: Detection policy for the INT8 quantized pipeline.  Quantized GEMMs
#: accumulate exactly (INT8 products in INT32, checksum reductions in
#: float64 where every reachable value is an exact integer), so there is
#: no rounding noise to budget for: the roundoff terms vanish and the
#: tolerance collapses to the half-ULP floor 0.5 — any fault that moves
#: an integer sum by one or more counts is detected, and a clean check
#: never alarms.
INT8_DETECTION = DetectionConstants(
    fp32_unit_roundoff=0.0,
    fp16_unit_roundoff=0.0,
    rtol_slack=0.0,
    atol_floor=0.5,
)
