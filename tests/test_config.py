"""Tests for model constants and detection constants."""

import pytest

from repro.config import (
    DEFAULT_CONSTANTS,
    DEFAULT_DETECTION,
    DetectionConstants,
    ModelConstants,
)
from repro.errors import ConfigurationError


class TestModelConstants:
    def test_defaults_valid(self):
        assert 0 < DEFAULT_CONSTANTS.tensor_core_efficiency <= 1

    def test_with_overrides_returns_new_validated_copy(self):
        c = DEFAULT_CONSTANTS.with_overrides(launch_overhead_s=5e-6)
        assert c.launch_overhead_s == 5e-6
        assert DEFAULT_CONSTANTS.launch_overhead_s != 5e-6
        assert c.tensor_core_efficiency == DEFAULT_CONSTANTS.tensor_core_efficiency

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tensor_core_efficiency", 0.0),
            ("tensor_core_efficiency", 1.5),
            ("memory_efficiency", -0.1),
            ("launch_overhead_s", -1e-6),
            ("check_kernel_overlap", 1.2),
            ("mem_latency_occupancy_knee", -0.5),
            ("alu_ops_per_kstep_base", -1.0),
            ("thread_abft_fixed_fraction", -0.01),
            ("global_epilogue_c_traffic", -0.1),
            ("fp16_bytes", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ModelConstants(**{field: value})

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONSTANTS.launch_overhead_s = 0.0  # type: ignore[misc]


class TestDetectionConstants:
    def test_tolerance_positive(self):
        assert DEFAULT_DETECTION.tolerance(100, 10.0) > 0

    def test_tolerance_floor_for_zero_magnitude(self):
        assert DEFAULT_DETECTION.tolerance(100, 0.0) == DEFAULT_DETECTION.atol_floor

    def test_tolerance_scales_linearly_with_magnitude(self):
        t1 = DEFAULT_DETECTION.tolerance(1024, 1e3)
        t2 = DEFAULT_DETECTION.tolerance(1024, 2e3)
        assert t2 == pytest.approx(2 * t1)

    def test_tolerance_handles_tiny_n(self):
        # n is clamped to >= 2 so log2 never degenerates.
        assert DetectionConstants().tolerance(0, 1.0) > 0

    def test_slack_scales_threshold(self):
        tight = DetectionConstants(rtol_slack=1.0)
        loose = DetectionConstants(rtol_slack=100.0)
        assert loose.tolerance(64, 1e4) == pytest.approx(
            100 * tight.tolerance(64, 1e4)
        )
