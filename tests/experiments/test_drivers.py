"""Tests for the experiment drivers (each regenerates one paper artifact)."""

from repro.experiments import (
    ablation_check_overlap,
    ablation_device_sweep,
    ablation_thread_tile,
    fault_coverage_experiment,
    multi_fault_coverage_experiment,
    sdc_propagation_experiment,
    fig04_aggregate_intensity,
    fig05_resnet_layer_intensity,
    fig08_all_models,
    fig10_dlrm,
    fig11_specialized,
    fig12_square_sweep,
    sec33_cmr_table,
    table1_op_counts,
)
from repro.experiments.fig05_layers import fig05_summary
from repro.experiments.fig09_cnns import resolution_effect_summary
from repro.experiments.runner import EXPERIMENTS, run_all


class TestFig04:
    def test_eight_rows(self):
        table = fig04_aggregate_intensity()
        assert len(table) == 8

    def test_measured_column_matches_paper_column(self):
        out = fig04_aggregate_intensity().render()
        # Each model's measured and paper values render to the same
        # leading digits (e.g. "122" appears twice per row).
        assert "71.1" in out and "220.8" in out

    def test_custom_resolution(self):
        table = fig04_aggregate_intensity(h=224, w=224)
        assert "224x224" in table.render()


class TestFig05:
    def test_layer_count(self):
        assert len(fig05_resnet_layer_intensity()) == 54

    def test_summary_range(self):
        s = fig05_summary()
        assert s["min"] < 2 and s["max"] > 500


class TestSec33AndTable1:
    def test_cmr_rows(self):
        assert len(sec33_cmr_table()) == 5

    def test_table1_rows_and_exact_mmas(self):
        table = table1_op_counts()
        assert len(table) == 3
        out = table.render()
        assert "One-sided" in out and "Two-sided" in out and "Rep." in out


class TestOverheadFigures:
    def test_fig08_has_all_fourteen_models(self):
        assert len(fig08_all_models()) == 14

    def test_fig10_has_four_rows(self):
        assert len(fig10_dlrm()) == 4

    def test_fig11_has_four_rows(self):
        assert len(fig11_specialized()) == 4

    def test_fig12_has_seven_sizes(self):
        table = fig12_square_sweep()
        assert len(table) == 7

    def test_fig12_boundedness_column(self):
        out = fig12_square_sweep().render()
        assert "bandwidth" in out and "compute" in out

    def test_resolution_effect_direction(self):
        s = resolution_effect_summary()
        assert s["224"] > s["hd"]


class TestFaultCoverage:
    def test_all_protecting_schemes_present(self):
        table = fault_coverage_experiment(trials=10)
        assert len(table) == 5  # five protecting schemes


class TestMultiFaultCoverage:
    def test_rows_and_guarantee(self):
        """One row per (variant, fault count); the experiment itself
        raises if the <=r guarantee or the one-GEMM-per-variant
        prepared-cache amortization fails."""
        table = multi_fault_coverage_experiment(
            trials=8, max_faults=3, checksum_counts=(1, 2)
        )
        # global baseline + global_multi at r=1 and r=2, 3 counts each.
        assert len(table) == 3 * 3
        out = table.render()
        assert "global_multi:2" in out and "benign alarms" in out


class TestSdcPropagation:
    def test_crosstab_for_three_models(self):
        """One row per (model, depth layer, scheme, fault count) over
        >=3 runnable zoo models; the driver itself asserts that every
        detected trial recovered (bit-identical to clean) under the
        transient policy and that residual SDC is exactly the
        undetected kind."""
        table = sdc_propagation_experiment(trials=6)
        rows = table._rows
        models = {row[0] for row in rows}
        assert models == {"mlp_bottom", "mlp_top", "coral"}
        # 3 depth layers x 2 schemes x 2 fault counts per model.
        assert len(rows) == len(models) * 3 * 2 * 2
        out = table.render()
        assert "bit-identical to clean" in out


class TestAblations:
    def test_overlap_monotone(self):
        table = ablation_check_overlap(fractions=(0.0, 0.9))
        assert len(table) == 2

    def test_thread_tile_rows(self):
        assert len(ablation_thread_tile()) == 4

    def test_device_sweep_rows(self):
        assert len(ablation_device_sweep(model_name="mlp_bottom")) == 5


class TestRunner:
    def test_registry_covers_all_artifacts(self):
        expected = {
            "fig04", "fig05", "sec33", "table1", "fig08", "fig09_hd",
            "fig09_224", "fig10", "fig11", "fig12", "fault_coverage",
            "multi_fault_coverage", "ablation_overlap", "ablation_tile",
            "ablation_devices", "sec72_agreement", "sdc_propagation",
            "transformer_abft",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_all_with_skip(self):
        # Run only the cheap artifacts to keep the test fast.
        skip = tuple(
            name for name in EXPERIMENTS
            if name not in ("sec33", "table1", "ablation_tile")
        )
        tables = run_all(skip=skip)
        assert set(tables) == {"sec33", "table1", "ablation_tile"}
        for table in tables.values():
            assert len(table) > 0
