"""Every docstring example in the public API must execute.

The README points users at the docstrings of ``repro.deploy``,
:class:`~repro.api.ProtectedSession`, and the campaign classes; their
``Examples`` sections are executed here as doctests so a drifting API
breaks the build instead of the documentation.  Modules listed in
``EXAMPLED`` are additionally required to *have* at least one example —
deleting the docs is as much a failure as breaking them.
"""

import doctest

import pytest

import repro
import repro.api
import repro.api.session
import repro.faults.campaign
import repro.faults.propagation
import repro.faults.recovery
import repro.utils.tables

#: Modules whose docstring examples are part of the public contract.
EXAMPLED = [
    repro.api.session,
    repro.faults.campaign,
    repro.faults.propagation,
    repro.faults.recovery,
]

#: Modules checked only if they carry examples.
COLLECTED = EXAMPLED + [repro, repro.api, repro.utils.tables]


@pytest.mark.parametrize("module", COLLECTED, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, (
        f"{result.failed} doctest(s) failed in {module.__name__}"
    )


@pytest.mark.parametrize("module", EXAMPLED, ids=lambda m: m.__name__)
def test_public_api_module_has_examples(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, (
        f"{module.__name__} lost its runnable docstring examples"
    )
