"""``repro.__all__`` is the supported surface, and its docs must run.

The package's ``__all__`` is the contract: every name in it must
resolve, every module defining one of those names has its docstring
examples executed as doctests, and the workflow entry points users are
pointed at (deployment, campaigns, recovery, the fleet layer) are
required to *carry* at least one runnable example — deleting the docs
is as much a failure as breaking them.
"""

import doctest
import inspect

import pytest

import repro

#: Names in ``repro.__all__`` whose objects must carry at least one
#: runnable docstring example (the workflow entry points the README
#: and DESIGN.md send users to).
MUST_HAVE_EXAMPLES = [
    "deploy",
    "deploy_fleet",
    "ProtectedSession",
    "FaultCampaign",
    "PropagationCampaign",
    "RecoveryPolicy",
    "PreparedCache",
    "PlanRegistry",
    "CampaignOptions",
    "SessionServer",
]


def _surface_modules() -> list:
    """Every module defining a name exported by ``repro.__all__``."""
    modules = {repro.__name__: repro}
    for name in repro.__all__:
        if name == "__version__":
            continue
        module = inspect.getmodule(getattr(repro, name))
        if module is not None:
            modules[module.__name__] = module
    return [modules[name] for name in sorted(modules)]


SURFACE_MODULES = _surface_modules()


def test_supported_surface_resolves():
    """Every ``__all__`` name is importable — no phantom exports."""
    for name in repro.__all__:
        assert hasattr(repro, name), (
            f"repro.__all__ exports {name!r} but the package does not "
            f"define it"
        )


def test_must_have_examples_is_part_of_the_surface():
    missing = [n for n in MUST_HAVE_EXAMPLES if n not in repro.__all__]
    assert not missing, (
        f"MUST_HAVE_EXAMPLES names {missing} are not in repro.__all__; "
        f"the example contract only covers the supported surface"
    )


@pytest.mark.parametrize("module", SURFACE_MODULES, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, (
        f"{result.failed} doctest(s) failed in {module.__name__}"
    )


@pytest.mark.parametrize("name", MUST_HAVE_EXAMPLES)
def test_public_entry_point_has_examples(name):
    obj = getattr(repro, name)
    finder = doctest.DocTestFinder(recurse=True)
    tests = [t for t in finder.find(obj, name=name) if t.examples]
    assert tests, (
        f"repro.{name} lost its runnable docstring examples; the "
        f"supported surface documents itself"
    )
