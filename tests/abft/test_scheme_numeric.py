"""Numeric execution tests: every scheme computes correctly and detects faults."""

import numpy as np
import pytest

from repro.abft import get_scheme, list_schemes
from repro.faults import FaultKind, FaultPath, FaultSpec
from repro.gemm import reference_gemm

PROTECTING = [n for n in list_schemes() if n != "none"]


class TestCleanExecution:
    @pytest.mark.parametrize("name", list_schemes())
    def test_output_matches_reference(self, name, small_operands):
        a, b = small_operands
        outcome = get_scheme(name).execute(a, b)
        ref = reference_gemm(a, b)
        np.testing.assert_allclose(
            outcome.c.astype(np.float32), ref, rtol=5e-3, atol=5e-3
        )

    @pytest.mark.parametrize("name", PROTECTING)
    def test_no_false_positive_on_clean_data(self, name, small_operands):
        a, b = small_operands
        outcome = get_scheme(name).execute(a, b)
        assert not outcome.detected

    def test_unprotected_scheme_has_no_verdict(self, small_operands):
        a, b = small_operands
        outcome = get_scheme("none").execute(a, b)
        assert outcome.verdict is None
        assert not outcome.detected

    @pytest.mark.parametrize("name", PROTECTING)
    def test_no_false_positive_on_adversarial_magnitudes(self, name, rng):
        # Mixed huge/tiny magnitudes stress the tolerance model.
        a = (rng.standard_normal((64, 96)) * rng.choice([1e-2, 1.0, 8.0], (64, 96))).astype(np.float16)
        b = (rng.standard_normal((96, 40)) * rng.choice([1e-2, 1.0, 8.0], (96, 40))).astype(np.float16)
        assert not get_scheme(name).execute(a, b).detected


class TestFaultDetection:
    @pytest.mark.parametrize("name", PROTECTING)
    def test_detects_large_additive_fault(self, name, small_operands):
        a, b = small_operands
        fault = FaultSpec(row=3, col=5, kind=FaultKind.ADD, value=25.0)
        outcome = get_scheme(name).execute(a, b, faults=[fault])
        assert outcome.detected

    @pytest.mark.parametrize("name", PROTECTING)
    def test_detects_exponent_bitflip(self, name, small_operands):
        a, b = small_operands
        # Bit 27 of FP32 is a high exponent bit: catastrophic change.
        fault = FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP32, bit=27)
        outcome = get_scheme(name).execute(a, b, faults=[fault])
        assert outcome.detected

    @pytest.mark.parametrize("name", PROTECTING)
    def test_detects_checksum_path_fault(self, name, small_operands):
        """Faults striking the redundant computation itself also raise
        the alarm (benign false alarm, not silent corruption)."""
        a, b = small_operands
        fault = FaultSpec(
            row=2, col=2, kind=FaultKind.ADD, value=25.0, path=FaultPath.CHECKSUM
        )
        outcome = get_scheme(name).execute(a, b, faults=[fault])
        assert outcome.detected

    @pytest.mark.parametrize("name", PROTECTING)
    def test_checksum_path_fault_leaves_output_clean(self, name, small_operands):
        a, b = small_operands
        fault = FaultSpec(
            row=2, col=2, kind=FaultKind.ADD, value=25.0, path=FaultPath.CHECKSUM
        )
        outcome = get_scheme(name).execute(a, b, faults=[fault])
        ref = reference_gemm(a, b)
        np.testing.assert_allclose(
            outcome.c.astype(np.float32), ref, rtol=5e-3, atol=5e-3
        )

    def test_unprotected_scheme_misses_everything(self, small_operands):
        a, b = small_operands
        fault = FaultSpec(row=0, col=0, kind=FaultKind.SET, value=1e4)
        outcome = get_scheme("none").execute(a, b, faults=[fault])
        assert not outcome.detected
        assert outcome.c[0, 0] == np.float16(1e4)


class TestLocalization:
    def test_one_sided_localizes_to_row_and_tile(self, small_operands, small_tile):
        a, b = small_operands
        fault = FaultSpec(row=9, col=13, kind=FaultKind.ADD, value=40.0)
        outcome = get_scheme("thread_onesided").execute(
            a, b, tile=small_tile, faults=[fault]
        )
        assert outcome.detected
        # One violated check: flat index = row * n_tiles + tile_col.
        n_tiles = outcome.verdict.checks // (outcome.c_accumulator.shape[0])
        assert len(outcome.verdict.violations) == 1
        flat = outcome.verdict.violations[0]
        assert flat // n_tiles == 9
        assert flat % n_tiles == 13 // small_tile.nt

    def test_traditional_replication_localizes_exactly(self, small_operands):
        a, b = small_operands
        fault = FaultSpec(row=9, col=13, kind=FaultKind.ADD, value=40.0)
        outcome = get_scheme("replication_traditional").execute(a, b, faults=[fault])
        cols = outcome.c_accumulator.shape[1]
        assert outcome.verdict.violations == (9 * cols + 13,)


class TestMultipleFaults:
    @pytest.mark.parametrize("name", ["thread_onesided", "thread_twosided"])
    def test_thread_schemes_catch_faults_in_distinct_tiles(
        self, name, small_operands
    ):
        a, b = small_operands
        faults = [
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=30.0),
            FaultSpec(row=40, col=40, kind=FaultKind.ADD, value=30.0),
        ]
        outcome = get_scheme(name).execute(a, b, faults=faults)
        assert outcome.detected
        assert len(outcome.verdict.violations) == 2

    def test_global_scalar_check_can_be_cancelled(self, small_operands):
        """The known blind spot of a single-checksum scheme: two faults
        of equal magnitude and opposite sign cancel in the output
        summation (motivates multi-checksum ABFT, paper §2.4)."""
        a, b = small_operands
        faults = [
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=30.0),
            FaultSpec(row=40, col=40, kind=FaultKind.ADD, value=-30.0),
        ]
        outcome = get_scheme("global").execute(a, b, faults=faults)
        assert not outcome.detected  # exact cancellation escapes
