"""Tests for checksum mathematics (paper Figs. 1, 6, 7)."""

import numpy as np
import pytest

from repro.abft.checksums import (
    global_checksums,
    one_sided_checksums,
    one_sided_output_rowsums,
    output_summation,
    thread_tile_sums,
    two_sided_checksums,
    vandermonde_weights,
)
from repro.errors import ShapeError
from repro.gemm import GemmProblem, TiledGemm


@pytest.fixture
def setup(small_operands, small_tile):
    a, b = small_operands
    p = GemmProblem(a.shape[0], b.shape[1], a.shape[1])
    ex = TiledGemm(p, small_tile)
    a_pad, b_pad = ex.pad_a(a), ex.pad_b(b)
    c = ex.multiply(a_pad, b_pad)
    return ex, a_pad, b_pad, c


class TestFig1ToyExample:
    def test_two_by_two_identity(self):
        # The paper's Fig. 1: (a00+a10)(b00+b01) + (a01+a11)(b10+b11)
        # equals the sum of all entries of C.
        a = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float16)
        b = np.array([[5.0, 6.0], [7.0, 8.0]], dtype=np.float16)
        chks = global_checksums(a, b)
        c = a.astype(np.float32) @ b.astype(np.float32)
        assert chks.reference == pytest.approx(c.sum())
        # Explicit expansion from the figure:
        assert chks.reference == pytest.approx((1 + 3) * (5 + 6) + (2 + 4) * (7 + 8))


class TestGlobalChecksums:
    def test_invariant_holds_on_clean_data(self, setup):
        ex, a_pad, b_pad, c = setup
        chks = global_checksums(a_pad, b_pad)
        assert chks.reference == pytest.approx(output_summation(c), rel=1e-5)

    def test_checksum_vector_shapes(self, setup):
        ex, a_pad, b_pad, _ = setup
        chks = global_checksums(a_pad, b_pad)
        assert chks.activation_checksum.shape == (ex.k_full,)
        assert chks.weight_checksum.shape == (ex.k_full,)

    def test_magnitude_bounds_reference(self, setup):
        ex, a_pad, b_pad, _ = setup
        chks = global_checksums(a_pad, b_pad)
        assert chks.magnitude >= abs(chks.reference)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            global_checksums(np.zeros((4, 3)), np.zeros((4, 3)))


class TestOneSided:
    def test_invariant_holds_per_row_and_tile(self, setup):
        ex, a_pad, b_pad, c = setup
        chks = one_sided_checksums(ex, a_pad, b_pad)
        rowsums = one_sided_output_rowsums(ex, c)
        np.testing.assert_allclose(chks.reference, rowsums, rtol=1e-4, atol=1e-3)

    def test_shapes(self, setup):
        ex, a_pad, b_pad, c = setup
        chks = one_sided_checksums(ex, a_pad, b_pad)
        assert chks.weight_checksums.shape == (ex.k_full, ex.n_tiles)
        assert chks.reference.shape == (ex.m_full, ex.n_tiles)
        assert one_sided_output_rowsums(ex, c).shape == (ex.m_full, ex.n_tiles)

    def test_detects_single_element_corruption_in_right_tile(self, setup):
        ex, a_pad, b_pad, c = setup
        chks = one_sided_checksums(ex, a_pad, b_pad)
        c_bad = c.copy()
        c_bad[5, 9] += 50.0
        rowsums = one_sided_output_rowsums(ex, c_bad)
        diff = np.abs(chks.reference - rowsums)
        # Exactly one (row, tile-column) check is violated.
        hits = np.argwhere(diff > 1.0)
        assert hits.shape == (1, 2)
        assert tuple(hits[0]) == (5, 9 // ex.tile.nt)


class TestTwoSided:
    def test_invariant_holds_per_tile(self, setup):
        ex, a_pad, b_pad, c = setup
        chks = two_sided_checksums(ex, a_pad, b_pad)
        np.testing.assert_allclose(
            chks.reference, thread_tile_sums(ex, c), rtol=1e-4, atol=1e-3
        )

    def test_shapes(self, setup):
        ex, a_pad, b_pad, c = setup
        chks = two_sided_checksums(ex, a_pad, b_pad)
        assert chks.reference.shape == (ex.m_tiles, ex.n_tiles)
        assert thread_tile_sums(ex, c).shape == (ex.m_tiles, ex.n_tiles)

    def test_corruption_localized_to_tile(self, setup):
        ex, a_pad, b_pad, c = setup
        chks = two_sided_checksums(ex, a_pad, b_pad)
        c_bad = c.copy()
        c_bad[7, 3] += 50.0
        diff = np.abs(chks.reference - thread_tile_sums(ex, c_bad))
        hits = np.argwhere(diff > 1.0)
        assert hits.shape == (1, 2)
        assert tuple(hits[0]) == (7 // ex.tile.mt, 3 // ex.tile.nt)


class TestVandermondeWeights:
    def test_shape_and_range(self):
        w = vandermonde_weights(16, 3)
        assert w.shape == (3, 16)
        assert np.all(np.abs(w) <= 1.0)
        assert np.all(w > 0)

    def test_rows_linearly_independent(self):
        w = vandermonde_weights(16, 4).astype(np.float64)
        assert np.linalg.matrix_rank(w) == 4

    def test_rejects_bad_args(self):
        with pytest.raises(ShapeError):
            vandermonde_weights(0, 2)
