"""Prepared-execution engine tests.

The contract: for every scheme, ``prepare(a, b).inject(faults)`` must be
*bit-identical* to ``execute(a, b, faults=...)`` — same ``c``, same
``c_accumulator``, same verdict — across clean runs, original-path
faults, and checksum-path faults.  And the amortization must be real:
prepared state is built once, injections never re-run the clean GEMM or
the operand-side reductions.
"""

import numpy as np
import pytest

from repro.abft import (
    MultiChecksumGlobalABFT,
    PreparedCache,
    get_scheme,
    list_schemes,
)
from repro.errors import ConfigurationError, FaultInjectionError, ShapeError
from repro.faults import (
    CampaignOptions,
    FaultCampaign,
    FaultKind,
    FaultPath,
    FaultSpec,
)
from repro.gemm import EXECUTION_STATS, TileConfig

ALL_SCHEMES = list_schemes() + ["global_multi"]

FAULT_CASES = {
    "clean": (),
    "original_add": (FaultSpec(row=3, col=5, kind=FaultKind.ADD, value=25.0),),
    "original_bitflip": (
        FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP32, bit=27),
    ),
    "checksum_add": (
        FaultSpec(row=2, col=2, kind=FaultKind.ADD, value=25.0,
                  path=FaultPath.CHECKSUM),
    ),
    "mixed": (
        FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=30.0),
        FaultSpec(row=4, col=7, kind=FaultKind.ADD, value=-12.0,
                  path=FaultPath.CHECKSUM),
    ),
}


def make_scheme(name):
    if name == "global_multi":
        return MultiChecksumGlobalABFT(num_checksums=2)
    return get_scheme(name)


def assert_outcomes_identical(direct, prepared):
    assert direct.scheme == prepared.scheme
    assert np.array_equal(direct.c, prepared.c, equal_nan=True)
    assert np.array_equal(
        direct.c_accumulator, prepared.c_accumulator, equal_nan=True
    )
    assert direct.verdict == prepared.verdict
    assert direct.injected == prepared.injected


class TestPreparedVsDirect:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize("case", sorted(FAULT_CASES))
    def test_inject_bit_identical_to_execute(self, name, case, small_operands):
        a, b = small_operands
        faults = FAULT_CASES[case]
        scheme = make_scheme(name)
        direct = scheme.execute(a, b, faults=faults)
        via_prepare = make_scheme(name).prepare(a, b).inject(faults)
        assert_outcomes_identical(direct, via_prepare)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_repeated_injections_are_independent(self, name, small_operands):
        """A faulted trial must not leak into a later clean trial."""
        a, b = small_operands
        scheme = make_scheme(name)
        prepared = scheme.prepare(a, b)
        clean_before = prepared.inject()
        prepared.inject(FAULT_CASES["original_bitflip"])
        prepared.inject(FAULT_CASES["mixed"])
        clean_after = prepared.inject()
        assert_outcomes_identical(clean_before, clean_after)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_explicit_tile_respected(self, name, small_operands, small_tile):
        a, b = small_operands
        scheme = make_scheme(name)
        direct = scheme.execute(a, b, tile=small_tile,
                                faults=FAULT_CASES["original_add"])
        prepared = scheme.prepare(a, b, tile=small_tile)
        assert prepared.tile == small_tile
        assert_outcomes_identical(
            direct, prepared.inject(FAULT_CASES["original_add"])
        )


class TestInjectBatch:
    """The batched engine: one inject_batch call == N sequential injects."""

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_batch_matches_sequential(self, name, small_operands):
        a, b = small_operands
        prepared = make_scheme(name).prepare(a, b)
        trials = [FAULT_CASES[case] for case in sorted(FAULT_CASES)]
        batch = prepared.inject_batch(trials)
        for faults, outcome in zip(trials, batch):
            assert_outcomes_identical(prepared.inject(faults), outcome)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_batch_keeps_fault_invariant_work_amortized(self, name, small_operands):
        a, b = small_operands
        prepared = make_scheme(name).prepare(a, b)
        EXECUTION_STATS.reset()
        prepared.inject_batch([FAULT_CASES["original_add"]] * 20)
        assert EXECUTION_STATS.snapshot() == (0, 0, 0)

    def test_empty_batch(self, small_operands):
        a, b = small_operands
        assert get_scheme("global").prepare(a, b).inject_batch([]) == []

    def test_trials_are_independent(self, small_operands):
        """A fault in trial i must not leak into trial j's accumulator."""
        a, b = small_operands
        prepared = get_scheme("global").prepare(a, b)
        clean, faulty, clean_again = prepared.inject_batch(
            [(), FAULT_CASES["original_bitflip"], ()]
        )
        assert_outcomes_identical(clean, clean_again)
        assert not clean.detected
        assert faulty.detected

    def test_multiple_faults_per_trial_apply_in_order(self, small_operands):
        """SET-then-ADD differs from ADD-then-SET; the batched rounds
        must preserve each trial's sequential application order."""
        a, b = small_operands
        prepared = get_scheme("global").prepare(a, b)
        set_spec = FaultSpec(row=0, col=0, kind=FaultKind.SET, value=7.0)
        add_spec = FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0)
        set_then_add, add_then_set = prepared.inject_batch(
            [(set_spec, add_spec), (add_spec, set_spec)]
        )
        assert float(set_then_add.c_accumulator[0, 0]) == 107.0
        assert float(add_then_set.c_accumulator[0, 0]) == 7.0
        for faults in [(set_spec, add_spec), (add_spec, set_spec)]:
            sequential = prepared.inject(faults)
            batched = prepared.inject_batch([faults])[0]
            assert_outcomes_identical(sequential, batched)

    def test_out_of_bounds_site_rejected(self, small_operands):
        a, b = small_operands
        prepared = get_scheme("global").prepare(a, b)
        rows, _ = prepared.c_clean.shape
        with pytest.raises(FaultInjectionError):
            prepared.inject_batch(
                [(FaultSpec(row=rows + 5, col=0, kind=FaultKind.ADD, value=1.0),)]
            )


class TestPreparedWeights:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize("case", ["clean", "original_add", "checksum_add"])
    def test_cached_weights_bit_identical(self, name, case, small_operands):
        a, b = small_operands
        faults = FAULT_CASES[case]
        scheme = make_scheme(name)
        direct = scheme.execute(a, b, faults=faults)
        weights = scheme.prepare_weights(b, m=a.shape[0])
        cached = scheme.execute(a, b, faults=faults, weights=weights)
        assert_outcomes_identical(direct, cached)

    def test_weights_skip_weight_side_reductions(self, small_operands):
        a, b = small_operands
        scheme = get_scheme("global")
        weights = scheme.prepare_weights(b, m=a.shape[0])
        EXECUTION_STATS.reset()
        scheme.execute(a, b, weights=weights)
        assert EXECUTION_STATS.weight_reductions == 0
        assert EXECUTION_STATS.activation_reductions == 1
        assert EXECUTION_STATS.gemms == 1

    def test_scheme_mismatch_rejected(self, small_operands):
        a, b = small_operands
        weights = get_scheme("global").prepare_weights(b, m=a.shape[0])
        with pytest.raises(ConfigurationError):
            get_scheme("thread_onesided").execute(a, b, weights=weights)

    def test_weight_shape_mismatch_rejected(self, small_operands):
        a, b = small_operands
        weights = get_scheme("global").prepare_weights(b[:, :-8], m=a.shape[0])
        with pytest.raises(ShapeError):
            get_scheme("global").execute(a, b, weights=weights)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_weights_are_m_independent(self, name, small_operands, rng):
        """One weight-side entry serves a different activation row count,
        bit-identically to uncached execution at the pinned tile."""
        a, b = small_operands
        scheme = make_scheme(name)
        weights = scheme.prepare_weights(b, m=a.shape[0])
        other_a = (rng.standard_normal((a.shape[0] + 24, a.shape[1])) * 0.5).astype(
            np.float16
        )
        cached = scheme.execute(
            other_a, b, faults=FAULT_CASES["original_add"], weights=weights
        )
        direct = make_scheme(name).execute(
            other_a, b, tile=weights.tile, faults=FAULT_CASES["original_add"]
        )
        assert_outcomes_identical(direct, cached)

    def test_weights_need_m_or_tile(self, small_operands):
        _, b = small_operands
        with pytest.raises(ConfigurationError):
            get_scheme("global").prepare_weights(b)

    def test_weights_from_explicit_tile_need_no_m(self, small_operands, small_tile):
        a, b = small_operands
        scheme = get_scheme("global")
        weights = scheme.prepare_weights(b, tile=small_tile)
        direct = scheme.execute(a, b, tile=small_tile)
        cached = scheme.execute(a, b, weights=weights)
        assert_outcomes_identical(direct, cached)

    def test_multi_checksum_count_mismatch_rejected(self, small_operands):
        a, b = small_operands
        weights = MultiChecksumGlobalABFT(2).prepare_weights(b, m=a.shape[0])
        with pytest.raises(ConfigurationError):
            MultiChecksumGlobalABFT(4).execute(a, b, weights=weights)
        with pytest.raises(ConfigurationError):
            MultiChecksumGlobalABFT(1).execute(a, b, weights=weights)

    def test_tile_override_mismatch_rejected(self, small_operands):
        a, b = small_operands
        scheme = get_scheme("global")
        weights = scheme.prepare_weights(b, m=a.shape[0])
        other = TileConfig(mb=64, nb=32, kb=32, mw=32, nw=16, mt=4, nt=4)
        assert weights.tile != other
        with pytest.raises(ConfigurationError):
            scheme.execute(a, b, tile=other, weights=weights)


class TestAmortization:
    """The acceptance criterion: N trials, one clean GEMM, one reduction."""

    def test_prepare_once_inject_many(self, small_operands):
        a, b = small_operands
        scheme = get_scheme("thread_onesided")
        EXECUTION_STATS.reset()
        prepared = scheme.prepare(a, b)
        assert EXECUTION_STATS.snapshot() == (1, 1, 1)
        for _ in range(10):
            prepared.inject(FAULT_CASES["original_add"])
        assert EXECUTION_STATS.snapshot() == (1, 1, 1)

    @pytest.mark.parametrize("name", ["global", "thread_twosided"])
    def test_campaign_amortizes_fault_invariant_work(self, name, rng):
        a = (rng.standard_normal((48, 32)) * 0.5).astype(np.float16)
        b = (rng.standard_normal((32, 40)) * 0.5).astype(np.float16)
        EXECUTION_STATS.reset()
        campaign = FaultCampaign(get_scheme(name), a, b, seed=5)
        result = campaign.run_batch(25)
        assert result.n_trials == 25
        # One clean GEMM and one operand-checksum build for the whole
        # campaign — construction included.
        assert EXECUTION_STATS.gemms == 1
        assert EXECUTION_STATS.weight_reductions == 1
        assert EXECUTION_STATS.activation_reductions == 1


class TestPreparedCache:
    """Cross-campaign amortization: one prepared state per sweep."""

    def test_campaign_sweep_runs_one_clean_gemm(self, small_operands):
        """The acceptance criterion: >= 3 campaigns over one problem
        through a shared cache prepare exactly once."""
        a, b = small_operands
        cache = PreparedCache()
        EXECUTION_STATS.reset()
        for significance in (2.0, 4.0, 8.0):
            campaign = FaultCampaign(
                get_scheme("global"), a, b,
                significance_factor=significance,
                options=CampaignOptions(cache=cache),
            )
            result = campaign.run_batch(10)
            assert result.n_trials == 10
        assert EXECUTION_STATS.gemms == 1
        assert EXECUTION_STATS.weight_reductions == 1
        assert EXECUTION_STATS.activation_reductions == 1
        assert cache.misses == 1 and cache.hits == 2 and len(cache) == 1

    def test_cached_campaign_bit_identical_to_private_prepare(
        self, small_operands
    ):
        a, b = small_operands
        specs = [
            FaultSpec(row=0, col=0, kind=FaultKind.ADD, value=100.0),
            FaultSpec(row=2, col=2, kind=FaultKind.BITFLIP_FP32, bit=27),
        ]
        private = FaultCampaign(get_scheme("thread_onesided"), a, b).run(
            0, specs=specs
        )
        cache = PreparedCache()
        FaultCampaign(
            get_scheme("thread_onesided"), a, b,
            options=CampaignOptions(cache=cache),
        )
        cached = FaultCampaign(
            get_scheme("thread_onesided"), a, b,
            options=CampaignOptions(cache=cache),
        ).run(0, specs=specs)
        assert cache.hits == 1
        assert private.trials == cached.trials

    def test_distinct_problems_get_distinct_entries(self, small_operands, rng):
        a, b = small_operands
        other_a = (rng.standard_normal(a.shape) * 0.5).astype(np.float16)
        cache = PreparedCache()
        scheme = get_scheme("global")
        first = cache.get(scheme, a, b)
        assert cache.get(scheme, a, b) is first
        assert cache.get(scheme, other_a, b) is not first
        assert cache.get(get_scheme("thread_onesided"), a, b) is not first
        assert len(cache) == 3

    def test_multi_checksum_count_distinguishes_entries(self, small_operands):
        """global_multi's prepared state depends on r; the cache must
        not hand an r=2 state to an r=4 scheme."""
        a, b = small_operands
        cache = PreparedCache()
        two = cache.get(MultiChecksumGlobalABFT(2), a, b)
        four = cache.get(MultiChecksumGlobalABFT(4), a, b)
        assert two is not four
        # Equal r from a different instance hits.
        assert cache.get(MultiChecksumGlobalABFT(2), a, b) is two

    def test_default_tile_and_explicit_selected_tile_share_an_entry(
        self, small_operands
    ):
        """The key carries the *resolved* tile, so passing the tile
        select_tile would pick anyway deduplicates with the default."""
        a, b = small_operands
        cache = PreparedCache()
        scheme = get_scheme("global")
        implicit = cache.get(scheme, a, b)
        assert cache.get(scheme, a, b, tile=implicit.tile) is implicit
        assert len(cache) == 1

    def test_lru_eviction(self, small_operands, rng):
        a, b = small_operands
        other_a = (rng.standard_normal(a.shape) * 0.5).astype(np.float16)
        third_a = (rng.standard_normal(a.shape) * 0.5).astype(np.float16)
        cache = PreparedCache(maxsize=2)
        scheme = get_scheme("global")
        first = cache.get(scheme, a, b)
        cache.get(scheme, other_a, b)
        cache.get(scheme, a, b)  # refresh: other_a is now LRU
        cache.get(scheme, third_a, b)
        assert len(cache) == 2
        assert cache.get(scheme, a, b) is first  # survived
        with pytest.raises(ConfigurationError):
            PreparedCache(maxsize=0)

    def test_prepared_weights_resolve_to_the_plain_entry(self, small_operands):
        """get(..., weights=...) pins the weight state's tile for the
        key and skips the weight-side reductions on a miss — and the
        entry is shared with plain gets over the same operands."""
        a, b = small_operands
        cache = PreparedCache()
        scheme = get_scheme("global")
        weights = scheme.prepare_weights(b, m=a.shape[0])

        EXECUTION_STATS.reset()
        through_weights = cache.get(scheme, a, b, weights=weights)
        assert EXECUTION_STATS.weight_reductions == 0
        assert cache.get(scheme, a, b) is through_weights
        assert len(cache) == 1 and cache.hits == 1

    def test_mutated_operands_miss(self, small_operands):
        """Content digests, not identities: mutating an operand after a
        cached hit must produce a fresh entry, never stale state."""
        a, b = small_operands
        cache = PreparedCache()
        scheme = get_scheme("global")
        first = cache.get(scheme, a, b)
        a2 = a.copy()
        a2[0, 0] += np.float16(1.0)
        assert cache.get(scheme, a2, b) is not first
        assert cache.misses == 2


class TestPreparedCacheThreadSafety:
    """The lock-guarded cache under concurrent getters (DESIGN.md §3).

    Racing getters of one key must resolve to one shared entry with the
    clean GEMM run exactly once, and mixed-key storms must neither lose
    entries nor corrupt the hit/miss accounting.
    """

    def test_racing_getters_share_one_entry(self, small_operands):
        import threading

        a, b = small_operands
        cache = PreparedCache()
        scheme = get_scheme("global")
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = cache.get(scheme, a, b)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        EXECUTION_STATS.reset()
        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        first = results[0]
        assert first is not None
        assert all(r is first for r in results)
        assert len(cache) == 1
        assert cache.misses == 1 and cache.hits == n_threads - 1
        # Exactly-once: one clean GEMM across the whole stampede.
        assert EXECUTION_STATS.gemms == 1

    def test_mixed_key_storm_keeps_every_entry_distinct(self, rng):
        from concurrent.futures import ThreadPoolExecutor

        operand_sets = [
            (
                (rng.standard_normal((24, 16)) * 0.5).astype(np.float16),
                (rng.standard_normal((16, 20)) * 0.5).astype(np.float16),
            )
            for _ in range(4)
        ]
        cache = PreparedCache()
        scheme = get_scheme("thread_onesided")
        rounds = 8

        def fetch(idx):
            a, b = operand_sets[idx % len(operand_sets)]
            return idx % len(operand_sets), cache.get(scheme, a, b)

        with ThreadPoolExecutor(max_workers=8) as pool:
            fetched = list(pool.map(fetch, range(len(operand_sets) * rounds)))

        by_key = {}
        for idx, prepared in fetched:
            by_key.setdefault(idx, prepared)
            assert prepared is by_key[idx]
        assert len(by_key) == len(operand_sets)
        assert len(cache) == len(operand_sets)
        assert cache.misses == len(operand_sets)
        assert cache.hits == len(operand_sets) * (rounds - 1)
