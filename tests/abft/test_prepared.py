"""Prepared-execution engine tests.

The contract: for every scheme, ``prepare(a, b).inject(faults)`` must be
*bit-identical* to ``execute(a, b, faults=...)`` — same ``c``, same
``c_accumulator``, same verdict — across clean runs, original-path
faults, and checksum-path faults.  And the amortization must be real:
prepared state is built once, injections never re-run the clean GEMM or
the operand-side reductions.
"""

import numpy as np
import pytest

from repro.abft import MultiChecksumGlobalABFT, get_scheme, list_schemes
from repro.errors import ConfigurationError, ShapeError
from repro.faults import FaultCampaign, FaultKind, FaultPath, FaultSpec
from repro.gemm import EXECUTION_STATS, TileConfig

ALL_SCHEMES = list_schemes() + ["global_multi"]

FAULT_CASES = {
    "clean": (),
    "original_add": (FaultSpec(row=3, col=5, kind=FaultKind.ADD, value=25.0),),
    "original_bitflip": (
        FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP32, bit=27),
    ),
    "checksum_add": (
        FaultSpec(row=2, col=2, kind=FaultKind.ADD, value=25.0,
                  path=FaultPath.CHECKSUM),
    ),
    "mixed": (
        FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=30.0),
        FaultSpec(row=4, col=7, kind=FaultKind.ADD, value=-12.0,
                  path=FaultPath.CHECKSUM),
    ),
}


def make_scheme(name):
    if name == "global_multi":
        return MultiChecksumGlobalABFT(num_checksums=2)
    return get_scheme(name)


def assert_outcomes_identical(direct, prepared):
    assert direct.scheme == prepared.scheme
    assert np.array_equal(direct.c, prepared.c, equal_nan=True)
    assert np.array_equal(
        direct.c_accumulator, prepared.c_accumulator, equal_nan=True
    )
    assert direct.verdict == prepared.verdict
    assert direct.injected == prepared.injected


class TestPreparedVsDirect:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize("case", sorted(FAULT_CASES))
    def test_inject_bit_identical_to_execute(self, name, case, small_operands):
        a, b = small_operands
        faults = FAULT_CASES[case]
        scheme = make_scheme(name)
        direct = scheme.execute(a, b, faults=faults)
        via_prepare = make_scheme(name).prepare(a, b).inject(faults)
        assert_outcomes_identical(direct, via_prepare)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_repeated_injections_are_independent(self, name, small_operands):
        """A faulted trial must not leak into a later clean trial."""
        a, b = small_operands
        scheme = make_scheme(name)
        prepared = scheme.prepare(a, b)
        clean_before = prepared.inject()
        prepared.inject(FAULT_CASES["original_bitflip"])
        prepared.inject(FAULT_CASES["mixed"])
        clean_after = prepared.inject()
        assert_outcomes_identical(clean_before, clean_after)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_explicit_tile_respected(self, name, small_operands, small_tile):
        a, b = small_operands
        scheme = make_scheme(name)
        direct = scheme.execute(a, b, tile=small_tile,
                                faults=FAULT_CASES["original_add"])
        prepared = scheme.prepare(a, b, tile=small_tile)
        assert prepared.tile == small_tile
        assert_outcomes_identical(
            direct, prepared.inject(FAULT_CASES["original_add"])
        )


class TestPreparedWeights:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize("case", ["clean", "original_add", "checksum_add"])
    def test_cached_weights_bit_identical(self, name, case, small_operands):
        a, b = small_operands
        faults = FAULT_CASES[case]
        scheme = make_scheme(name)
        direct = scheme.execute(a, b, faults=faults)
        weights = scheme.prepare_weights(b, m=a.shape[0])
        cached = scheme.execute(a, b, faults=faults, weights=weights)
        assert_outcomes_identical(direct, cached)

    def test_weights_skip_weight_side_reductions(self, small_operands):
        a, b = small_operands
        scheme = get_scheme("global")
        weights = scheme.prepare_weights(b, m=a.shape[0])
        EXECUTION_STATS.reset()
        scheme.execute(a, b, weights=weights)
        assert EXECUTION_STATS.weight_reductions == 0
        assert EXECUTION_STATS.activation_reductions == 1
        assert EXECUTION_STATS.gemms == 1

    def test_scheme_mismatch_rejected(self, small_operands):
        a, b = small_operands
        weights = get_scheme("global").prepare_weights(b, m=a.shape[0])
        with pytest.raises(ConfigurationError):
            get_scheme("thread_onesided").execute(a, b, weights=weights)

    def test_shape_mismatch_rejected(self, small_operands):
        a, b = small_operands
        weights = get_scheme("global").prepare_weights(b, m=a.shape[0] + 8)
        with pytest.raises(ShapeError):
            get_scheme("global").execute(a, b, weights=weights)

    def test_multi_checksum_count_mismatch_rejected(self, small_operands):
        a, b = small_operands
        weights = MultiChecksumGlobalABFT(2).prepare_weights(b, m=a.shape[0])
        with pytest.raises(ConfigurationError):
            MultiChecksumGlobalABFT(4).execute(a, b, weights=weights)
        with pytest.raises(ConfigurationError):
            MultiChecksumGlobalABFT(1).execute(a, b, weights=weights)

    def test_tile_override_mismatch_rejected(self, small_operands):
        a, b = small_operands
        scheme = get_scheme("global")
        weights = scheme.prepare_weights(b, m=a.shape[0])
        other = TileConfig(mb=64, nb=32, kb=32, mw=32, nw=16, mt=4, nt=4)
        assert weights.tile != other
        with pytest.raises(ConfigurationError):
            scheme.execute(a, b, tile=other, weights=weights)


class TestAmortization:
    """The acceptance criterion: N trials, one clean GEMM, one reduction."""

    def test_prepare_once_inject_many(self, small_operands):
        a, b = small_operands
        scheme = get_scheme("thread_onesided")
        EXECUTION_STATS.reset()
        prepared = scheme.prepare(a, b)
        assert EXECUTION_STATS.snapshot() == (1, 1, 1)
        for _ in range(10):
            prepared.inject(FAULT_CASES["original_add"])
        assert EXECUTION_STATS.snapshot() == (1, 1, 1)

    @pytest.mark.parametrize("name", ["global", "thread_twosided"])
    def test_campaign_amortizes_fault_invariant_work(self, name, rng):
        a = (rng.standard_normal((48, 32)) * 0.5).astype(np.float16)
        b = (rng.standard_normal((32, 40)) * 0.5).astype(np.float16)
        EXECUTION_STATS.reset()
        campaign = FaultCampaign(get_scheme(name), a, b, seed=5)
        result = campaign.run_batch(25)
        assert result.n_trials == 25
        # One clean GEMM and one operand-checksum build for the whole
        # campaign — construction included.
        assert EXECUTION_STATS.gemms == 1
        assert EXECUTION_STATS.weight_reductions == 1
        assert EXECUTION_STATS.activation_reductions == 1
