"""Tests for multi-checksum global ABFT (paper §2.4 extension)."""

import numpy as np
import pytest

from repro.abft import MultiChecksumGlobalABFT
from repro.errors import ConfigurationError
from repro.faults import FaultKind, FaultSpec
from repro.gemm import GemmProblem, TileConfig, reference_gemm
from repro.gpu import T4


class TestConstruction:
    def test_rejects_zero_checksums(self):
        with pytest.raises(ConfigurationError):
            MultiChecksumGlobalABFT(0)


class TestNumeric:
    def test_clean_run_passes(self, small_operands):
        a, b = small_operands
        scheme = MultiChecksumGlobalABFT(3)
        outcome = scheme.execute(a, b)
        assert not outcome.detected
        assert outcome.verdict.checks == 3

    def test_output_matches_reference(self, small_operands):
        a, b = small_operands
        outcome = MultiChecksumGlobalABFT(2).execute(a, b)
        np.testing.assert_allclose(
            outcome.c.astype(np.float32), reference_gemm(a, b), rtol=5e-3, atol=5e-3
        )

    def test_detects_single_fault(self, small_operands):
        a, b = small_operands
        fault = FaultSpec(row=3, col=3, kind=FaultKind.ADD, value=30.0)
        assert MultiChecksumGlobalABFT(2).execute(a, b, faults=[fault]).detected

    def test_detects_cancelling_pair_that_blinds_single_checksum(
        self, small_operands
    ):
        """The §2.4 motivation: with r >= 2 independently-weighted
        checksums, equal-and-opposite faults at different positions can
        no longer cancel in every check simultaneously."""
        a, b = small_operands
        faults = [
            FaultSpec(row=1, col=1, kind=FaultKind.ADD, value=30.0),
            FaultSpec(row=40, col=40, kind=FaultKind.ADD, value=-30.0),
        ]
        from repro.abft import GlobalABFT

        assert not GlobalABFT().execute(a, b, faults=faults).detected
        assert MultiChecksumGlobalABFT(3).execute(a, b, faults=faults).detected


class TestPlan:
    def test_cost_scales_with_checksum_count(self):
        problem = GemmProblem(512, 512, 512)
        tile = TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
        t1 = MultiChecksumGlobalABFT(1).plan(problem, tile).modeled_time(T4)
        t4 = MultiChecksumGlobalABFT(4).plan(problem, tile).modeled_time(T4)
        assert t4 > t1
