"""Tests for the tolerance-aware checksum comparison."""

import numpy as np
import pytest

from repro.abft.detection import compare_checksums
from repro.config import DetectionConstants
from repro.errors import DetectionError


class TestCompare:
    def test_equal_values_pass(self):
        v = compare_checksums(
            np.array([1.0, 2.0]), np.array([1.0, 2.0]), n_terms=100, magnitudes=10.0
        )
        assert not v.detected
        assert v.checks == 2

    def test_rounding_noise_passes(self):
        lhs = np.array([1000.0])
        rhs = np.array([1000.0 * (1 + 2 ** -22)])
        v = compare_checksums(lhs, rhs, n_terms=4096, magnitudes=2000.0)
        assert not v.detected

    def test_large_mismatch_detected(self):
        v = compare_checksums(
            np.array([100.0]), np.array([105.0]), n_terms=64, magnitudes=200.0
        )
        assert v.detected
        assert v.violations == (0,)

    def test_violations_indices(self):
        lhs = np.array([[1.0, 2.0], [3.0, 999.0]])
        rhs = np.array([[1.0, 2.0], [3.0, 4.0]])
        v = compare_checksums(lhs, rhs, n_terms=8, magnitudes=10.0)
        assert v.violations == (3,)

    def test_nan_always_detected(self):
        v = compare_checksums(
            np.array([np.nan]), np.array([1.0]), n_terms=8, magnitudes=1e30
        )
        assert v.detected
        assert v.max_residual == float("inf")

    def test_inf_always_detected(self):
        v = compare_checksums(
            np.array([np.inf]), np.array([1.0]), n_terms=8, magnitudes=1e30
        )
        assert v.detected

    def test_shape_mismatch_raises(self):
        with pytest.raises(DetectionError):
            compare_checksums(np.zeros(3), np.zeros(4), n_terms=8, magnitudes=1.0)


class TestToleranceScaling:
    def test_tolerance_grows_with_magnitude(self):
        small = compare_checksums(
            np.array([0.0]), np.array([0.0]), n_terms=64, magnitudes=1.0
        )
        big = compare_checksums(
            np.array([0.0]), np.array([0.0]), n_terms=64, magnitudes=1e6
        )
        assert big.tolerance > small.tolerance

    def test_tolerance_grows_logarithmically_with_terms(self):
        c = DetectionConstants()
        t1 = c.tolerance(2 ** 10, 1e4)
        t2 = c.tolerance(2 ** 20, 1e4)
        assert t2 == pytest.approx(t1 * 21 / 11, rel=1e-6)

    def test_atol_floor(self):
        c = DetectionConstants()
        assert c.tolerance(2, 0.0) == c.atol_floor

    def test_per_check_magnitudes_broadcast(self):
        lhs = np.array([0.0, 0.0])
        rhs = np.array([0.001, 0.001])
        mags = np.array([1.0, 1e9])
        v = compare_checksums(lhs, rhs, n_terms=1024, magnitudes=mags)
        # Same residual: flagged where magnitude (and thus tolerance) is
        # small, passed where the accumulated magnitude explains it.
        assert v.violations == (0,)
