"""Tests for scheme cost plans — pinning the paper's Table 1 ratios."""

import pytest

from repro.abft import get_scheme, list_schemes
from repro.config import DEFAULT_CONSTANTS
from repro.gemm import GemmProblem, TileConfig, mainloop_cost
from repro.gpu import T4


@pytest.fixture
def tile():
    return TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)


@pytest.fixture
def problem():
    return GemmProblem(512, 512, 512)


def _extra_tc(scheme_name, problem, tile):
    base = mainloop_cost(problem, tile).tc_flops
    plan = get_scheme(scheme_name).plan(problem, tile)
    return plan.kernels[0].work.matmul_flops - base


class TestTable1TensorCoreRatios:
    """Table 1: extra MMAs per K-step are Mt*Nt/2 (replication), 1
    (two-sided), Mt/2 (one-sided) against a mainloop of Mt*Nt/2."""

    def test_one_sided_ratio_is_one_over_nt(self, problem, tile):
        base = mainloop_cost(problem, tile).tc_flops
        assert _extra_tc("thread_onesided", problem, tile) == pytest.approx(
            base / tile.nt
        )

    def test_two_sided_ratio_is_two_over_mtnt(self, problem, tile):
        base = mainloop_cost(problem, tile).tc_flops
        assert _extra_tc("thread_twosided", problem, tile) == pytest.approx(
            base * 2.0 / (tile.mt * tile.nt)
        )

    def test_replication_doubles_tensor_work(self, problem, tile):
        base = mainloop_cost(problem, tile).tc_flops
        for name in ("replication_single", "replication_traditional"):
            assert _extra_tc(name, problem, tile) == pytest.approx(base)

    def test_table1_ordering(self, problem, tile):
        # two-sided < one-sided < replication in extra Tensor-Core work.
        two = _extra_tc("thread_twosided", problem, tile)
        one = _extra_tc("thread_onesided", problem, tile)
        rep = _extra_tc("replication_single", problem, tile)
        assert two < one < rep

    def test_global_adds_no_mainloop_tensor_work(self, problem, tile):
        assert _extra_tc("global", problem, tile) == pytest.approx(0.0)


class TestTable1ChecksumOps:
    def test_checksum_alu_ordering(self, problem, tile):
        """Table 1: checksum ops are 0 (replication), O(Nt) (one-sided),
        O(Mt+Nt) (two-sided) per K-step."""
        base = mainloop_cost(problem, tile).alu_lane_ops

        def extra_alu(name):
            plan = get_scheme(name).plan(problem, tile)
            return plan.kernels[0].work.alu_ops - base

        rep = extra_alu("replication_single")
        one = extra_alu("thread_onesided")
        two = extra_alu("thread_twosided")
        # Replication's only ALU cost is the final compare (no per-step
        # checksum work), so per-step ordering shows up at large K.
        assert rep < one < two


class TestStructuralProperties:
    def test_thread_schemes_add_no_bytes(self, problem, tile):
        """The §3.5 design principle: thread-level ABFT performs zero
        additional loads/stores."""
        base = mainloop_cost(problem, tile).dram_bytes
        for name in ("thread_onesided", "thread_twosided",
                     "replication_single", "replication_traditional"):
            plan = get_scheme(name).plan(problem, tile)
            assert plan.kernels[0].work.dram_bytes == pytest.approx(base)

    def test_thread_schemes_single_kernel(self, problem, tile):
        for name in ("thread_onesided", "thread_twosided"):
            plan = get_scheme(name).plan(problem, tile)
            assert len(plan.kernels) == 1
            assert plan.kernels[0].work.launches == 1

    def test_global_launches_check_kernel(self, problem, tile):
        plan = get_scheme("global").plan(problem, tile)
        assert len(plan.kernels) == 2
        labels = [k.label for k in plan.kernels]
        assert "abft-check" in labels

    def test_global_check_kernel_partially_hidden(self, problem, tile):
        plan = get_scheme("global").plan(problem, tile)
        check = next(k for k in plan.kernels if k.label == "abft-check")
        assert check.visible_fraction == pytest.approx(
            1.0 - DEFAULT_CONSTANTS.check_kernel_overlap
        )

    def test_traditional_replication_doubles_accumulator_registers(
        self, problem, tile
    ):
        base_regs = mainloop_cost(problem, tile).registers_per_thread
        plan = get_scheme("replication_traditional").plan(problem, tile)
        assert (
            plan.kernels[0].work.registers_per_thread
            == base_regs + tile.mt * tile.nt
        )

    def test_single_accumulator_keeps_registers_lean(self, problem, tile):
        base_regs = mainloop_cost(problem, tile).registers_per_thread
        plan = get_scheme("replication_single").plan(problem, tile)
        assert plan.kernels[0].work.registers_per_thread <= base_regs + 4

    def test_modeled_time_positive_for_all_schemes(self, problem, tile):
        from repro.errors import OccupancyError

        for name in list_schemes():
            plan = get_scheme(name).plan(problem, tile)
            try:
                assert plan.modeled_time(T4) > 0
            except OccupancyError:
                # Traditional replication's doubled accumulators exceed
                # the 255-register cap on the 16x8 thread tile — the
                # very limitation §4 describes; the profiler falls back
                # to smaller tiles for it.
                assert name == "replication_traditional"

    def test_kernel_timings_labels(self, problem, tile):
        plan = get_scheme("global").plan(problem, tile)
        timings = plan.kernel_timings(T4)
        assert set(timings) == {"mainloop+fused-epilogue", "abft-check"}
        assert timings["abft-check"] < timings["mainloop+fused-epilogue"]


class TestOccupancyDrivenSlowdown:
    def test_traditional_replication_slower_than_single_under_profiler(self):
        """Paper §4: traditional replication's register doubling limits
        occupancy/tile choices and slows execution; the single-
        accumulation variant 'alleviates the occupancy-related
        slowdowns'.  Compared at each scheme's best configuration."""
        from repro.core import PredeploymentProfiler

        prof = PredeploymentProfiler(
            T4, schemes=("replication_single", "replication_traditional")
        )
        entries = prof.profile(GemmProblem(1024, 1024, 1024))
        assert (
            entries["replication_traditional"].time_s
            > entries["replication_single"].time_s
        )

    def test_big_tile_traditional_replication_unschedulable(self):
        """On the 16x8 thread tile, doubling the 128 accumulators blows
        the 255-register cap entirely — the extreme form of §4."""
        from repro.errors import OccupancyError

        problem = GemmProblem(2048, 2048, 2048)
        tile = TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
        plan = get_scheme("replication_traditional").plan(problem, tile)
        with pytest.raises(OccupancyError):
            plan.modeled_time(T4)
