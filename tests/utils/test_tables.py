"""Tests for the ASCII table renderer."""

import pytest

from repro.utils import Table


class TestTable:
    def test_renders_title_header_and_rows(self):
        t = Table(["model", "AI"], title="Fig. 4")
        t.add_row(["ResNet-50", 122.0])
        out = t.render()
        assert out.splitlines()[0] == "Fig. 4"
        assert "model" in out and "ResNet-50" in out and "122" in out

    def test_column_alignment(self):
        t = Table(["a", "b"])
        t.add_row(["long-name", 1])
        t.add_row(["x", 22])
        lines = t.render().splitlines()
        # All body lines share the same separator column position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_float_formatting_large_and_small(self):
        t = Table(["v"])
        t.add_row([1234567.0])
        t.add_row([0.00001])
        t.add_row([0.0])
        out = t.render()
        assert "1.235e+06" in out
        assert "1.000e-05" in out

    def test_bool_formatting(self):
        t = Table(["v"])
        t.add_row([True])
        assert "yes" in t.render()

    def test_wrong_row_width_rejected(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_len_counts_rows(self):
        t = Table(["a"])
        assert len(t) == 0
        t.add_row([1])
        assert len(t) == 1
