"""Tests for integer/float math helpers."""

import pytest

from repro.errors import ShapeError
from repro.utils import ceil_div, geometric_sizes, is_power_of_two, round_up
from repro.utils.mathutils import harmonic_mean


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_dividend(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 1000) == 1

    def test_rejects_zero_divisor(self):
        with pytest.raises(ShapeError):
            ceil_div(5, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ShapeError):
            ceil_div(-1, 2)


class TestRoundUp:
    def test_already_multiple(self):
        assert round_up(16, 8) == 16

    def test_rounds_to_next_multiple(self):
        assert round_up(13, 8) == 16

    def test_paper_padding_rule(self):
        # The paper pads M=1 (batch one) to 8 for m16n8k8 (§6.2).
        assert round_up(1, 8) == 8

    def test_zero(self):
        assert round_up(0, 8) == 0


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 4096])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 12, 4097])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestGeometricSizes:
    def test_fig12_sweep(self):
        # Fig. 12 sweeps M=N=K from 32 to 2048 by doubling.
        assert list(geometric_sizes(32, 2048)) == [32, 64, 128, 256, 512, 1024, 2048]

    def test_stop_not_included_when_overshooting(self):
        assert list(geometric_sizes(3, 20, factor=3)) == [3, 9]

    def test_rejects_bad_range(self):
        with pytest.raises(ShapeError):
            list(geometric_sizes(16, 8))

    def test_rejects_factor_one(self):
        with pytest.raises(ShapeError):
            list(geometric_sizes(8, 16, factor=1))


class TestHarmonicMean:
    def test_equal_inputs(self):
        assert harmonic_mean(4.0, 4.0) == pytest.approx(4.0)

    def test_known_value(self):
        assert harmonic_mean(2.0, 6.0) == pytest.approx(3.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ShapeError):
            harmonic_mean(0.0, 1.0)
