"""Tests for argument-validation helpers."""

import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.utils import (
    check_fraction,
    check_in,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ShapeError, match="x must be positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ShapeError):
            check_positive_int(-3, "x")

    def test_rejects_bool(self):
        # bool is an int subclass; shapes must never be booleans.
        with pytest.raises(ShapeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ShapeError):
            check_positive_int(2.0, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "pad") == 0

    def test_rejects_negative(self):
        with pytest.raises(ShapeError):
            check_non_negative_int(-1, "pad")


class TestCheckPositiveFloat:
    def test_accepts_float(self):
        assert check_positive_float(1.5, "bw") == 1.5

    def test_accepts_int(self):
        assert check_positive_float(3, "bw") == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive_float(0.0, "bw")

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_positive_float(float("nan"), "bw")

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            check_positive_float(float("inf"), "bw")

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            check_positive_float("fast", "bw")


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_fraction(1.01, "f")


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("a", ("a", "b"), "opt") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="opt"):
            check_in("c", ("a", "b"), "opt")
