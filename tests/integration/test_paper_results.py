"""Integration tests pinning the paper's headline claims (shape, not
absolute T4 milliseconds — see DESIGN.md §6 and EXPERIMENTS.md)."""

import pytest

from repro.core import IntensityGuidedABFT, PredeploymentProfiler
from repro.gemm import GemmProblem
from repro.gpu import T4
from repro.nn import build_model, list_models


@pytest.fixture(scope="module")
def guided():
    return IntensityGuidedABFT(T4)


@pytest.fixture(scope="module")
def all_selections(guided):
    return {name: guided.select_for_model(build_model(name)) for name in list_models()}


class TestFig8Headlines:
    def test_guided_never_exceeds_global(self, all_selections):
        """'Intensity-guided ABFT, by design, always performs at least
        as well as global ABFT' (§6.2)."""
        for name, sel in all_selections.items():
            assert sel.guided_overhead_percent <= sel.scheme_overhead_percent("global") + 1e-9, name

    def test_reduction_range_matches_paper_envelope(self, all_selections):
        """§6: reductions of 1.09-5.3x across all NNs.  The model-based
        reproduction must land every model in a compatible [1.0, 6.0]
        envelope with a spread of at least 2x between best and worst."""
        factors = [
            sel.scheme_overhead_percent("global") / sel.guided_overhead_percent
            for sel in all_selections.values()
        ]
        assert min(factors) >= 1.0
        assert max(factors) <= 6.0
        assert max(factors) / min(factors) > 2.0

    def test_low_intensity_models_gain_most(self, all_selections):
        """§6.3: the largest reductions come from NNs with low aggregate
        arithmetic intensity (DLRM, specialized CNNs)."""
        def reduction(name):
            sel = all_selections[name]
            return sel.scheme_overhead_percent("global") / sel.guided_overhead_percent

        low = [reduction(n) for n in ("mlp_bottom", "mlp_top")]
        high = [reduction(n) for n in ("alexnet", "vgg16")]
        assert min(low) > max(high)

    def test_dlrm_batch1_reduction_is_large(self, all_selections):
        """Fig. 10: ~4.55x (MLP-Bottom) and ~3.24x (MLP-Top) at batch 1;
        require > 2.5x in the model."""
        for name in ("mlp_bottom", "mlp_top"):
            sel = all_selections[name]
            red = sel.scheme_overhead_percent("global") / sel.guided_overhead_percent
            assert red > 2.5, name

    def test_even_high_intensity_models_benefit(self, all_selections):
        """§6.3: Wide-ResNet-50 still gains (paper: 1.5x) because some
        of its layers are bandwidth bound."""
        sel = all_selections["wide_resnet50_2"]
        assert sel.guided_overhead_percent < sel.scheme_overhead_percent("global")
        assert sel.selection_counts.get("thread_onesided", 0) > 0


class TestFig9ResolutionEffect:
    def test_lower_resolution_increases_reduction(self, guided):
        """§6.4.1: at 224x224 the reduction grows versus HD because
        aggregate intensity drops and more layers go bandwidth bound
        (asserted on the bandwidth-dominated CNNs; see EXPERIMENTS.md
        for the high-intensity models' deviation)."""
        model_names = ("squeezenet1_0", "shufflenet_v2_x1_0", "densenet161")
        def mean_reduction(h, w):
            total = 0.0
            for name in model_names:
                sel = guided.select_for_model(build_model(name, h=h, w=w))
                total += (
                    sel.scheme_overhead_percent("global") / sel.guided_overhead_percent
                )
            return total / len(model_names)

        assert mean_reduction(224, 224) > mean_reduction(1080, 1920)


class TestFig10BatchEffect:
    def test_large_batch_narrows_the_gap_for_mlp_top(self, guided):
        """Fig. 10: at batch 2048 MLP-Top's intensity (175.8) nears the
        CMR and the thread-vs-global difference shrinks."""
        small = guided.select_for_model(build_model("mlp_top", batch=1))
        big = guided.select_for_model(build_model("mlp_top", batch=2048))
        gap_small = (
            small.scheme_overhead_percent("global")
            - small.scheme_overhead_percent("thread_onesided")
        )
        gap_big = (
            big.scheme_overhead_percent("global")
            - big.scheme_overhead_percent("thread_onesided")
        )
        assert gap_big < gap_small

    def test_mlp_bottom_still_prefers_thread_at_batch_2048(self, guided):
        """Fig. 10: MLP-Bottom's intensity only reaches 92 at batch
        2048, so thread-level ABFT continues to win."""
        sel = guided.select_for_model(build_model("mlp_bottom", batch=2048))
        assert (
            sel.scheme_overhead_percent("thread_onesided")
            < sel.scheme_overhead_percent("global")
        )


class TestFig12SquareSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        prof = PredeploymentProfiler(
            T4,
            schemes=(
                "global",
                "thread_onesided",
                "thread_twosided",
                "replication_single",
                "replication_traditional",
            ),
        )
        out = {}
        for s in (32, 64, 128, 256, 512, 1024, 2048):
            entries = prof.profile(GemmProblem(s, s, s))
            base = entries["none"].time_s
            out[s] = {k: (v.time_s / base - 1) * 100 for k, v in entries.items() if k != "none"}
        return out

    def test_crossover_between_512_and_1024(self, sweep):
        """Sizes left of the dashed line (AI < CMR 203, i.e. <= 512)
        favor thread-level ABFT; sizes right of it favor global."""
        assert sweep[512]["thread_onesided"] < sweep[512]["global"]
        assert sweep[1024]["global"] < sweep[1024]["thread_onesided"]

    def test_thread_level_wins_big_at_small_sizes(self, sweep):
        for s in (32, 64, 128, 256):
            assert sweep[s]["thread_onesided"] < sweep[s]["global"] / 2

    def test_global_wins_big_at_large_sizes(self, sweep):
        for s in (1024, 2048):
            assert sweep[s]["global"] < sweep[s]["thread_onesided"] / 4

    def test_one_sided_beats_two_sided_nearly_everywhere(self, sweep):
        """§6.5: 'one-sided thread-level ABFT almost always exhibits
        lower execution-time overhead than two-sided'."""
        wins = sum(
            sweep[s]["thread_onesided"] <= sweep[s]["thread_twosided"] + 1e-9
            for s in sweep
        )
        assert wins >= len(sweep) - 1

    def test_replication_spikes_beyond_512(self, sweep):
        """§6.5: replication overhead 'sharply spikes' for sizes 512+
        and exceeds 70% for the final two sizes."""
        assert sweep[1024]["replication_single"] > 70
        assert sweep[2048]["replication_single"] > 70
        assert sweep[256]["replication_single"] < 20

    def test_replication_close_to_abft_at_small_sizes(self, sweep):
        assert sweep[64]["replication_single"] == pytest.approx(
            sweep[64]["thread_onesided"], rel=0.5
        )

    def test_global_overhead_declines_with_size(self, sweep):
        assert sweep[2048]["global"] < sweep[512]["global"] < sweep[32]["global"]
