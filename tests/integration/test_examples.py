"""Smoke tests: every shipped example runs green end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_five_examples_shipped():
    assert len(ALL_EXAMPLES) >= 5
    assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_detects_fault():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "detected=True" in result.stdout
    assert "coverage 100.0%" in result.stdout
    assert "thread_onesided" in result.stdout
