"""The README's quickstart must run verbatim — docs that rot, fail CI.

The fenced ``bash`` blocks in README.md are extracted and executed
exactly as written (``bash -euo pipefail``), from a scratch directory
that mirrors the repo-relative paths the commands use (``src``,
``examples``) so artifacts like ``plan.json`` never land in the
checkout.  A README edit that renames a flag, a layer, or a model
breaks here before a user ever copy-pastes it.
"""

import pathlib
import re
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
README = REPO_ROOT / "README.md"

_FENCED_BASH = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def _bash_blocks() -> list[str]:
    return _FENCED_BASH.findall(README.read_text(encoding="utf-8"))


@pytest.fixture
def readme_cwd(tmp_path):
    """Scratch dir where the README's repo-relative paths resolve."""
    for name in ("src", "examples"):
        (tmp_path / name).symlink_to(REPO_ROOT / name, target_is_directory=True)
    return tmp_path


def test_readme_has_a_quickstart_block():
    blocks = _bash_blocks()
    assert blocks, "README.md lost its fenced bash quickstart"
    joined = "\n".join(blocks)
    for command in ("repro deploy", "repro campaign", "repro sdc", "examples/quickstart.py"):
        assert command in joined, f"quickstart no longer covers `{command}`"


@pytest.mark.parametrize("index", range(len(_bash_blocks())))
def test_readme_bash_block_runs_verbatim(index, readme_cwd):
    block = _bash_blocks()[index]
    result = subprocess.run(
        ["bash", "-euo", "pipefail", "-c", block],
        cwd=readme_cwd,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"README bash block {index} failed:\n{result.stdout}\n{result.stderr}"
    )


def test_readme_links_resolve():
    text = README.read_text(encoding="utf-8")
    targets = {
        t for t in re.findall(r"\]\(([^)]+)\)", text)
        if not t.startswith(("http://", "https://", "#"))
    }
    assert targets, "README lost its relative links"
    for target in targets:
        assert (REPO_ROOT / target).exists(), f"README links to missing {target}"


def test_readme_design_sections_exist():
    """Every `DESIGN.md §N` the README cites is a real section."""
    design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    readme = README.read_text(encoding="utf-8")
    cited = set(re.findall(r"§(\d+)", readme))
    assert cited, "README lost its DESIGN.md section citations"
    for section in cited:
        assert f"## §{section} " in design, f"README cites missing DESIGN.md §{section}"
