"""Cross-device behaviour: selections move with the CMR (paper §7.1)."""

import pytest

from repro.core import IntensityGuidedABFT
from repro.gemm import GemmProblem
from repro.gpu import P4, T4, V100, get_gpu, list_gpus
from repro.nn import build_model


class TestCrossoverMovesWithCMR:
    def test_lower_cmr_device_switches_to_global_earlier(self):
        """On the P4 (CMR 57) a 256-square GEMM is compute bound and
        should prefer global ABFT; on the T4 (CMR 203) it is bandwidth
        bound and prefers thread-level."""
        p = GemmProblem(256, 256, 256)
        t4_choice = IntensityGuidedABFT(T4).select_for_problem(p).chosen
        p4_choice = IntensityGuidedABFT(P4).select_for_problem(p).chosen
        assert t4_choice == "thread_onesided"
        assert p4_choice == "global"

    def test_thread_level_share_grows_with_cmr(self):
        """Across devices, the fraction of ResNet-50 layers assigned to
        thread-level ABFT grows with the device CMR."""
        model = build_model("resnet50")
        shares = {}
        for spec in (P4, V100, T4):
            sel = IntensityGuidedABFT(spec).select_for_model(model)
            shares[spec.name] = sel.selection_counts.get("thread_onesided", 0) / len(sel.layers)
        assert shares["P4"] <= shares["V100"] <= shares["T4"]


class TestEveryDeviceWorks:
    @pytest.mark.parametrize("name", ["T4", "P4", "V100", "A100", "Jetson-AGX-Xavier"])
    def test_guided_selection_valid_on_device(self, name):
        guided = IntensityGuidedABFT(get_gpu(name))
        sel = guided.select_for_model(build_model("mlp_bottom"))
        assert sel.guided_overhead_percent <= sel.scheme_overhead_percent("global") + 1e-9
        assert sel.guided_overhead_percent <= sel.scheme_overhead_percent("thread_onesided") + 1e-9

    def test_device_list_is_stable(self):
        assert len(list_gpus()) == 5
