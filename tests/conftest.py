"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gemm import GemmProblem, TileConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_operands(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A modest 96x40 @ 40x48 FP16 operand pair with benign magnitudes."""
    a = (rng.standard_normal((96, 40)) * 0.5).astype(np.float16)
    b = (rng.standard_normal((40, 48)) * 0.5).astype(np.float16)
    return a, b


@pytest.fixture
def small_problem() -> GemmProblem:
    """The GemmProblem matching ``small_operands``."""
    return GemmProblem(96, 48, 40)


@pytest.fixture
def small_tile() -> TileConfig:
    """A small tile configuration legal for any problem."""
    return TileConfig(mb=64, nb=32, kb=32, mw=32, nw=16, mt=4, nt=4)
