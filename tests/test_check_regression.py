"""Tests for the CI perf-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _report(dense=10.0, sparse=40.0, trials=200, warm_weight_reductions=0):
    return {
        "campaign": {
            "global": {
                "trials": trials,
                "paths": {
                    "dense": {"speedup": dense},
                    "sparse": {"speedup": sparse},
                },
                "speedup": sparse,
            },
        },
        "inference": {"warm_weight_reductions": warm_weight_reductions},
    }


def _failures(bench, baseline, threshold=0.25):
    failures, _ = check_regression.check(bench, baseline, threshold)
    return failures


class TestGate:
    def test_equal_speedup_passes(self):
        assert _failures(_report(), _report()) == []

    def test_improvement_passes(self):
        assert _failures(_report(dense=30.0, sparse=120.0), _report()) == []

    def test_within_threshold_passes(self):
        assert _failures(_report(dense=7.6, sparse=30.4), _report()) == []

    def test_dense_regression_beyond_threshold_fails(self):
        failures = _failures(_report(dense=7.4), _report())
        assert len(failures) == 1
        assert "global/dense" in failures[0]

    def test_sparse_regression_fails_even_when_dense_holds(self):
        """Every (scheme, path) pair is gated independently."""
        failures = _failures(_report(sparse=29.0), _report())
        assert len(failures) == 1
        assert "global/sparse" in failures[0]

    def test_missing_scheme_fails(self):
        bench = {"campaign": {}, "inference": {"warm_weight_reductions": 0}}
        failures = _failures(bench, _report())
        assert any("missing" in f for f in failures)

    def test_missing_path_fails(self):
        bench = _report()
        del bench["campaign"]["global"]["paths"]["sparse"]
        failures = _failures(bench, _report())
        assert any("global/sparse" in f and "missing" in f for f in failures)

    def test_trial_count_mismatch_fails(self):
        failures = _failures(_report(trials=25), _report(trials=200))
        assert any("25 trials" in f for f in failures)

    def test_warm_weight_reductions_fail(self):
        failures = _failures(
            _report(warm_weight_reductions=3), _report()
        )
        assert any("weight-side reductions" in f for f in failures)

    def test_pre_sparse_flat_schema_still_gates(self):
        """A baseline predating the per-path table gates on its flat
        speedup, so the gate survives a schema transition."""
        old = {
            "campaign": {"global": {"trials": 200, "speedup": 10.0}},
            "inference": {"warm_weight_reductions": 0},
        }
        assert _failures(old, old) == []
        slow = {
            "campaign": {"global": {"trials": 200, "speedup": 7.0}},
            "inference": {"warm_weight_reductions": 0},
        }
        assert any("global/prepared" in f for f in _failures(slow, old))

    def test_flat_baseline_gates_new_per_path_bench(self):
        """An old flat baseline against new per-path bench output gates
        on the bench's flat engine-default speedup — an improved engine
        must pass, a regressed one must fail."""
        old = {
            "campaign": {"global": {"trials": 200, "speedup": 10.0}},
            "inference": {"warm_weight_reductions": 0},
        }
        assert _failures(_report(dense=12.0, sparse=40.0), old) == []
        failures = _failures(_report(dense=6.0, sparse=7.0), old)
        assert any("global/prepared" in f for f in failures)

    def test_committed_baseline_parses_and_self_passes(self):
        """The repo's committed baseline must pass its own gate."""
        import json

        baseline = json.loads((REPO_ROOT / "BENCH_prepared.json").read_text())
        assert _failures(baseline, baseline) == []


class TestStepSummary:
    def test_summary_renders_every_pair_and_verdict(self):
        failures, rows = check_regression.check(
            _report(sparse=29.0), _report(), 0.25
        )
        text = check_regression.render_summary(rows, failures)
        assert "| global | dense |" in text
        assert "| global | sparse |" in text
        assert "REGRESSED" in text
        assert "Gate FAILED" in text

    def test_summary_reports_clean_pass(self):
        failures, rows = check_regression.check(_report(), _report(), 0.25)
        text = check_regression.render_summary(rows, failures)
        assert "REGRESSED" not in text
        assert "Gate passed" in text

    def test_summary_appends_to_env_target(self, tmp_path, monkeypatch):
        target = tmp_path / "summary.md"
        target.write_text("earlier content\n")
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
        failures, rows = check_regression.check(_report(), _report(), 0.25)
        check_regression.write_step_summary(rows, failures)
        text = target.read_text()
        assert text.startswith("earlier content\n")
        assert "Prepared-engine perf gate" in text

    def test_summary_skipped_without_env(self, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        # Must be a no-op, not an error.
        check_regression.write_step_summary([], [])
