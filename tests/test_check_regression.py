"""Tests for the CI perf-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _report(speedup, trials=200, warm_weight_reductions=0):
    return {
        "campaign": {
            "global": {"trials": trials, "speedup": speedup},
        },
        "inference": {"warm_weight_reductions": warm_weight_reductions},
    }


class TestGate:
    def test_equal_speedup_passes(self):
        assert check_regression.check(_report(10.0), _report(10.0), 0.25) == []

    def test_improvement_passes(self):
        assert check_regression.check(_report(30.0), _report(10.0), 0.25) == []

    def test_within_threshold_passes(self):
        assert check_regression.check(_report(7.6), _report(10.0), 0.25) == []

    def test_regression_beyond_threshold_fails(self):
        failures = check_regression.check(_report(7.4), _report(10.0), 0.25)
        assert len(failures) == 1
        assert "global" in failures[0]

    def test_missing_scheme_fails(self):
        bench = {"campaign": {}, "inference": {"warm_weight_reductions": 0}}
        failures = check_regression.check(bench, _report(10.0), 0.25)
        assert any("missing" in f for f in failures)

    def test_trial_count_mismatch_fails(self):
        failures = check_regression.check(
            _report(10.0, trials=25), _report(10.0, trials=200), 0.25
        )
        assert any("25 trials" in f for f in failures)

    def test_warm_weight_reductions_fail(self):
        failures = check_regression.check(
            _report(10.0, warm_weight_reductions=3), _report(10.0), 0.25
        )
        assert any("weight-side reductions" in f for f in failures)

    def test_committed_baseline_parses_and_self_passes(self):
        """The repo's committed baseline must pass its own gate."""
        import json

        baseline = json.loads((REPO_ROOT / "BENCH_prepared.json").read_text())
        assert check_regression.check(baseline, baseline, 0.25) == []
