"""PlanRegistry: versioning, persistence round-trips, and plan diffs."""

import json

import pytest

from repro.api import FixedPolicy, IntensityGuidedPolicy
from repro.errors import ConfigurationError, PlanError
from repro.fleet import (
    REGISTRY_SCHEMA,
    PlanRegistry,
    RegistryKey,
    plan_diff,
)
from repro.gpu import get_gpu
from repro.nn import build_model


@pytest.fixture(scope="module")
def mlp():
    return build_model("mlp_bottom", batch=16)


@pytest.fixture(scope="module")
def guided_plan(mlp):
    return IntensityGuidedPolicy().assign(mlp, get_gpu("T4"))


@pytest.fixture(scope="module")
def fixed_plan(mlp):
    return FixedPolicy("global").assign(mlp, get_gpu("T4"))


class TestVersioning:
    def test_first_put_is_version_1(self, guided_plan):
        registry = PlanRegistry()
        assert registry.put(guided_plan) == 1

    def test_identical_put_is_idempotent(self, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        assert registry.put(guided_plan) == 1
        assert len(registry) == 1
        assert registry.versions("mlp_bottom", "T4") == 1

    def test_changed_plan_appends_a_version(self, guided_plan, mlp):
        registry = PlanRegistry()
        registry.put(guided_plan)
        changed = IntensityGuidedPolicy().assign(
            build_model("mlp_bottom", batch=64), get_gpu("T4")
        )
        assert changed != guided_plan  # batch differs
        assert registry.put(changed) == 2
        assert registry.get("mlp_bottom", "T4") == changed
        assert registry.get("mlp_bottom", "T4", version=1) == guided_plan

    def test_policies_are_separate_slots(self, guided_plan, fixed_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        registry.put(fixed_plan)
        assert len(registry.keys()) == 2
        assert registry.get("mlp_bottom", "T4", "guided") == guided_plan
        assert registry.get("mlp_bottom", "T4", "fixed:global") == fixed_plan

    def test_ambiguous_policy_lookup_rejected(self, guided_plan, fixed_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        registry.put(fixed_plan)
        with pytest.raises(ConfigurationError, match="several"):
            registry.get("mlp_bottom", "T4")

    def test_missing_slot_lists_known(self, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        with pytest.raises(ConfigurationError, match="no plan registered"):
            registry.get("mlp_bottom", "V100")

    def test_out_of_range_version_rejected(self, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        with pytest.raises(ConfigurationError, match="versions 1..1"):
            registry.get("mlp_bottom", "T4", version=2)

    def test_keys_are_sorted(self, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan.with_device("V100"))
        registry.put(guided_plan)
        assert registry.keys() == [
            RegistryKey("mlp_bottom", "T4", "guided"),
            RegistryKey("mlp_bottom", "V100", "guided"),
        ]


class TestPersistence:
    def test_json_round_trip_is_lossless(self, guided_plan, fixed_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        registry.put(fixed_plan)
        loaded = PlanRegistry.from_json(registry.to_json())
        assert loaded.keys() == registry.keys()
        assert loaded.get("mlp_bottom", "T4", "guided") == guided_plan
        assert loaded.get("mlp_bottom", "T4", "fixed:global") == fixed_plan

    def test_round_trip_preserves_version_history(self, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        changed = IntensityGuidedPolicy().assign(
            build_model("mlp_bottom", batch=64), get_gpu("T4")
        )
        registry.put(changed)
        loaded = PlanRegistry.from_json(registry.to_json())
        assert loaded.versions("mlp_bottom", "T4") == 2
        assert loaded.get("mlp_bottom", "T4", version=1) == guided_plan
        assert loaded.get("mlp_bottom", "T4", version=2) == changed

    def test_save_load_file(self, tmp_path, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        path = tmp_path / "registry.json"
        registry.save(path)
        assert PlanRegistry.load(path).get("mlp_bottom", "T4") == guided_plan

    def test_document_declares_schema(self, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        assert json.loads(registry.to_json())["schema"] == REGISTRY_SCHEMA

    def test_plans_persist_under_versioned_plan_schema(self, guided_plan):
        registry = PlanRegistry()
        registry.put(guided_plan)
        entry = registry.to_dict()["entries"][0]
        assert entry["plan"]["schema_version"] == 2

    def test_unknown_registry_schema_raises_plan_error(self):
        with pytest.raises(PlanError, match="schema"):
            PlanRegistry.from_dict({"schema": "bogus/v9", "entries": []})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            PlanRegistry.from_json("{nope")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            PlanRegistry.load(tmp_path / "absent.json")


class TestPlanDiff:
    def test_identical_plans_diff_empty(self, guided_plan):
        diff = plan_diff(guided_plan, guided_plan)
        assert diff.identical
        assert diff.overhead_delta_percent == 0.0
        assert "identical" in diff.render()

    def test_scheme_changes_are_listed(self, guided_plan, fixed_plan):
        diff = plan_diff(guided_plan, fixed_plan)
        changed = {c.layer: (c.old, c.new) for c in diff.changes}
        expected = {
            name: (guided_plan.assignment()[name], "global")
            for name in guided_plan.layer_names
            if guided_plan.assignment()[name] != "global"
        }
        assert changed == expected
        assert not diff.identical

    def test_overhead_delta_tracks_predictions(self, guided_plan, fixed_plan):
        diff = plan_diff(guided_plan, fixed_plan)
        assert diff.overhead_delta_percent == pytest.approx(
            fixed_plan.guided_overhead_percent
            - guided_plan.guided_overhead_percent
        )

    def test_render_shows_schemes_and_overheads(self, guided_plan, fixed_plan):
        text = plan_diff(guided_plan, fixed_plan).render()
        assert "global" in text
        assert "predicted overhead" in text

    def test_cross_model_diff_rejected(self, guided_plan):
        other = IntensityGuidedPolicy().assign(
            build_model("mlp_top", batch=16), get_gpu("T4")
        )
        with pytest.raises(ConfigurationError, match="different models"):
            plan_diff(guided_plan, other)
