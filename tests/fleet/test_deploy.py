"""deploy_fleet: per-family amortization, registry recording, lookup.

The acceptance contract of the fleet sweep is measured, not assumed:
``EXECUTION_STATS`` counts every clean GEMM, and the tests assert that
sweeping ≥2 models × ≥2 same-family devices runs each layer's clean
GEMM once per ``(layer, device family)`` — warming the second family
member adds *zero* executions — while a cross-family device pays its
own.
"""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import PlanRegistry, deploy_fleet
from repro.gemm.executor import EXECUTION_STATS
from repro.gpu import get_gpu

MODELS = ["mlp_bottom", "mlp_top"]
#: Two devices of one family (volta) plus one of another (turing).
VOLTA_A, VOLTA_B, TURING = "V100", "Jetson-AGX-Xavier", "T4"


@pytest.fixture(scope="module")
def fleet():
    return deploy_fleet(
        MODELS, [VOLTA_A, VOLTA_B, TURING], policy="guided", batch=16
    )


class TestStructure:
    def test_every_pair_has_a_session(self, fleet):
        assert len(fleet) == len(MODELS) * 3
        for model in MODELS:
            for device in (VOLTA_A, VOLTA_B, TURING):
                assert fleet.session(model, device).plan.model == model

    def test_families_follow_specs(self, fleet):
        assert fleet.families[VOLTA_A] == "volta"
        assert fleet.families[VOLTA_B] == "volta"
        assert fleet.families[TURING] == "turing"

    def test_one_cache_per_family(self, fleet):
        assert set(fleet.caches) == {"volta", "turing"}
        volta = fleet.caches["volta"]
        assert fleet.session(MODELS[0], VOLTA_A).cache is volta
        assert fleet.session(MODELS[1], VOLTA_B).cache is volta
        assert fleet.session(MODELS[0], TURING).cache is not volta

    def test_device_aliases_resolve_in_lookup(self, fleet):
        assert fleet.session(MODELS[0], "v100") is fleet.session(
            MODELS[0], VOLTA_A
        )

    def test_unknown_pair_rejected(self, fleet):
        with pytest.raises(ConfigurationError, match="no session"):
            fleet.session("mlp_bottom", "A100")

    def test_registry_records_every_plan(self, fleet):
        assert len(fleet.registry) == len(fleet)
        for (model, device), session in fleet.sessions.items():
            assert fleet.registry.get(model, device) == session.plan

    def test_summary_has_a_row_per_pair(self, fleet):
        assert fleet.summary().render().count("\n") >= len(fleet)

    def test_empty_sweeps_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one model"):
            deploy_fleet([], ["T4"])
        with pytest.raises(ConfigurationError, match="at least one device"):
            deploy_fleet(["mlp_bottom"], [])


class TestFamilyAmortization:
    """Clean GEMMs run once per (layer, family), not once per pair."""

    def _warm(self, fleet, devices):
        before = EXECUTION_STATS.gemms
        for model in fleet.models:
            for device in devices:
                fleet.session(model, device).run()
        return EXECUTION_STATS.gemms - before

    def test_clean_gemm_once_per_layer_family(self):
        # At this geometry the guided policy assigns both volta devices
        # identically — the premise of family-level sharing; assert it
        # so a selection change fails loudly instead of silently
        # doubling work.  (At other geometries the devices' CMRs can
        # legitimately split a layer's choice; then sharing is per
        # (layer, family, scheme), which the fixed-policy test pins.)
        fleet = deploy_fleet(
            MODELS, [VOLTA_A, VOLTA_B], policy="guided", batch=32
        )
        for model in MODELS:
            assert (
                fleet.plan(model, VOLTA_A).assignment()
                == fleet.plan(model, VOLTA_B).assignment()
            )
        first = self._warm(fleet, [VOLTA_A])
        assert first > 0
        # Cross-model operand sharing can collapse same-shaped layers,
        # so "once per (layer, family)" is an upper bound per family.
        total_layers = sum(len(fleet.plan(m, VOLTA_A)) for m in fleet.models)
        assert first <= total_layers
        # The heart of the contract: the second family member re-runs
        # *nothing* — its clean GEMMs all hit the family cache.
        assert self._warm(fleet, [VOLTA_B]) == 0
        # And re-warming stays free.
        assert self._warm(fleet, [VOLTA_A, VOLTA_B]) == 0

    def test_fixed_policy_amortizes_identically(self):
        fleet = deploy_fleet(
            MODELS, [VOLTA_A, VOLTA_B], policy="fixed:global", batch=16
        )
        assert self._warm(fleet, [VOLTA_A]) > 0
        assert self._warm(fleet, [VOLTA_B]) == 0

    def test_cross_family_device_pays_its_own_gemms(self, fleet):
        fleet.warm()
        fresh = deploy_fleet(
            MODELS, [VOLTA_A, TURING], policy="guided", batch=16
        )
        volta = self._warm(fresh, [VOLTA_A])
        turing = self._warm(fresh, [TURING])
        assert volta > 0
        # T4 has its own family cache: its layers prepare separately
        # even though operands are identical to the volta ones.
        assert turing > 0

    def test_warm_returns_fleet_for_chaining(self):
        fleet = deploy_fleet([MODELS[0]], [VOLTA_A], batch=16)
        assert fleet.warm() is fleet


class TestProfilerAmortization:
    def test_one_policy_instance_spans_the_sweep(self):
        from repro.api import IntensityGuidedPolicy

        policy = IntensityGuidedPolicy()
        deploy_fleet(MODELS, [VOLTA_A, VOLTA_B], policy=policy, batch=16)
        # One guided selector (hence one profiler cache) per device,
        # shared across every model in the zoo.
        assert set(policy._guided) == {get_gpu(VOLTA_A), get_gpu(VOLTA_B)}


class TestRegistryIntegration:
    def test_repeat_sweep_is_idempotent(self):
        registry = PlanRegistry()
        deploy_fleet(MODELS, [VOLTA_A], registry=registry, batch=16)
        count = len(registry)
        deploy_fleet(MODELS, [VOLTA_A], registry=registry, batch=16)
        assert len(registry) == count

    def test_changed_geometry_appends_versions(self):
        registry = PlanRegistry()
        deploy_fleet(MODELS, [VOLTA_A], registry=registry, batch=16)
        deploy_fleet(MODELS, [VOLTA_A], registry=registry, batch=64)
        assert registry.versions(MODELS[0], VOLTA_A) == 2
