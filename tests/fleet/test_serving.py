"""SessionServer: concurrent traffic through one shared session.

Serving correctness is defined against serial execution: whatever N
concurrent requests observe must be bit-identical to what one-at-a-time
requests observe, and the shared session must prepare each layer's
clean GEMM exactly once no matter how many requests race.
"""

import asyncio

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError
from repro.fleet import ServingReport, SessionServer, serve_session
from repro.gemm.executor import EXECUTION_STATS


@pytest.fixture(scope="module")
def session():
    return repro.deploy("mlp_bottom", "T4", batch=16)


class TestReports:
    def test_report_counts_and_latencies(self, session):
        report = serve_session(session, 12, concurrency=4, max_workers=2)
        assert report.requests == 12
        assert report.concurrency == 4
        assert report.requests_per_s > 0
        assert 0 < report.p50_ms <= report.p99_ms
        assert report.detected_requests == 0

    def test_render_mentions_throughput_and_tail(self, session):
        report = serve_session(session, 4, concurrency=2, max_workers=2)
        text = report.render()
        assert "req/s" in text
        assert "p99" in text

    def test_serving_is_clean_pass_correct(self, session):
        serial = session.run().output
        async def gather_all(server):
            return await asyncio.gather(
                *(server.handle() for _ in range(8))
            )

        with SessionServer(session, max_workers=4) as server:
            results = asyncio.run(gather_all(server))
        for result in results:
            np.testing.assert_array_equal(result.output, serial)

    def test_shared_prepared_state_across_requests(self):
        fresh = repro.deploy("mlp_bottom", "T4", batch=16)
        before = EXECUTION_STATS.gemms
        serve_session(fresh, 10, concurrency=5, max_workers=4)
        clean_gemms = EXECUTION_STATS.gemms - before
        # One clean GEMM per layer, total — not per request.
        assert clean_gemms <= len(fresh.plan)

    def test_faulty_traffic_is_counted(self, session):
        from repro.faults import FaultKind, FaultSpec

        layer = session.plan.layer_names[0]
        spec = FaultSpec(row=0, col=0, kind=FaultKind.BITFLIP_FP32, bit=24)

        async def drive(server):
            clean = [server.handle() for _ in range(3)]
            faulty = [
                server.handle(faults={layer: [spec]}) for _ in range(2)
            ]
            await asyncio.gather(*clean, *faulty)
            return await server.serve(2, concurrency=2)

        with SessionServer(session, max_workers=2) as server:
            report = asyncio.run(drive(server))
        # The batch report covers only its own requests...
        assert report.requests == 2
        assert report.detected_requests == 0
        # ...while the faulty singles were tallied on the server.
        assert server._detected == 2

    def test_input_iterables_are_served(self):
        fleet = repro.deploy_fleet(["mlp_bottom"], ["T4"], batch=16)
        session = fleet.session("mlp_bottom", "T4")
        report = serve_session(
            session, [None, None, None], concurrency=2, max_workers=2
        )
        assert report.requests == 3


class TestValidation:
    def test_bad_concurrency_rejected(self, session):
        with SessionServer(session) as server:
            with pytest.raises(ConfigurationError, match="concurrency"):
                server.serve_blocking(4, concurrency=0)

    def test_bad_request_count_rejected(self, session):
        with SessionServer(session) as server:
            with pytest.raises(ConfigurationError, match="request count"):
                server.serve_blocking(0)

    def test_empty_iterable_rejected(self, session):
        with SessionServer(session) as server:
            with pytest.raises(ConfigurationError, match="no requests"):
                server.serve_blocking([])

    def test_bad_worker_count_rejected(self, session):
        with pytest.raises(ConfigurationError, match="max_workers"):
            SessionServer(session, max_workers=0)

    def test_report_is_frozen(self):
        report = ServingReport(
            requests=1, concurrency=1, total_s=1.0,
            requests_per_s=1.0, p50_ms=1.0, p99_ms=1.0,
        )
        with pytest.raises(AttributeError):
            report.requests = 2
