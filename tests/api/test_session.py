"""Protected-session tests: cache amortization and campaign equivalence.

Pins the deployment API's acceptance criteria: a session-built campaign
is record-for-record identical to a hand-wired
:class:`~repro.faults.FaultCampaign` on the same layer GEMM, the clean
GEMM runs exactly once across session forward passes and campaigns,
and one weight-side preparation per layer serves every batch size —
all asserted via ``EXECUTION_STATS`` rather than inferred from timings.
"""

import math

import numpy as np
import pytest

import repro
from repro.api import DeploymentPlan, ProtectedSession, deploy
from repro.errors import ConfigurationError
from repro.gemm import EXECUTION_STATS
from repro.nn.inference import Linear, ReLU, SequentialModel
from repro.nn.layers import LinearSpec


def records_identical(left, right):
    """Record-for-record equality, NaN deltas compared as equal."""
    if len(left) != len(right):
        return False
    for t1, t2 in zip(left, right):
        if (t1.faults, t1.detected, t1.significant, t1.benign_alarm) != (
            t2.faults, t2.detected, t2.significant, t2.benign_alarm
        ):
            return False
        if t1.delta != t2.delta and not (
            math.isnan(t1.delta) and math.isnan(t2.delta)
        ):
            return False
    return True


def runnable_mlp(seed: int = 7) -> SequentialModel:
    rng = np.random.default_rng(seed)
    dims = [13, 512, 256, 64]
    ops = []
    for i, (fin, fout) in enumerate(zip(dims, dims[1:])):
        spec = LinearSpec(fin, fout)
        ops.append(
            Linear(spec, SequentialModel.random_weights_linear(spec, rng),
                   name=f"fc{i}")
        )
        if i < len(dims) - 2:
            ops.append(ReLU())
    return SequentialModel(ops, name="mlp_bottom")


class TestLayerGemmSession:
    def test_clean_gemm_once_across_passes_and_campaigns(self):
        session = deploy("mlp_bottom", "T4", batch=16)
        EXECUTION_STATS.reset()
        session.run()
        session.run()
        campaign = session.campaign("fc1", seed=5)
        campaign.run(24)
        session.campaign("fc1", seed=9).run(8)
        # One clean GEMM per layer, total — passes and campaigns share
        # the prepared state through the session cache.
        assert EXECUTION_STATS.gemms == 3

    def test_campaign_matches_hand_wired_faultcampaign(self):
        session = deploy("mlp_bottom", "T4", batch=16)
        result = session.campaign("fc1", seed=5).run(32)

        a, b, tile = session.layer_operands("fc1")
        token = session.plan.layer("fc1").scheme
        hand = repro.FaultCampaign(
            repro.scheme_from_token(token), a, b, tile=tile, seed=5
        ).run(32)
        assert records_identical(result.trials, hand.trials)

    def test_deterministic_operands_across_sessions(self):
        first = deploy("mlp_bottom", "T4", batch=16, seed=3)
        second = deploy("mlp_bottom", "T4", batch=16, seed=3)
        a1, b1, _ = first.layer_operands("fc0")
        a2, b2, _ = second.layer_operands("fc0")
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
        other = deploy("mlp_bottom", "T4", batch=16, seed=4)
        a3, _, _ = other.layer_operands("fc0")
        assert not np.array_equal(a1, a3)

    def test_run_reports_injected_fault(self):
        session = deploy("mlp_bottom", "T4", batch=16)
        fault = repro.FaultSpec(
            row=3, col=7, kind=repro.FaultKind.BITFLIP_FP32, bit=27
        )
        result = session.run(faults={"fc1": [fault]})
        flagged = [r.name for r in result.layer_outcomes if r.detected]
        assert flagged == ["fc1"]

    def test_run_rejects_unknown_fault_target(self):
        session = deploy("mlp_bottom", "T4", batch=16)
        with pytest.raises(ConfigurationError, match="not in plan"):
            session.run(faults={"fc9": []})

    def test_run_rejects_activations(self):
        session = deploy("mlp_bottom", "T4", batch=16)
        with pytest.raises(ConfigurationError, match="layer-GEMM"):
            session.run(np.zeros((16, 13), dtype=np.float16))

    def test_campaign_requires_layer_on_multilayer_plans(self):
        session = deploy("mlp_bottom", "T4", batch=16)
        with pytest.raises(ConfigurationError, match="pass layer="):
            session.campaign()
        with pytest.raises(ConfigurationError, match="no layer"):
            session.campaign("fc9")


class TestNumericSession:
    def test_one_cache_entry_per_layer_per_batch_size(self):
        session = deploy(
            "mlp_bottom", "T4", batch=4, policy="fixed:global",
            runnable=runnable_mlp(),
        )
        rng = np.random.default_rng(0)
        x4 = (rng.standard_normal((4, 13)) * 0.5).astype(np.float16)
        x8 = (rng.standard_normal((8, 13)) * 0.5).astype(np.float16)

        EXECUTION_STATS.reset()
        session.run(x4)
        assert EXECUTION_STATS.snapshot() == (3, 3, 3)
        # Identical activations: every layer hits its cache entry.
        session.run(x4)
        assert EXECUTION_STATS.snapshot() == (3, 3, 3)
        # New batch size: new activations re-run the clean GEMMs, but
        # the m-independent weight-side state is reused per layer —
        # zero additional weight reductions across batch sizes.
        session.run(x8)
        assert EXECUTION_STATS.gemms == 6
        assert EXECUTION_STATS.weight_reductions == 3
        assert len(session.cache) == 6

    def test_campaign_attacks_the_executed_gemm(self):
        session = deploy(
            "mlp_bottom", "T4", batch=4, policy="fixed:global",
            runnable=runnable_mlp(),
        )
        rng = np.random.default_rng(1)
        x = (rng.standard_normal((4, 13)) * 0.5).astype(np.float16)
        session.run(x)

        EXECUTION_STATS.reset()
        result = session.campaign("fc1", seed=11).run(16)
        assert EXECUTION_STATS.gemms == 0  # reused the pass's GEMM

        a, b, tile = session.layer_operands("fc1")
        hand = repro.FaultCampaign(
            repro.get_scheme("global"), a, b, tile=tile, seed=11
        ).run(16)
        assert records_identical(result.trials, hand.trials)

    def test_campaign_before_any_pass_is_rejected(self):
        session = deploy(
            "mlp_bottom", "T4", batch=4, runnable=runnable_mlp()
        )
        with pytest.raises(ConfigurationError, match="forward pass"):
            session.campaign("fc1")

    def test_run_requires_activations(self):
        session = deploy(
            "mlp_bottom", "T4", batch=4, runnable=runnable_mlp()
        )
        with pytest.raises(ConfigurationError, match="needs"):
            session.run()

    def test_faulty_passes_do_not_poison_recorded_operands(self):
        """Campaigns must attack the clean deployment's GEMMs even if
        the most recent pass injected faults (corrupted activations
        propagate downstream of the faulted layer)."""
        session = deploy(
            "mlp_bottom", "T4", batch=4, policy="fixed:global",
            runnable=runnable_mlp(),
        )
        rng = np.random.default_rng(2)
        x = (rng.standard_normal((4, 13)) * 0.5).astype(np.float16)
        session.run(x)
        clean_a, clean_b, _ = session.layer_operands("fc2")

        fault = repro.FaultSpec(
            row=0, col=3, kind=repro.FaultKind.ADD, value=80.0
        )
        session.run(x, faults={"fc0": [fault]})
        a, b, _ = session.layer_operands("fc2")
        assert np.array_equal(a, clean_a) and np.array_equal(b, clean_b)

    def test_detection_constants_reach_forward_passes(self):
        """The session's detection constants govern the numeric engine,
        not just campaigns (they'd otherwise disagree on verdicts)."""
        from dataclasses import replace

        from repro import DEFAULT_DETECTION

        strict = replace(DEFAULT_DETECTION, rtol_slack=12.0)
        session = deploy(
            "mlp_bottom", "T4", batch=4, runnable=runnable_mlp(),
            detection=strict,
        )
        assert session.engine.detection is strict

    def test_mismatched_runnable_rejected(self):
        model = runnable_mlp()
        model.ops[0].name = "first"
        with pytest.raises(ConfigurationError, match="does not match"):
            deploy("mlp_bottom", "T4", batch=4, runnable=model)


class TestPlanRoundTripIntoSession:
    def test_deserialized_plan_is_runnable(self):
        plan = deploy("mlp_bottom", "T4", batch=16).plan
        restored = DeploymentPlan.from_json(plan.to_json())
        session = ProtectedSession(restored, seed=0)
        result = session.campaign("fc2", seed=2).run(12)
        assert result.n_trials == 12
        assert result.coverage == 1.0

    def test_sessions_from_equal_plans_agree(self):
        """Same plan JSON + same seeds -> identical campaign records."""
        original = deploy("mlp_bottom", "T4", batch=16, seed=1)
        restored = ProtectedSession(
            DeploymentPlan.from_json(original.plan.to_json()), seed=1
        )
        r1 = original.campaign("fc1", seed=4).run(16)
        r2 = restored.campaign("fc1", seed=4).run(16)
        assert records_identical(r1.trials, r2.trials)
