"""Deployment-plan and policy tests: tokens, JSON round trips, policies."""

import json

import pytest

from repro.abft import MultiChecksumGlobalABFT, scheme_from_token, scheme_token
from repro.api import (
    CallablePolicy,
    DeploymentPlan,
    FixedPolicy,
    IntensityGuidedPolicy,
    SchemePolicy,
    as_policy,
)
from repro.core import IntensityGuidedABFT
from repro.errors import ConfigurationError
from repro.gpu import T4
from repro.nn import build_model
from repro.utils.serde import model_selection_to_json


@pytest.fixture(scope="module")
def mlp():
    return build_model("mlp_bottom", batch=16)


@pytest.fixture(scope="module")
def guided_plan(mlp):
    return IntensityGuidedPolicy().assign(mlp, T4)


class TestSchemeTokens:
    @pytest.mark.parametrize("token", ["global", "thread_onesided", "none"])
    def test_plain_tokens_round_trip(self, token):
        scheme = scheme_from_token(token)
        assert scheme.name == token
        assert scheme_token(scheme) == token

    def test_global_multi_token_carries_checksum_count(self):
        scheme = scheme_from_token("global_multi:4")
        assert isinstance(scheme, MultiChecksumGlobalABFT)
        assert scheme.num_checksums == 4
        assert scheme_token(scheme) == "global_multi:4"
        assert scheme.cache_token == ("global_multi", 4)

    def test_bare_global_multi_uses_default(self):
        scheme = scheme_from_token("global_multi")
        assert isinstance(scheme, MultiChecksumGlobalABFT)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown ABFT scheme"):
            scheme_from_token("quantum")

    def test_unknown_scheme_error_lists_global_multi(self):
        """The known-tokens list must include the whole token
        namespace, not just get_scheme's registry."""
        with pytest.raises(ConfigurationError, match="global_multi"):
            scheme_from_token("global_mutli:2")

    def test_malformed_arg_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            scheme_from_token("global_multi:two")

    def test_typo_with_arg_reports_unknown_scheme(self):
        """A typo'd name with an argument must name the real problem."""
        with pytest.raises(ConfigurationError, match="unknown ABFT scheme"):
            scheme_from_token("glbal_multi:2")

    def test_arg_on_parameterless_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="no constructor"):
            scheme_from_token("global:2")


class TestDeploymentPlanJson:
    def test_round_trip_is_lossless(self, guided_plan):
        restored = DeploymentPlan.from_json(guided_plan.to_json())
        assert restored == guided_plan

    def test_round_trip_preserves_global_multi_cache_token(self, mlp):
        plan = FixedPolicy("global_multi:3").assign(mlp, T4)
        restored = DeploymentPlan.from_json(plan.to_json())
        schemes = restored.build_schemes()
        assert all(
            s.cache_token == ("global_multi", 3) for s in schemes.values()
        )
        # Shared instance per token: prepared state is shareable.
        assert len({id(s) for s in schemes.values()}) == 1

    def test_aggregates_survive_round_trip(self, guided_plan):
        restored = DeploymentPlan.from_json(guided_plan.to_json())
        assert restored.guided_overhead_percent == pytest.approx(
            guided_plan.guided_overhead_percent
        )
        assert restored.scheme_overhead_percent("global") == pytest.approx(
            guided_plan.scheme_overhead_percent("global")
        )

    def test_loads_select_json_schema(self, mlp):
        """`repro select --json` output is loadable deployment input."""
        selection = IntensityGuidedABFT(T4).select_for_model(mlp)
        plan = DeploymentPlan.from_json(model_selection_to_json(selection))
        assert plan.model == "mlp_bottom"
        assert plan.assignment() == {
            sel.layer_name: sel.chosen for sel in selection.layers
        }
        assert plan.guided_overhead_percent == pytest.approx(
            selection.guided_overhead_percent
        )

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            DeploymentPlan.from_json("{nope")

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="not a deployment plan"):
            DeploymentPlan.from_json(json.dumps({"model": "x"}))

    def test_bad_token_in_plan_rejected(self, guided_plan):
        data = guided_plan.to_dict()
        data["layers"][0]["scheme"] = "quantum"
        with pytest.raises(ConfigurationError, match="unknown ABFT scheme"):
            DeploymentPlan.from_dict(data)

    def test_duplicate_layer_rejected(self, guided_plan):
        data = guided_plan.to_dict()
        data["layers"].append(data["layers"][0])
        with pytest.raises(ConfigurationError, match="twice"):
            DeploymentPlan.from_dict(data)


class TestPlanAccessors:
    def test_matches_model_selection(self, mlp, guided_plan):
        selection = IntensityGuidedABFT(T4).select_for_model(mlp)
        assert guided_plan.guided_overhead_percent == pytest.approx(
            selection.guided_overhead_percent
        )
        assert guided_plan.scheme_overhead_percent(
            "thread_onesided"
        ) == pytest.approx(selection.scheme_overhead_percent("thread_onesided"))
        assert guided_plan.selection_counts == selection.selection_counts

    def test_layer_lookup(self, guided_plan):
        assert guided_plan.layer("fc1").name == "fc1"
        with pytest.raises(ConfigurationError, match="no layer"):
            guided_plan.layer("fc9")

    def test_validate_layer_names(self, guided_plan):
        guided_plan.validate_layer_names(["fc0", "fc1", "fc2"])
        with pytest.raises(ConfigurationError, match="missing"):
            guided_plan.validate_layer_names(["fc0", "fc1", "fc2", "fc3"])

    def test_metadata_from_graph(self, mlp, guided_plan):
        assert guided_plan.batch == mlp.batch
        assert guided_plan.input_desc == mlp.input_desc
        assert all(layer.kind == "linear" for layer in guided_plan)


class TestPolicies:
    def test_fixed_policy_assigns_everywhere(self, mlp):
        plan = FixedPolicy("global").assign(mlp, T4)
        assert set(plan.assignment().values()) == {"global"}
        assert plan.policy == "fixed:global"
        assert plan.has_predictions
        assert plan.guided_overhead_percent == pytest.approx(
            plan.scheme_overhead_percent("global")
        )

    def test_fixed_policy_rejects_bad_token_eagerly(self):
        with pytest.raises(ConfigurationError):
            FixedPolicy("quantum")

    def test_guided_policy_satisfies_protocol(self):
        assert isinstance(IntensityGuidedPolicy(), SchemePolicy)
        assert isinstance(FixedPolicy("global"), SchemePolicy)

    def test_callable_policy_mapping(self, mlp):
        def alternate(model, spec):
            return {
                layer.name: ("global" if i % 2 else "thread_onesided")
                for i, layer in enumerate(model)
            }

        plan = CallablePolicy(alternate).assign(mlp, T4)
        assert plan.assignment()["fc0"] == "thread_onesided"
        assert plan.assignment()["fc1"] == "global"
        assert plan.policy == "alternate"
        assert not plan.has_predictions
        with pytest.raises(ConfigurationError, match="no latency"):
            _ = plan.guided_overhead_percent

    def test_callable_policy_rejects_partial_assignment(self, mlp):
        with pytest.raises(ConfigurationError, match="missing"):
            CallablePolicy(lambda m, s: {"fc0": "global"}).assign(mlp, T4)

    def test_callable_policy_rejects_unknown_layers(self, mlp):
        def bad(model, spec):
            assignment = {layer.name: "global" for layer in model}
            assignment["fc9"] = "global"
            return assignment

        with pytest.raises(ConfigurationError, match="unknown"):
            CallablePolicy(bad).assign(mlp, T4)

    def test_as_policy_normalization(self):
        assert isinstance(as_policy("guided"), IntensityGuidedPolicy)
        assert isinstance(as_policy("fixed:global"), FixedPolicy)
        assert as_policy("global_multi:2").token == "global_multi:2"
        policy = IntensityGuidedPolicy()
        assert as_policy(policy) is policy
        assert isinstance(as_policy(lambda m, s: {}), CallablePolicy)
        with pytest.raises(ConfigurationError):
            as_policy(42)


class TestPlanSchemaVersion:
    """Plans declare their schema version and reject unknown ones."""

    def test_exported_plans_declare_current_version(self, guided_plan):
        from repro.api.plan import PLAN_SCHEMA_VERSION

        data = guided_plan.to_dict()
        assert data["schema_version"] == PLAN_SCHEMA_VERSION

    def test_versioned_payload_round_trips(self, guided_plan):
        text = guided_plan.to_json()
        assert json.loads(text)["schema_version"] == 2
        assert DeploymentPlan.from_json(text) == guided_plan

    def test_legacy_payload_without_version_default_migrates(
        self, guided_plan
    ):
        data = guided_plan.to_dict()
        del data["schema_version"]
        assert DeploymentPlan.from_dict(data) == guided_plan

    def test_explicit_version_1_accepted(self, guided_plan):
        data = guided_plan.to_dict()
        data["schema_version"] = 1
        assert DeploymentPlan.from_dict(data) == guided_plan

    def test_unknown_version_raises_plan_error(self, guided_plan):
        from repro.errors import PlanError

        data = guided_plan.to_dict()
        data["schema_version"] = 99
        with pytest.raises(PlanError, match="schema_version 99"):
            DeploymentPlan.from_dict(data)

    def test_non_integer_version_raises_plan_error(self, guided_plan):
        from repro.errors import PlanError

        data = guided_plan.to_dict()
        data["schema_version"] = "v2"
        with pytest.raises(PlanError, match="schema_version"):
            DeploymentPlan.from_dict(data)

    def test_plan_error_is_configuration_error(self):
        from repro.errors import PlanError

        assert issubclass(PlanError, ConfigurationError)
