"""Tests for the pre-deployment profiler."""

import pytest

from repro.core import PredeploymentProfiler
from repro.errors import ProfilingError
from repro.gemm import DEFAULT_TILE_CONFIGS, GemmProblem
from repro.gpu import T4


@pytest.fixture
def profiler():
    return PredeploymentProfiler(T4)


class TestProfiling:
    def test_profiles_baseline_plus_schemes(self, profiler):
        entries = profiler.profile(GemmProblem(256, 256, 256))
        assert set(entries) == {"none", "global", "thread_onesided"}

    def test_baseline_is_fastest(self, profiler):
        # Redundant execution can never be faster than no protection
        # under the same enumeration.
        entries = profiler.profile(GemmProblem(256, 256, 256))
        assert all(
            entries["none"].time_s <= e.time_s
            for name, e in entries.items() if name != "none"
        )

    def test_best_tile_minimizes_time(self, profiler):
        p = GemmProblem(512, 512, 512)
        best = profiler.profile(p)["none"]
        for tile in DEFAULT_TILE_CONFIGS:
            from repro.abft import get_scheme

            plan = get_scheme("none").plan(p, tile)
            assert best.time_s <= plan.modeled_time(T4) + 1e-15

    def test_baseline_can_differ_in_tile_from_scheme(self, profiler):
        # The enumeration is per-scheme; at minimum the entries carry
        # their own tile choices.
        entries = profiler.profile(GemmProblem(64, 2048, 64))
        assert entries["none"].tile is not None
        assert entries["thread_onesided"].tile is not None

    def test_cache_by_shape(self, profiler):
        a = profiler.profile(GemmProblem(128, 128, 128, label="x"))
        b = profiler.profile(GemmProblem(128, 128, 128, label="y"))
        assert a is b  # same dict object: cached by (M, N, K)

    def test_scheme_time_accessor(self, profiler):
        p = GemmProblem(128, 128, 128)
        assert profiler.scheme_time(p, "global") == profiler.profile(p)["global"].time_s

    def test_unknown_scheme_time_raises(self, profiler):
        with pytest.raises(ProfilingError):
            profiler.scheme_time(GemmProblem(8, 8, 8), "nonexistent")

    def test_empty_schemes_rejected(self):
        with pytest.raises(ProfilingError):
            PredeploymentProfiler(T4, schemes=())

    def test_empty_tiles_rejected(self):
        with pytest.raises(ProfilingError):
            PredeploymentProfiler(T4, tiles=())

    def test_scheme_instances_accepted(self):
        from repro.abft import GlobalABFT

        prof = PredeploymentProfiler(T4, schemes=[GlobalABFT()])
        entries = prof.profile(GemmProblem(64, 64, 64))
        assert "global" in entries
