"""Tests for JSON export of selection results."""

import json

import pytest

from repro.core import IntensityGuidedABFT
from repro.gpu import T4
from repro.nn import build_model
from repro.utils.serde import (
    layer_selection_to_dict,
    model_selection_to_dict,
    model_selection_to_json,
)


@pytest.fixture(scope="module")
def selection():
    return IntensityGuidedABFT(T4).select_for_model(build_model("mlp_bottom"))


class TestLayerDict:
    def test_schema(self, selection):
        d = layer_selection_to_dict(selection.layers[0])
        assert set(d) == {
            "layer", "gemm", "arithmetic_intensity", "baseline_s",
            "scheme_times_s", "chosen", "overheads_percent",
        }
        assert set(d["gemm"]) == {"m", "n", "k"}

    def test_chosen_is_in_times(self, selection):
        d = layer_selection_to_dict(selection.layers[0])
        assert d["chosen"] in d["scheme_times_s"]


class TestModelDict:
    def test_schema(self, selection):
        d = model_selection_to_dict(selection)
        assert d["model"] == "mlp_bottom"
        assert d["device"] == "T4"
        assert len(d["layers"]) == 3
        assert "global" in d["schemes"]
        assert d["guided"]["overhead_percent"] <= d["schemes"]["global"]["overhead_percent"]

    def test_totals_consistent(self, selection):
        d = model_selection_to_dict(selection)
        assert d["guided"]["total_s"] == pytest.approx(
            sum(l["scheme_times_s"][l["chosen"]] for l in d["layers"])
        )

    def test_json_round_trip(self, selection):
        text = model_selection_to_json(selection)
        parsed = json.loads(text)
        assert parsed["model"] == "mlp_bottom"
        assert isinstance(parsed["layers"], list)
