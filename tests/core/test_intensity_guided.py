"""Tests for intensity-guided per-layer selection (the paper's core)."""

import pytest

from repro.core import IntensityGuidedABFT, analytical_choice
from repro.errors import ProfilingError
from repro.gemm import GemmProblem
from repro.gpu import T4
from repro.nn import build_model


@pytest.fixture(scope="module")
def guided():
    return IntensityGuidedABFT(T4)


@pytest.fixture(scope="module")
def resnet_selection(guided):
    return guided.select_for_model(build_model("resnet50"))


class TestPerLayerSelection:
    def test_bandwidth_bound_layer_prefers_thread_level(self, guided):
        # AI 85 << CMR 203.
        sel = guided.select_for_problem(GemmProblem(256, 256, 256))
        assert sel.chosen == "thread_onesided"

    def test_compute_bound_layer_prefers_global(self, guided):
        # AI 683 >> CMR 203.
        sel = guided.select_for_problem(GemmProblem(2048, 2048, 2048))
        assert sel.chosen == "global"

    def test_chosen_is_argmin(self, guided):
        sel = guided.select_for_problem(GemmProblem(512, 512, 512))
        assert sel.chosen_time_s == min(sel.scheme_times_s.values())

    def test_selection_never_worse_than_either_scheme(self, resnet_selection):
        """§6.2: 'intensity-guided ABFT, by design, always performs at
        least as well as global ABFT' (and as thread-level ABFT)."""
        guided_pct = resnet_selection.guided_overhead_percent
        assert guided_pct <= resnet_selection.scheme_overhead_percent("global") + 1e-9
        assert guided_pct <= resnet_selection.scheme_overhead_percent("thread_onesided") + 1e-9

    def test_mixed_model_uses_both_schemes(self, resnet_selection):
        """§6.3: even high-intensity NNs contain bandwidth-bound layers,
        so the per-layer selection is genuinely mixed for ResNet-50."""
        counts = resnet_selection.selection_counts
        assert set(counts) == {"global", "thread_onesided"}

    def test_layer_records_intensity(self, resnet_selection):
        for layer in resnet_selection.layers:
            assert layer.intensity == pytest.approx(
                layer.problem.arithmetic_intensity(padded=True)
            )


class TestModelTotals:
    def test_totals_are_sums_of_layers(self, resnet_selection):
        assert resnet_selection.baseline_s == pytest.approx(
            sum(l.baseline_s for l in resnet_selection.layers)
        )
        assert resnet_selection.guided_total_s == pytest.approx(
            sum(l.chosen_time_s for l in resnet_selection.layers)
        )

    def test_overhead_metric_definition(self, resnet_selection):
        # (T_r - T_o)/T_o * 100 (paper §6.2).
        t_r = resnet_selection.scheme_total_s("global")
        t_o = resnet_selection.baseline_s
        assert resnet_selection.scheme_overhead_percent("global") == pytest.approx(
            (t_r - t_o) / t_o * 100.0
        )


class TestAnalyticalChoice:
    def test_below_cmr_picks_thread(self):
        assert analytical_choice(GemmProblem(256, 256, 256), T4) == "thread_onesided"

    def test_above_cmr_picks_global(self):
        assert analytical_choice(GemmProblem(2048, 2048, 2048), T4) == "global"

    def test_agreement_with_empirical_profiling(self, guided):
        """§7.2: the analytical AI-vs-CMR rule should usually agree with
        the empirical profiler; require >= 80% agreement over a sweep."""
        sizes = [32, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048]
        agree = 0
        for s in sizes:
            p = GemmProblem(s, s, s)
            if analytical_choice(p, T4) == guided.select_for_problem(p).chosen:
                agree += 1
        assert agree / len(sizes) >= 0.8


class TestConfiguration:
    def test_empty_candidates_rejected(self):
        with pytest.raises(ProfilingError):
            IntensityGuidedABFT(T4, candidates=())

    def test_custom_candidates(self):
        guided = IntensityGuidedABFT(
            T4, candidates=("global", "thread_onesided", "thread_twosided")
        )
        sel = guided.select_for_problem(GemmProblem(128, 128, 128))
        assert set(sel.scheme_times_s) == {
            "global", "thread_onesided", "thread_twosided"
        }
