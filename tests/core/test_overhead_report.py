"""Tests for the overhead metric and report tables."""

import pytest

from repro.core import (
    IntensityGuidedABFT,
    layer_selection_table,
    model_overhead_table,
    overhead_percent,
    reduction_factor,
)
from repro.errors import ProfilingError
from repro.gpu import T4
from repro.nn import build_model


class TestOverheadMetric:
    def test_definition(self):
        assert overhead_percent(1.1, 1.0) == pytest.approx(10.0)

    def test_zero_overhead(self):
        assert overhead_percent(2.0, 2.0) == 0.0

    def test_rejects_non_positive_baseline(self):
        with pytest.raises(ProfilingError):
            overhead_percent(1.0, 0.0)

    def test_rejects_negative_redundant_time(self):
        with pytest.raises(ProfilingError):
            overhead_percent(-1.0, 1.0)

    def test_reduction_factor(self):
        # The paper's headline: 17% -> 4.6% is a 3.7x reduction (Coral).
        assert reduction_factor(17.0, 4.6) == pytest.approx(3.7, abs=0.01)

    def test_reduction_rejects_non_positive(self):
        with pytest.raises(ProfilingError):
            reduction_factor(10.0, 0.0)


class TestReportTables:
    @pytest.fixture(scope="class")
    def selections(self):
        guided = IntensityGuidedABFT(T4)
        return [guided.select_for_model(build_model(n)) for n in ("mlp_bottom", "coral")]

    def test_model_table_rows_and_columns(self, selections):
        table = model_overhead_table(selections)
        assert len(table) == 2
        out = table.render()
        assert "mlp_bottom" in out and "coral" in out
        assert "intensity-guided" in out

    def test_layer_table(self, selections):
        table = layer_selection_table(selections[0])
        out = table.render()
        assert "chosen" in out
        assert len(table) == 3  # MLP-Bottom has three layers

    def test_layer_table_max_rows(self, selections):
        table = layer_selection_table(selections[1], max_rows=2)
        assert len(table) == 2
