"""Dtype-aware pricing: the INT8 pipe through selection and policies.

The quantized pipeline changes two numbers in the analytic model — the
matrix-math throughput (the device's INT8 pipe) and the operand width
(one byte) — and everything downstream must follow: CMR doubles on the
T4, arithmetic intensity doubles at fixed shape, and intensity-guided
selection over ``@int8`` tokens can flip a layer across the
compute/bandwidth boundary that its FP16 twin sits on one side of.
"""

import pytest

from repro.api import as_policy
from repro.config import DEFAULT_CONSTANTS, INT8_CONSTANTS
from repro.core import IntensityGuidedABFT
from repro.errors import ConfigurationError
from repro.gemm import GemmProblem
from repro.gpu import get_gpu
from repro.nn import TransformerBlockSpec, build_transformer_graph


class TestForDtype:
    def test_fp16_is_identity(self):
        t4 = get_gpu("T4")
        assert t4.for_dtype("fp16") is t4

    def test_int8_swaps_the_matrix_pipe(self):
        t4 = get_gpu("T4")
        int8 = t4.for_dtype("int8")
        assert int8.matmul_flops == 130.0e12
        assert int8.cmr == pytest.approx(2 * t4.cmr)
        assert int8.mem_bandwidth == t4.mem_bandwidth

    def test_jetson_int8_is_its_evaluated_pipe(self):
        jetson = get_gpu("Jetson-AGX-Xavier")
        assert jetson.for_dtype("int8").matmul_flops == jetson.matmul_flops

    @pytest.mark.parametrize("device", ["V100", "P4"])
    def test_devices_without_int8_pipe_refuse(self, device):
        with pytest.raises(ConfigurationError, match="no modeled INT8"):
            get_gpu(device).for_dtype("int8")

    def test_unknown_dtype_refuses(self):
        with pytest.raises(ConfigurationError, match="unknown pipeline dtype"):
            get_gpu("T4").for_dtype("fp8")


class TestInt8Constants:
    def test_operand_width_is_one_byte(self):
        assert INT8_CONSTANTS.fp16_bytes == 1
        assert DEFAULT_CONSTANTS.fp16_bytes == 2

    def test_intensity_doubles_at_fixed_shape(self):
        p = GemmProblem(512, 4096, 1024)
        fp16 = p.arithmetic_intensity(padded=True)
        int8 = p.flops(padded=True) / p.bytes_moved(padded=True, dtype_bytes=1)
        assert int8 == pytest.approx(2 * fp16)


class TestGuidedInt8:
    def test_tokens_carry_the_dtype(self):
        guided = IntensityGuidedABFT(get_gpu("T4"), dtype="int8")
        sel = guided.select_for_problem(GemmProblem(64, 64, 64))
        assert set(sel.scheme_times_s) == {"global@int8", "thread_onesided@int8"}
        assert sel.chosen.endswith("@int8")

    @pytest.mark.parametrize("dtype", ["fp16", "int8"])
    def test_intra_block_flip_on_the_large_block(self, dtype):
        """The transformer_abft experiment's claim, pinned: attention
        GEMMs go thread-level while the FFN projection goes global, in
        the same block on the same device, on both pipelines."""
        spec = TransformerBlockSpec(
            d_model=1024, n_heads=16, d_ff=4096, seq_len=512
        )
        graph = build_transformer_graph("block", spec=spec)
        guided = IntensityGuidedABFT(get_gpu("T4"), dtype=dtype)
        sel = guided.select_for_model(graph)
        chosen = {
            layer.layer_name.rsplit("/", 1)[-1]: layer.chosen
            for layer in sel.layers
        }
        suffix = "" if dtype == "fp16" else "@int8"
        assert chosen["attn.h0.scores"] == f"thread_onesided{suffix}"
        assert chosen["ffn.fc1"] == f"global{suffix}"
        # By construction guided is never slower than either uniform.
        assert sel.guided_total_s <= sel.scheme_total_s(f"global{suffix}")
        assert sel.guided_total_s <= sel.scheme_total_s(
            f"thread_onesided{suffix}"
        )


class TestPolicies:
    def test_guided_int8_policy_name_and_tokens(self):
        policy = as_policy("guided@int8")
        assert policy.name == "guided@int8"
        plan = policy.assign(
            build_transformer_graph("transformer_decoder"), get_gpu("T4")
        )
        assert all(layer.scheme.endswith("@int8") for layer in plan)

    def test_fixed_int8_policy_prices_the_quantized_pipe(self):
        graph = build_transformer_graph("transformer_decoder")
        t4 = get_gpu("T4")
        fp16 = as_policy("fixed:global").assign(graph, t4)
        int8 = as_policy("fixed:global@int8").assign(graph, t4)
        assert int8.layers[0].scheme == "global@int8"
        # One-byte operands halve the DRAM bytes of the bandwidth-bound
        # layers, so the INT8 deployment is strictly faster end to end.
        assert int8.guided_total_s < fp16.guided_total_s

    def test_fixed_int8_on_a_device_without_the_pipe_refuses(self):
        with pytest.raises(ConfigurationError, match="no modeled INT8"):
            as_policy("fixed:global@int8").assign(
                build_transformer_graph("transformer_decoder"), get_gpu("V100")
            )
