"""Tests for the command-line interface."""

import json

import pytest

from repro.api import DeploymentPlan, ProtectedSession
from repro.cli import main


class TestListing:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "mlp_bottom" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "T4" in out and "CMR 203" in out


class TestIntensity:
    def test_mlp_bottom(self, capsys):
        assert main(["intensity", "mlp_bottom"]) == 0
        out = capsys.readouterr().out
        assert "aggregate AI 7.4" in out

    def test_rejects_unknown_model(self, capsys):
        with pytest.raises(SystemExit):
            main(["intensity", "not_a_model"])


class TestSelect:
    def test_human_readable(self, capsys):
        assert main(["select", "mlp_bottom", "--device", "T4"]) == 0
        out = capsys.readouterr().out
        assert "intensity-guided" in out
        assert "thread_onesided" in out

    def test_json_output_parses(self, capsys):
        assert main(["select", "mlp_bottom", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["model"] == "mlp_bottom"
        assert parsed["device"] == "T4"
        assert len(parsed["layers"]) == 3

    def test_device_choice(self, capsys):
        assert main(["select", "mlp_bottom", "--device", "P4"]) == 0
        assert "thread" in capsys.readouterr().out


class TestDeploy:
    def test_human_readable(self, capsys):
        assert main(["deploy", "mlp_bottom", "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "deployment plan" in out
        assert "deployed plan" in out and "uniform global" in out

    def test_json_round_trips_into_runnable_session(self, capsys):
        assert main(["deploy", "mlp_bottom", "--batch", "16", "--json"]) == 0
        plan = DeploymentPlan.from_json(capsys.readouterr().out)
        assert plan.model == "mlp_bottom" and plan.device == "T4"
        session = ProtectedSession(plan)
        result = session.campaign("fc1", seed=1).run(8)
        assert result.coverage == 1.0

    def test_fixed_policy_token(self, capsys):
        assert main([
            "deploy", "mlp_bottom", "--batch", "16",
            "--policy", "fixed:global_multi:2", "--json",
        ]) == 0
        plan = DeploymentPlan.from_json(capsys.readouterr().out)
        assert set(plan.assignment().values()) == {"global_multi:2"}

    def test_unknown_policy_token_fails_cleanly(self, capsys):
        assert main([
            "deploy", "mlp_bottom", "--policy", "fixed:quantum"
        ]) == 1
        assert "unknown ABFT scheme" in capsys.readouterr().err


class TestCampaign:
    def test_policy_driven_campaign(self, capsys):
        assert main([
            "campaign", "mlp_bottom", "--batch", "16",
            "--layer", "fc1", "--trials", "12",
        ]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "thread_onesided" in out

    def test_campaign_from_plan_file(self, capsys, tmp_path):
        assert main(["deploy", "mlp_bottom", "--batch", "16", "--json"]) == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        assert main([
            "campaign", "mlp_bottom", "--plan", str(plan_file),
            "--layer", "fc2", "--trials", "8",
        ]) == 0
        assert "fc2" in capsys.readouterr().out

    def test_default_layer_is_first(self, capsys):
        assert main([
            "campaign", "mlp_bottom", "--batch", "16", "--trials", "8"
        ]) == 0
        assert "layer fc0" in capsys.readouterr().out

    def test_multi_fault_trials(self, capsys):
        assert main([
            "campaign", "mlp_bottom", "--batch", "16", "--layer", "fc1",
            "--policy", "fixed:global_multi:2",
            "--trials", "8", "--faults-per-trial", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "global_multi:2" in out and "2 fault(s) each" in out

    def test_missing_plan_file_fails_cleanly(self, capsys):
        assert main([
            "campaign", "mlp_bottom", "--plan", "/nonexistent/plan.json",
            "--trials", "8",
        ]) == 1
        assert "cannot read plan file" in capsys.readouterr().err

    def test_plan_model_mismatch_rejected(self, capsys, tmp_path):
        assert main(["deploy", "mlp_bottom", "--batch", "16", "--json"]) == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        assert main([
            "campaign", "mlp_top", "--plan", str(plan_file), "--trials", "8"
        ]) == 1
        assert "deploys 'mlp_bottom'" in capsys.readouterr().err

    def test_plan_geometry_flags_rejected(self, capsys, tmp_path):
        """--plan fixes the deployment: explicit geometry flags error
        instead of being silently overridden by the plan's shapes."""
        assert main(["deploy", "mlp_bottom", "--batch", "16", "--json"]) == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        assert main([
            "campaign", "mlp_bottom", "--plan", str(plan_file),
            "--batch", "32", "--height", "224", "--trials", "8",
        ]) == 1
        err = capsys.readouterr().err
        assert "--batch, --height: not allowed with --plan" in err

    def test_plan_device_and_policy_flags_rejected(self, capsys, tmp_path):
        assert main(["deploy", "mlp_bottom", "--batch", "16", "--json"]) == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        assert main([
            "campaign", "mlp_bottom", "--plan", str(plan_file),
            "--device", "P4", "--trials", "8",
        ]) == 1
        assert "--device" in capsys.readouterr().err
        assert main([
            "campaign", "mlp_bottom", "--plan", str(plan_file),
            "--policy", "guided", "--trials", "8",
        ]) == 1
        assert "--policy: not allowed with --plan" in capsys.readouterr().err

    def test_rejects_nonpositive_trials(self, capsys):
        assert main([
            "campaign", "mlp_bottom", "--trials", "0"
        ]) == 2
        assert "positive" in capsys.readouterr().err

    def test_unknown_layer_fails_cleanly(self, capsys):
        assert main([
            "campaign", "mlp_bottom", "--batch", "16", "--layer", "fc9",
            "--trials", "8",
        ]) == 1
        assert "no layer" in capsys.readouterr().err


class TestSweepAndExperiments:
    def test_sweep(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "M=N=K" in out and "2048" in out

    def test_experiments_by_name(self, capsys):
        assert main(["experiments", "sec33", "table1"]) == 0
        out = capsys.readouterr().out
        assert "sec33" in out and "table1" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "multi_fault_coverage" in out and "fault_coverage" in out

    def test_experiments_list_rejects_names(self, capsys):
        """--list must not silently swallow (possibly misspelled) names."""
        assert main(["experiments", "fig99", "--list"]) == 2
        assert "takes no experiment names" in capsys.readouterr().err


class TestSdc:
    def test_propagation_campaign_with_recovery(self, capsys):
        assert main([
            "sdc", "mlp_bottom", "--trials", "12", "--layer", "fc1",
            "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "struck layer fc1" in out
        assert "undetected SDC" in out
        assert "bit-identity verified" in out

    def test_no_recovery_drops_recovery_lines(self, capsys):
        assert main([
            "sdc", "mlp_bottom", "--trials", "12", "--no-recovery",
        ]) == 0
        out = capsys.readouterr().out
        assert "detected corruption" in out
        assert "recovered" not in out

    def test_default_layer_is_first(self, capsys):
        assert main(["sdc", "mlp_bottom", "--trials", "8"]) == 0
        assert "struck layer fc0" in capsys.readouterr().out

    def test_rejects_nonpositive_trials(self, capsys):
        assert main(["sdc", "mlp_bottom", "--trials", "0"]) == 2
        assert "--trials must be positive" in capsys.readouterr().err

    def test_rejects_non_runnable_model(self, capsys):
        """Branching zoo models have no numeric realization to strike."""
        assert main(["sdc", "resnet50", "--trials", "8"]) == 1
        assert "no runnable numeric realization" in capsys.readouterr().err

    def test_rejects_unknown_layer(self, capsys):
        assert main([
            "sdc", "mlp_bottom", "--trials", "8", "--layer", "nope"
        ]) == 1
        assert "no layer" in capsys.readouterr().err

    def test_missing_plan_file_fails_cleanly(self, capsys):
        assert main([
            "sdc", "mlp_bottom", "--plan", "/nonexistent/plan.json",
            "--trials", "8",
        ]) == 1
        assert "cannot read plan file" in capsys.readouterr().err

    def test_plan_model_mismatch_rejected(self, capsys, tmp_path):
        assert main(["deploy", "mlp_bottom", "--json"]) == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        assert main([
            "sdc", "mlp_top", "--plan", str(plan_file), "--trials", "8"
        ]) == 1
        assert "deploys 'mlp_bottom'" in capsys.readouterr().err

    def test_plan_policy_flag_rejected(self, capsys, tmp_path):
        assert main(["deploy", "mlp_bottom", "--json"]) == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        assert main([
            "sdc", "mlp_bottom", "--plan", str(plan_file),
            "--policy", "fixed:global", "--trials", "8",
        ]) == 1
        assert "not allowed with --plan" in capsys.readouterr().err

    def test_campaign_from_plan_file(self, capsys, tmp_path):
        assert main(["deploy", "mlp_bottom", "--json"]) == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        assert main([
            "sdc", "mlp_bottom", "--plan", str(plan_file),
            "--layer", "fc2", "--trials", "8",
        ]) == 0
        assert "struck layer fc2" in capsys.readouterr().out

    def test_rejects_bad_fault_model(self, capsys):
        with pytest.raises(SystemExit):
            main(["sdc", "mlp_bottom", "--fault-model", "cosmic"])
