"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestListing:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "mlp_bottom" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "T4" in out and "CMR 203" in out


class TestIntensity:
    def test_mlp_bottom(self, capsys):
        assert main(["intensity", "mlp_bottom"]) == 0
        out = capsys.readouterr().out
        assert "aggregate AI 7.4" in out

    def test_rejects_unknown_model(self, capsys):
        with pytest.raises(SystemExit):
            main(["intensity", "not_a_model"])


class TestSelect:
    def test_human_readable(self, capsys):
        assert main(["select", "mlp_bottom", "--device", "T4"]) == 0
        out = capsys.readouterr().out
        assert "intensity-guided" in out
        assert "thread_onesided" in out

    def test_json_output_parses(self, capsys):
        assert main(["select", "mlp_bottom", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["model"] == "mlp_bottom"
        assert parsed["device"] == "T4"
        assert len(parsed["layers"]) == 3

    def test_device_choice(self, capsys):
        assert main(["select", "mlp_bottom", "--device", "P4"]) == 0
        assert "thread" in capsys.readouterr().out


class TestSweepAndExperiments:
    def test_sweep(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "M=N=K" in out and "2048" in out

    def test_experiments_by_name(self, capsys):
        assert main(["experiments", "sec33", "table1"]) == 0
        out = capsys.readouterr().out
        assert "sec33" in out and "table1" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "multi_fault_coverage" in out and "fault_coverage" in out

    def test_experiments_list_rejects_names(self, capsys):
        """--list must not silently swallow (possibly misspelled) names."""
        assert main(["experiments", "fig99", "--list"]) == 2
        assert "takes no experiment names" in capsys.readouterr().err
