"""Tests for arithmetic-intensity accounting and roofline classification."""

import pytest

from repro.errors import ShapeError
from repro.gemm import GemmProblem
from repro.gpu import P4, T4
from repro.roofline import (
    Boundedness,
    aggregate_intensity,
    classify_problem,
    cmr_table,
    layer_intensities,
    roofline_time,
)


class TestIntensity:
    def test_layer_intensities_order_and_labels(self):
        problems = [GemmProblem(8, 8, 8, label="a"), GemmProblem(16, 16, 16)]
        out = layer_intensities(problems)
        assert [b.label for b in out] == ["a", "layer1"]

    def test_aggregate_is_flops_over_bytes(self):
        problems = [GemmProblem(64, 64, 64), GemmProblem(128, 128, 128)]
        agg = aggregate_intensity(problems)
        assert agg.intensity == pytest.approx(
            sum(p.flops() for p in problems) / sum(p.bytes_moved() for p in problems)
        )

    def test_aggregate_differs_from_mean_of_intensities(self):
        # The paper's metric weights layers by bytes, not uniformly.
        problems = [GemmProblem(8, 8, 8), GemmProblem(2048, 2048, 2048)]
        agg = aggregate_intensity(problems).intensity
        mean = sum(p.arithmetic_intensity() for p in problems) / 2
        assert agg != pytest.approx(mean)

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ShapeError):
            aggregate_intensity([])

    def test_dlrm_paper_value(self):
        # MLP-Bottom at batch 1: 13->512->256->64 with pad-to-8 gives 7.4.
        problems = [
            GemmProblem(1, 512, 13),
            GemmProblem(1, 256, 512),
            GemmProblem(1, 64, 256),
        ]
        assert aggregate_intensity(problems).intensity == pytest.approx(7.4, abs=0.05)


class TestClassification:
    def test_bandwidth_bound_below_cmr(self):
        # Size-512 square GEMM: AI = 170.7 < T4 CMR 203 (Fig. 12 dashed line).
        point = classify_problem(GemmProblem(512, 512, 512), T4)
        assert point.boundedness is Boundedness.BANDWIDTH_BOUND
        assert point.headroom > 0

    def test_compute_bound_above_cmr(self):
        point = classify_problem(GemmProblem(1024, 1024, 1024), T4)
        assert point.boundedness is Boundedness.COMPUTE_BOUND
        assert point.headroom == 0.0

    def test_same_problem_flips_on_lower_cmr_device(self):
        # On the P4 (CMR 57), the 256-square GEMM is compute bound while
        # on the T4 it is bandwidth bound: boundedness is device-relative.
        p = GemmProblem(256, 256, 256)
        assert classify_problem(p, T4).boundedness is Boundedness.BANDWIDTH_BOUND
        assert classify_problem(p, P4).boundedness is Boundedness.COMPUTE_BOUND


class TestRooflineTime:
    def test_bandwidth_bound_time_is_memory_time(self):
        p = GemmProblem(64, 64, 64)
        assert roofline_time(p, T4) == pytest.approx(p.bytes_moved() / T4.mem_bandwidth)

    def test_compute_bound_time_is_compute_time(self):
        p = GemmProblem(4096, 4096, 4096)
        assert roofline_time(p, T4) == pytest.approx(p.flops() / T4.matmul_flops)


class TestCMRTable:
    def test_renders_all_devices(self):
        out = cmr_table().render()
        for device in ("T4", "P4", "V100", "A100", "Jetson"):
            assert device in out

    def test_t4_row_value(self):
        out = cmr_table(["T4"]).render()
        assert "203" in out
