"""Tests for the reference GEMM."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gemm import reference_gemm


class TestReferenceGemm:
    def test_returns_fp32(self, small_operands):
        a, b = small_operands
        assert reference_gemm(a, b).dtype == np.float32

    def test_quantizes_inputs_to_fp16(self):
        a = np.full((1, 1), 1.0 + 2.0 ** -13, dtype=np.float64)
        b = np.ones((1, 1), dtype=np.float64)
        out = reference_gemm(a, b)
        assert out[0, 0] == np.float32(np.float16(a[0, 0]))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            reference_gemm(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            reference_gemm(np.zeros(3), np.zeros((3, 2)))
