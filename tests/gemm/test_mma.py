"""Tests for the m16n8k8 MMA primitive."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gemm.mma import gemm_by_mma, mma_m16n8k8


class TestMMA:
    def test_matches_fp32_reference(self, rng):
        a = (rng.standard_normal((16, 8))).astype(np.float16)
        b = (rng.standard_normal((8, 8))).astype(np.float16)
        out = mma_m16n8k8(a, b)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(out, ref, rtol=0, atol=0)

    def test_accumulates_into_c(self, rng):
        a = rng.standard_normal((16, 8)).astype(np.float16)
        b = rng.standard_normal((8, 8)).astype(np.float16)
        c = np.ones((16, 8), dtype=np.float32)
        out = mma_m16n8k8(a, b, c)
        np.testing.assert_allclose(out - mma_m16n8k8(a, b), c, atol=1e-6)

    def test_does_not_mutate_input_accumulator(self, rng):
        a = rng.standard_normal((16, 8)).astype(np.float16)
        b = rng.standard_normal((8, 8)).astype(np.float16)
        c = np.zeros((16, 8), dtype=np.float32)
        mma_m16n8k8(a, b, c)
        assert np.all(c == 0)

    def test_quantizes_operands_to_fp16(self):
        # An FP32 operand value that is not representable in FP16 must
        # be rounded before multiplication, as Tensor Cores do.
        a = np.full((16, 8), 1.0 + 2.0 ** -12, dtype=np.float32)
        b = np.zeros((8, 8), dtype=np.float32)
        b[0, 0] = 1.0
        out = mma_m16n8k8(a, b)
        assert out[0, 0] == np.float32(np.float16(1.0 + 2.0 ** -12))

    @pytest.mark.parametrize(
        "a_shape,b_shape",
        [((8, 8), (8, 8)), ((16, 8), (8, 16)), ((16, 16), (8, 8))],
    )
    def test_rejects_wrong_shapes(self, a_shape, b_shape):
        with pytest.raises(ShapeError):
            mma_m16n8k8(np.zeros(a_shape, np.float16), np.zeros(b_shape, np.float16))


class TestGemmByMMA:
    def test_matches_reference(self, rng):
        a = (rng.standard_normal((32, 16)) * 0.5).astype(np.float16)
        b = (rng.standard_normal((16, 16)) * 0.5).astype(np.float16)
        out = gemm_by_mma(a, b)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-5)

    def test_rejects_unaligned(self):
        with pytest.raises(ShapeError):
            gemm_by_mma(np.zeros((20, 8), np.float16), np.zeros((8, 8), np.float16))

    def test_rejects_mismatched_inner(self):
        with pytest.raises(ShapeError):
            gemm_by_mma(np.zeros((16, 8), np.float16), np.zeros((16, 8), np.float16))
