"""Tests for GemmProblem and the paper's FLOP/byte accounting."""

import pytest

from repro.errors import ShapeError
from repro.gemm import GemmProblem


class TestPadding:
    def test_pads_to_multiple_of_eight(self):
        p = GemmProblem(1, 1000, 13)
        assert (p.m_pad, p.n_pad, p.k_pad) == (8, 1000, 16)

    def test_already_aligned_untouched(self):
        p = GemmProblem(64, 128, 256)
        assert (p.m_pad, p.n_pad, p.k_pad) == (64, 128, 256)

    def test_rejects_non_positive_dims(self):
        with pytest.raises(ShapeError):
            GemmProblem(0, 4, 4)


class TestAccounting:
    def test_flops_definition(self):
        p = GemmProblem(16, 8, 8)
        assert p.flops() == 2 * 16 * 8 * 8

    def test_bytes_definition_fp16(self):
        p = GemmProblem(16, 8, 8)
        assert p.bytes_moved() == 2 * (16 * 8 + 8 * 8 + 16 * 8)

    def test_padded_vs_unpadded(self):
        p = GemmProblem(1, 512, 512)
        assert p.flops(padded=True) == 8 * p.flops(padded=False)

    def test_custom_dtype_bytes(self):
        p = GemmProblem(8, 8, 8)
        assert p.bytes_moved(dtype_bytes=4) == 2 * p.bytes_moved(dtype_bytes=2)

    def test_rejects_bad_dtype_bytes(self):
        with pytest.raises(ShapeError):
            GemmProblem(8, 8, 8).bytes_moved(dtype_bytes=0)


class TestArithmeticIntensity:
    def test_square_intensity_scales_with_size(self):
        # For FP16 square GEMMs AI = 2n^3 / (3*2*n^2) = n/3 (Fig. 12).
        for n in (32, 256, 2048):
            p = GemmProblem(n, n, n)
            assert p.arithmetic_intensity() == pytest.approx(n / 3.0)

    def test_fig12_labels(self):
        # Fig. 12 annotates sizes 32..2048 with AI 10.7 .. 682.7.
        assert GemmProblem(32, 32, 32).arithmetic_intensity() == pytest.approx(10.7, abs=0.05)
        assert GemmProblem(2048, 2048, 2048).arithmetic_intensity() == pytest.approx(682.7, abs=0.05)

    def test_batch_one_fc_unpadded_intensity_near_one(self):
        # Fig. 5's minimum: ResNet-50's FC layer at batch one has AI ~ 1.
        p = GemmProblem(1, 1000, 2048)
        assert p.arithmetic_intensity(padded=False) == pytest.approx(1.0, abs=0.01)

    def test_resnet_downsample_intensity_511(self):
        # Fig. 5's maximum: layer4.0.downsample on HD inputs has AI ~ 511.
        p = GemmProblem(2040, 2048, 1024)
        assert p.arithmetic_intensity(padded=False) == pytest.approx(511, abs=1.0)


class TestLabel:
    def test_with_label(self):
        p = GemmProblem(8, 8, 8).with_label("conv1")
        assert p.label == "conv1"
        assert "conv1" in str(p)
