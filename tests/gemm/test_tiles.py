"""Tests for tile configurations and their invariants."""

import pytest

from repro.errors import TilingError
from repro.gemm import DEFAULT_TILE_CONFIGS, GemmProblem, TileConfig, enumerate_tiles, select_tile


class TestTileInvariants:
    def test_default_configs_are_valid(self):
        assert len(DEFAULT_TILE_CONFIGS) >= 6
        for tile in DEFAULT_TILE_CONFIGS:
            # Warp coverage: 32 threads x Mt x Nt == warp tile.
            assert tile.mw * tile.nw == 32 * tile.mt * tile.nt
            assert tile.mb % tile.mw == 0 and tile.nb % tile.nw == 0

    def test_threads_per_block(self):
        tile = TileConfig(mb=256, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
        assert tile.warps_per_block == 8
        assert tile.threads_per_block == 256

    def test_mmas_per_thread_step_matches_paper(self):
        # Fig. 3: Mt*Nt/2 MMAs per K-step.
        tile = TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
        assert tile.mmas_per_thread_step == 64

    def test_loaded_elements_per_step(self):
        # Fig. 3: the thread loads an Mt x 2 chunk of At and 2 x Nt of Bt.
        tile = TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
        assert tile.loaded_elements_per_step == 16 * 2 + 2 * 8

    def test_rejects_warp_not_dividing_block(self):
        with pytest.raises(TilingError):
            TileConfig(mb=96, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)

    def test_rejects_wrong_thread_coverage(self):
        with pytest.raises(TilingError):
            TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=8, nt=8)

    def test_rejects_odd_mt(self):
        # Each MMA consumes two consecutive A rows (Fig. 3).
        with pytest.raises(TilingError):
            TileConfig(mb=128, nb=128, kb=32, mw=32, nw=64, mt=1, nt=64)


class TestGridMath:
    def test_grid_covers_padded_problem(self):
        tile = TileConfig(mb=64, nb=64, kb=32, mw=32, nw=32, mt=8, nt=4)
        p = GemmProblem(100, 70, 40)
        rows, cols = tile.grid(p)
        assert rows * tile.mb >= p.m_pad and cols * tile.nb >= p.n_pad
        assert tile.blocks(p) == rows * cols

    def test_ksteps(self):
        tile = DEFAULT_TILE_CONFIGS[0]
        assert tile.ksteps(GemmProblem(8, 8, 64)) == 32

    def test_waste_fraction_zero_for_exact_fit(self):
        tile = TileConfig(mb=64, nb=64, kb=32, mw=32, nw=32, mt=8, nt=4)
        assert tile.waste_fraction(GemmProblem(128, 128, 64)) == pytest.approx(0.0)

    def test_waste_fraction_for_tiny_problem(self):
        tile = TileConfig(mb=256, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)
        waste = tile.waste_fraction(GemmProblem(8, 8, 8))
        assert waste > 0.99


class TestSelection:
    def test_select_prefers_low_waste(self):
        # A skinny batch-1 MLP problem should get a small tile.
        p = GemmProblem(1, 64, 256)
        tile = select_tile(p)
        assert tile.mb <= 64

    def test_select_prefers_large_tiles_for_big_problems(self):
        p = GemmProblem(2048, 2048, 2048)
        tile = select_tile(p)
        assert tile.mb * tile.nb >= 128 * 128

    def test_enumerate_rejects_empty(self):
        with pytest.raises(TilingError):
            enumerate_tiles(GemmProblem(8, 8, 8), candidates=())

    def test_registers_estimate_is_plausible(self):
        for tile in DEFAULT_TILE_CONFIGS:
            regs = tile.base_registers_per_thread()
            assert tile.mt * tile.nt < regs <= 255
