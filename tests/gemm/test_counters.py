"""Tests for mainloop cost counters."""

import pytest

from repro.gemm import GemmProblem, TileConfig, mainloop_cost
from repro.gemm.tiles import FLOPS_PER_MMA


@pytest.fixture
def tile():
    return TileConfig(mb=128, nb=128, kb=32, mw=64, nw=64, mt=16, nt=8)


class TestMainloopCost:
    def test_tc_flops_tile_quantized(self, tile):
        # A 100x100x100 problem runs as one 128x128 tile over K=104.
        cost = mainloop_cost(GemmProblem(100, 100, 100), tile)
        assert cost.tc_flops == 2 * 128 * 128 * 104

    def test_exact_fit_flops(self, tile):
        p = GemmProblem(256, 256, 128)
        cost = mainloop_cost(p, tile)
        assert cost.tc_flops == p.flops()

    def test_dram_bytes_use_paper_accounting(self, tile):
        p = GemmProblem(100, 100, 100)
        cost = mainloop_cost(p, tile)
        assert cost.dram_bytes == p.bytes_moved(padded=True)

    def test_threads_and_ksteps(self, tile):
        p = GemmProblem(256, 256, 64)
        cost = mainloop_cost(p, tile)
        assert cost.blocks == 4
        assert cost.threads_total == 4 * tile.threads_per_block
        assert cost.ksteps == 32

    def test_alu_scales_with_threads_and_ksteps(self, tile):
        small = mainloop_cost(GemmProblem(128, 128, 64), tile)
        double_k = mainloop_cost(GemmProblem(128, 128, 128), tile)
        assert double_k.alu_lane_ops == pytest.approx(2 * small.alu_lane_ops)

    def test_mma_instructions(self, tile):
        cost = mainloop_cost(GemmProblem(128, 128, 64), tile)
        assert cost.mma_instructions == pytest.approx(cost.tc_flops / FLOPS_PER_MMA)

    def test_issue_slots_positive_and_composite(self, tile):
        cost = mainloop_cost(GemmProblem(128, 128, 64), tile)
        assert cost.issue_slots > cost.mma_instructions


class TestToKernelWork:
    def test_baseline_roundtrip(self, tile):
        p = GemmProblem(128, 128, 64)
        cost = mainloop_cost(p, tile)
        work = cost.to_kernel_work()
        assert work.matmul_flops == cost.tc_flops
        assert work.dram_bytes == cost.dram_bytes
        assert work.registers_per_thread == cost.registers_per_thread
        assert work.launches == 1

    def test_extras_are_added(self, tile):
        p = GemmProblem(128, 128, 64)
        cost = mainloop_cost(p, tile)
        work = cost.to_kernel_work(
            extra_tc_flops=1000.0,
            extra_alu_ops=640.0,
            extra_bytes=100.0,
            extra_registers=8,
        )
        assert work.matmul_flops == cost.tc_flops + 1000.0
        assert work.alu_ops == cost.alu_lane_ops + 640.0
        assert work.dram_bytes == cost.dram_bytes + 100.0
        assert work.registers_per_thread == cost.registers_per_thread + 8
        # Extra issue slots follow from the extra instructions.
        assert work.issue_slots > cost.issue_slots
