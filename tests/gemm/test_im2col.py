"""Tests for conv->GEMM lowering."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gemm import conv_gemm_shape, conv_output_shape, im2col
from repro.gemm.im2col import conv_weights_to_gemm


def _direct_conv(x, w, stride, padding):
    """Naive direct convolution for cross-checking im2col."""
    b, c_in, h, wdt = x.shape
    c_out, _, kh, kw = w.shape
    ph, pw = padding
    sh, sw = stride
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (wdt + 2 * pw - kw) // sw + 1
    out = np.zeros((b, c_out, ho, wo), dtype=np.float32)
    for bi in range(b):
        for co in range(c_out):
            for i in range(ho):
                for j in range(wo):
                    patch = xp[bi, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                    out[bi, co, i, j] = np.sum(
                        patch.astype(np.float32) * w[co].astype(np.float32)
                    )
    return out


class TestShapes:
    def test_conv_output_shape_basic(self):
        assert conv_output_shape(32, 32, kernel=(3, 3), padding=(1, 1)) == (32, 32)

    def test_conv_output_shape_stride(self):
        # ResNet stem: 1080x1920, 7x7/2 pad 3 -> 540x960.
        assert conv_output_shape(
            1080, 1920, kernel=(7, 7), stride=(2, 2), padding=(3, 3)
        ) == (540, 960)

    def test_kernel_too_large_raises(self):
        with pytest.raises(ShapeError):
            conv_output_shape(4, 4, kernel=(7, 7))

    def test_conv_gemm_shape(self):
        # Paper §2.1 mapping: M = B*Ho*Wo, N = C_out, K = C_in*kh*kw.
        m, n, k = conv_gemm_shape(
            batch=64, in_channels=3, out_channels=16, h=50, w=50,
            kernel=(3, 3), padding=(1, 1),
        )
        assert (m, n, k) == (64 * 50 * 50, 16, 27)


class TestIm2colNumerics:
    @pytest.mark.parametrize(
        "stride,padding", [((1, 1), (0, 0)), ((1, 1), (1, 1)), ((2, 2), (1, 1))]
    )
    def test_im2col_gemm_equals_direct_conv(self, rng, stride, padding):
        x = (rng.standard_normal((2, 3, 8, 9)) * 0.5).astype(np.float16)
        w = (rng.standard_normal((4, 3, 3, 3)) * 0.5).astype(np.float16)
        a = im2col(x, kernel=(3, 3), stride=stride, padding=padding)
        b = conv_weights_to_gemm(w)
        c = a.astype(np.float32) @ b.astype(np.float32)
        ho, wo = conv_output_shape(8, 9, kernel=(3, 3), stride=stride, padding=padding)
        got = c.reshape(2, ho, wo, 4).transpose(0, 3, 1, 2)
        want = _direct_conv(x, w, stride, padding)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-4)

    def test_1x1_conv_is_plain_reshape(self, rng):
        x = rng.standard_normal((1, 5, 4, 4)).astype(np.float16)
        a = im2col(x, kernel=(1, 1))
        np.testing.assert_array_equal(
            a, x.transpose(0, 2, 3, 1).reshape(16, 5)
        )

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ShapeError):
            im2col(rng.standard_normal((3, 8, 8)).astype(np.float16), kernel=(3, 3))

    def test_weights_to_gemm_shape(self, rng):
        w = rng.standard_normal((4, 3, 5, 5)).astype(np.float16)
        b = conv_weights_to_gemm(w)
        assert b.shape == (75, 4)

    def test_weights_to_gemm_rejects_2d(self, rng):
        with pytest.raises(ShapeError):
            conv_weights_to_gemm(rng.standard_normal((4, 75)).astype(np.float16))
