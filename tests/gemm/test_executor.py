"""Tests for the numeric tiled GEMM executor."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gemm import GemmProblem, TileConfig, TiledGemm, reference_gemm
from repro.gemm.mma import gemm_by_mma


@pytest.fixture
def tile():
    return TileConfig(mb=64, nb=32, kb=32, mw=32, nw=16, mt=4, nt=4)


class TestPadding:
    def test_operands_zero_padded(self, tile, rng):
        p = GemmProblem(10, 9, 11)
        ex = TiledGemm(p, tile)
        a = rng.standard_normal((10, 11)).astype(np.float16)
        a_pad = ex.pad_a(a)
        assert a_pad.shape == (ex.m_full, ex.k_full)
        np.testing.assert_array_equal(a_pad[:10, :11], a)
        assert np.all(a_pad[10:, :] == 0) and np.all(a_pad[:, 11:] == 0)

    def test_padded_dims_cover_thread_tiles(self, tile):
        ex = TiledGemm(GemmProblem(10, 9, 11), tile)
        assert ex.m_full % tile.mt == 0
        assert ex.n_full % tile.nt == 0
        assert ex.k_full % 8 == 0

    def test_rejects_wrong_operand_shapes(self, tile, rng):
        ex = TiledGemm(GemmProblem(10, 9, 11), tile)
        with pytest.raises(ShapeError):
            ex.pad_a(rng.standard_normal((11, 10)).astype(np.float16))
        with pytest.raises(ShapeError):
            ex.pad_b(rng.standard_normal((9, 11)).astype(np.float16))


class TestNumerics:
    def test_matches_reference_gemm(self, tile, small_operands):
        a, b = small_operands
        ex = TiledGemm(GemmProblem(a.shape[0], b.shape[1], a.shape[1]), tile)
        c = ex.crop(ex.run(a, b))
        ref = reference_gemm(a, b)
        np.testing.assert_allclose(c, ref, rtol=1e-5, atol=1e-4)

    def test_matches_mma_by_mma_semantics(self, tile, rng):
        # The vectorized chunked execution must agree with the scalar
        # MMA-by-MMA triple loop to within fp32 reassociation noise.
        a = (rng.standard_normal((32, 24)) * 0.25).astype(np.float16)
        b = (rng.standard_normal((24, 16)) * 0.25).astype(np.float16)
        ex = TiledGemm(GemmProblem(32, 16, 24), tile)
        c = ex.crop(ex.run(a, b))
        ref = gemm_by_mma(ex.pad_a(a), ex.pad_b(b))[:32, :16]
        np.testing.assert_allclose(c, ref, rtol=1e-6, atol=1e-6)

    def test_k_chunking_changes_nothing_material(self, tile, small_operands):
        a, b = small_operands
        p = GemmProblem(a.shape[0], b.shape[1], a.shape[1])
        c8 = TiledGemm(p, tile, k_chunk=8).run(a, b)
        c40 = TiledGemm(p, tile, k_chunk=40).run(a, b)
        np.testing.assert_allclose(c8, c40, rtol=1e-5, atol=1e-4)

    def test_rejects_bad_k_chunk(self, tile):
        with pytest.raises(ShapeError):
            TiledGemm(GemmProblem(8, 8, 8), tile, k_chunk=12)


class TestThreadTileView:
    def test_view_shape(self, tile):
        ex = TiledGemm(GemmProblem(64, 32, 16), tile)
        c = np.zeros((ex.m_full, ex.n_full), dtype=np.float32)
        view = ex.thread_tile_view(c)
        assert view.shape == (ex.m_tiles, tile.mt, ex.n_tiles, tile.nt)

    def test_view_is_a_view(self, tile):
        ex = TiledGemm(GemmProblem(64, 32, 16), tile)
        c = np.zeros((ex.m_full, ex.n_full), dtype=np.float32)
        ex.thread_tile_view(c)[0, 1, 0, 2] = 7.0
        assert c[1, 2] == 7.0

    def test_tile_of_element(self, tile):
        ex = TiledGemm(GemmProblem(64, 32, 16), tile)
        assert ex.tile_of_element(0, 0) == (0, 0)
        assert ex.tile_of_element(tile.mt, tile.nt) == (1, 1)
        assert ex.tile_of_element(tile.mt - 1, tile.nt - 1) == (0, 0)

    def test_tile_of_element_bounds(self, tile):
        ex = TiledGemm(GemmProblem(64, 32, 16), tile)
        with pytest.raises(ShapeError):
            ex.tile_of_element(ex.m_full, 0)
