"""Property tests: dense order-walk verdicts equal the full comparison.

The dense path renders verdicts through the ``CleanComparison`` order
walk (``Scheme._walk_verdicts``): one elementwise diff against the
clean check arrays plus :func:`compare_checksums_sparse`, instead of
the full batched comparison over every trial's whole check array.  The
contract pinned here is field-for-field bit-identity with the direct
rendering (``_references_batch`` + ``_verdicts``) it replaced, for
every sparse-capable scheme, both pipelines, every fault kind, and
both fault paths.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.abft import list_schemes, scheme_from_token
from repro.abft.base import Scheme

from test_batch_equivalence import (
    TILE,
    _draw_spec,
    _operands,
    assert_outcomes_identical,
    make_scheme,
)

WALK_SCHEMES = [
    name for name in list_schemes() if make_scheme(name).supports_sparse
] + ["global_multi"]

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def _direct_walk_verdicts(self, prepared, output_side, faults_batch, detection):
    """The pre-walk dense rendering: full batched comparison."""
    references = self._references_batch(prepared, faults_batch)
    return self._verdicts(prepared, references, output_side, detection)


def _scheme_for(name, dtype):
    if dtype == "fp16":
        return make_scheme(name)
    return scheme_from_token(f"{name}:2@int8" if name == "global_multi" else f"{name}@int8")


class TestDenseWalkEquivalence:
    @given(
        name=st.sampled_from(WALK_SCHEMES),
        dtype=st.sampled_from(["fp16", "int8"]),
        seed=seeds,
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_walk_matches_direct_comparison(self, name, dtype, seed, data):
        """Dense inject_batch through the walk == through the full
        comparison, outcome for outcome."""
        a, b = _operands(seed)
        scheme = _scheme_for(name, dtype)
        prepared = scheme.prepare(a, b, tile=TILE)
        rows, cols = prepared.c_clean.shape
        trials = [
            tuple(
                _draw_spec(data, rows, cols)
                for _ in range(data.draw(st.integers(0, 2)))
            )
            for _ in range(data.draw(st.integers(1, 5)))
        ]
        walked = prepared.inject_batch(trials, sparse=False)
        original = Scheme._walk_verdicts
        Scheme._walk_verdicts = _direct_walk_verdicts
        try:
            direct = prepared.inject_batch(trials, sparse=False)
        finally:
            Scheme._walk_verdicts = original
        for w, d in zip(walked, direct):
            assert_outcomes_identical(d, w)
