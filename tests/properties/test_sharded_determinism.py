"""Property: sharded campaigns are record-identical at any worker count.

The sharded engine's determinism contract (DESIGN.md §4): for a fixed
campaign seed, ``run_batch(n, workers=N)`` must produce exactly the
record sequence of the in-process run — same fault draws, same deltas,
same verdicts, same order — for *any* worker count, fault multiplicity,
and trial count.  The parent draws the whole spec stream exactly as the
in-process path does and shards are contiguous trial ranges, so any
divergence here means a worker classified differently than the parent
would have — the one failure mode sharding must never introduce.

Each example forks a real process pool, so the example budget is kept
deliberately small; the prepared state is shared across examples
through one cache (preparation is fault-invariant, so this cannot
couple examples).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.abft import PreparedCache, get_scheme
from repro.faults import CampaignOptions, FaultCampaign

_CACHE = PreparedCache()
_RNG = np.random.default_rng(99)
_A = (_RNG.standard_normal((48, 32)) * 0.5).astype(np.float16)
_B = (_RNG.standard_normal((32, 40)) * 0.5).astype(np.float16)


def _campaign(scheme_name, seed):
    return FaultCampaign(
        get_scheme(scheme_name), _A, _B,
        options=CampaignOptions(seed=seed, cache=_CACHE),
    )


def _record_key(record):
    delta = record.delta
    return (
        record.faults,
        "nan" if np.isnan(delta) else delta,
        record.detected,
        record.significant,
        record.benign_alarm,
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheme_name=st.sampled_from(["global", "thread_twosided"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_trials=st.integers(min_value=1, max_value=60),
    workers=st.integers(min_value=2, max_value=6),
    faults_per_trial=st.integers(min_value=1, max_value=3),
)
def test_sharded_records_identical_to_in_process(
    scheme_name, seed, n_trials, workers, faults_per_trial
):
    in_process = _campaign(scheme_name, seed).run_batch(
        n_trials, faults_per_trial=faults_per_trial
    )
    sharded = _campaign(scheme_name, seed).run_batch(
        n_trials, faults_per_trial=faults_per_trial, workers=workers
    )
    assert len(sharded.trials) == len(in_process.trials)
    assert [_record_key(r) for r in sharded.trials] == [
        _record_key(r) for r in in_process.trials
    ]
    assert (
        sharded.coverage_by_fault_count()
        == in_process.coverage_by_fault_count()
    )
